//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the workspace vendors the subset
//! of the proptest 1.x API its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, strategies for primitive `any::<T>()`, numeric
//! ranges and tuples, [`collection::vec`], the [`prop_oneof!`] /
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name, overridable via the
//! `PROPTEST_SEED` environment variable) and failing inputs are **not
//! shrunk** — the panic message reports the case index and seed so a
//! failure replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic random source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one test case.
    pub fn for_case(test_name: &str, case: u32, base_seed: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base_seed;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values (shrinking-free subset of proptest's trait).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (re-draws, up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Filter-and-map in one step (re-draws on `None`, up to a cap).
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

const FILTER_RETRIES: usize = 1_000;

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// A uniform choice among boxed alternatives ([`prop_oneof!`]'s output).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration and the per-test case loop.
pub mod test_runner {
    use super::TestRng;

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Runs `body` once per case with a deterministic RNG. Used by the
    /// [`proptest!`](crate::proptest) macro expansion.
    pub fn run_cases(cases: u32, test_name: &str, body: impl Fn(&mut TestRng)) {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0u64);
        for case in 0..cases {
            let mut rng = TestRng::for_case(test_name, case, base_seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest failure in `{test_name}` at case {case}/{cases} \
                     (PROPTEST_SEED={base_seed}); rerun with the same seed to replay"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(args) { body }` item becomes a
/// `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(__cfg.cases, stringify!($name), |__rng| {
                $crate::__proptest_bind!{ __rng; $($args)* }
                $body
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one argument list.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:expr; ) => {};
    ($rng:expr; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:expr; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:expr; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:expr; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 10u8..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_and_ranges((a, b) in arb_pair(), c in 5u64..6, d: bool) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert_eq!(c, 5);
            let _ = d;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), 2u8..4, any::<u8>().prop_map(|x| x / 2)]) {
            prop_assert!(v == 1 || (2..4).contains(&v) || v <= 127);
        }

        #[test]
        fn vec_strategy(xs in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(xs.len() < 16);
        }
    }
}
