//! Zero-copy, lazily sliced ELF views.
//!
//! [`crate::read_elf`] copies every section body into its own `Vec<u8>`,
//! so a large stripped binary is resident twice while it is analysed.
//! This module is the streaming-input substrate that avoids that:
//!
//! * [`ElfView`] — a *borrowed* parse of an ELF64 image. The header and
//!   section table are validated eagerly (every offset bounds- and
//!   overflow-checked, overlapping or duplicate sections rejected with a
//!   typed [`ElfError`]); section **bodies** stay as `Range<usize>`
//!   windows resolved on demand, so looking at `.text` never copies it.
//! * [`ImageSource`] — where the backing buffer comes from: already in
//!   memory ([`MemSource`]) or a file faulted in on first use
//!   ([`FileSource`], the safe stand-in for `mmap`).
//! * [`ElfImage`] — the owning, shareable form: one `Arc`'d buffer plus
//!   the validated layout. [`ElfImage::to_binary`] materializes a
//!   [`Binary`] whose sections are all windows of that one buffer —
//!   zero body-byte copies, and clones of the image (e.g. one per batch
//!   worker) share the same resident bytes.
//!
//! The eager bridge for callers that need an owned [`Binary`] from a
//! borrowed buffer is [`ElfView::to_owned`]; [`LoadStats`] reports how
//! many body bytes each path copied so the benchmarks can verify the
//! zero-copy claim rather than assume it.

use crate::binary::{Binary, Symbol};
use crate::elf::{ElfError, EHDR_SIZE, SHDR_SIZE, SHT_PROGBITS, SHT_SYMTAB, SYM_SIZE};
use crate::meta::BuildInfo;
use crate::section::{Section, SectionBytes, SectionKind};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// A provider of the resident image bytes an [`ElfView`] parses.
///
/// This is the mmap stand-in: the trait promises a stable `&[u8]` of the
/// whole image, and implementations decide when those bytes become
/// resident. [`MemSource`] already holds them; [`FileSource`] faults the
/// file in on the first call and keeps it for later ones.
pub trait ImageSource {
    /// The full image bytes, loading them if necessary.
    ///
    /// # Errors
    ///
    /// I/O errors from the backing store (never for in-memory sources).
    fn image(&self) -> std::io::Result<&[u8]>;
}

/// An [`ImageSource`] over bytes already in memory.
#[derive(Debug, Clone)]
pub struct MemSource(pub Vec<u8>);

impl ImageSource for MemSource {
    fn image(&self) -> std::io::Result<&[u8]> {
        Ok(&self.0)
    }
}

/// A file-backed [`ImageSource`]: the image is read into memory on the
/// first [`ImageSource::image`] call and stays resident afterwards —
/// the safe stand-in for `mmap` (which also materializes pages on first
/// touch) in a `forbid(unsafe_code)` workspace.
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    resident: OnceLock<Vec<u8>>,
}

impl FileSource {
    /// A lazy source over the file at `path` (nothing is read yet).
    pub fn new(path: impl Into<PathBuf>) -> FileSource {
        FileSource {
            path: path.into(),
            resident: OnceLock::new(),
        }
    }

    /// The file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Whether the image has been faulted in.
    pub fn is_resident(&self) -> bool {
        self.resident.get().is_some()
    }
}

impl ImageSource for FileSource {
    fn image(&self) -> std::io::Result<&[u8]> {
        if let Some(bytes) = self.resident.get() {
            return Ok(bytes);
        }
        let bytes = std::fs::read(&self.path)?;
        Ok(self.resident.get_or_init(|| bytes))
    }
}

/// Copy accounting for one load path, so benchmarks measure the
/// zero-copy claim instead of assuming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Size of the backing image in bytes.
    pub image_bytes: usize,
    /// Total section-body bytes reachable through the loaded sections.
    pub section_bytes: usize,
    /// Section-body bytes that were copied out of the image to build the
    /// result — `0` on the shared-image path, `section_bytes` on the
    /// eager [`ElfView::to_owned`] bridge.
    pub section_bytes_copied: usize,
}

/// The validated layout shared by [`ElfView`] and [`ElfImage`]: section
/// windows and symbol-table location, but no section bodies.
#[derive(Debug, Clone)]
struct Layout {
    entry: u64,
    /// `(kind, vaddr, file range)` per recognized progbits section.
    sections: Vec<(SectionKind, u64, Range<usize>)>,
    /// `(symtab file range, strtab file range)` per symbol table, in
    /// section order — symbols accumulate across all of them.
    symtabs: Vec<(Range<usize>, Range<usize>)>,
}

fn read_u16(b: &[u8], off: usize) -> Result<u16, ElfError> {
    Ok(u16::from_le_bytes(
        b.get(off..off + 2)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}
fn read_u32(b: &[u8], off: usize) -> Result<u32, ElfError> {
    Ok(u32::from_le_bytes(
        b.get(off..off + 4)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}
fn read_u64(b: &[u8], off: usize) -> Result<u64, ElfError> {
    Ok(u64::from_le_bytes(
        b.get(off..off + 8)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}

/// A `(file offset, size)` pair checked against the image: overflow and
/// out-of-bounds both yield typed errors instead of a wrapped slice.
fn checked_range(
    off: u64,
    size: u64,
    image_len: usize,
    at: usize,
) -> Result<Range<usize>, ElfError> {
    let start = usize::try_from(off).map_err(|_| ElfError::RangeOverflow { at })?;
    let size = usize::try_from(size).map_err(|_| ElfError::RangeOverflow { at })?;
    let end = start
        .checked_add(size)
        .ok_or(ElfError::RangeOverflow { at })?;
    if end > image_len {
        return Err(ElfError::Truncated);
    }
    Ok(start..end)
}

/// Reads the NUL-terminated name at `off` of the string-table bytes.
fn str_at(strtab: &[u8], off: usize) -> Option<String> {
    let end = strtab.get(off..)?.iter().position(|&b| b == 0)? + off;
    Some(String::from_utf8_lossy(&strtab[off..end]).into_owned())
}

fn parse_layout(bytes: &[u8]) -> Result<Layout, ElfError> {
    if bytes.len() < EHDR_SIZE || &bytes[0..4] != b"\x7fELF" || bytes[4] != 2 || bytes[5] != 1 {
        return Err(ElfError::BadMagic);
    }
    let entry = read_u64(bytes, 24)?;
    let shoff = read_u64(bytes, 40)?;
    let shnum = read_u16(bytes, 60)? as u64;
    let shstrndx = read_u16(bytes, 62)? as usize;

    // The whole section-header table must fit the file; `shoff + i * 64`
    // is computed checked so a huge e_shoff errors instead of wrapping.
    let table = checked_range(shoff, shnum * SHDR_SIZE as u64, bytes.len(), 40)?;

    struct Shdr {
        name: u32,
        ty: u32,
        addr: u64,
        off: u64,
        size: u64,
        link: u32,
    }
    let mut shdrs = Vec::with_capacity(shnum as usize);
    for i in 0..shnum as usize {
        let base = table.start + i * SHDR_SIZE;
        shdrs.push(Shdr {
            name: read_u32(bytes, base)?,
            ty: read_u32(bytes, base + 4)?,
            addr: read_u64(bytes, base + 16)?,
            off: read_u64(bytes, base + 24)?,
            size: read_u64(bytes, base + 32)?,
            link: read_u32(bytes, base + 40)?,
        });
    }
    let shstr = shdrs.get(shstrndx).ok_or(ElfError::Truncated)?;
    let shstr_range = checked_range(shstr.off, shstr.size, bytes.len(), shstrndx)?;
    let shstr_bytes = &bytes[shstr_range];

    let mut sections: Vec<(SectionKind, u64, Range<usize>)> = Vec::new();
    let mut symtabs = Vec::new();
    for (i, sh) in shdrs.iter().enumerate() {
        match sh.ty {
            SHT_PROGBITS => {
                let name = str_at(shstr_bytes, sh.name as usize).unwrap_or_default();
                let kind = match name.as_str() {
                    ".text" => SectionKind::Text,
                    ".rodata" => SectionKind::Rodata,
                    ".data" => SectionKind::Data,
                    ".eh_frame" => SectionKind::EhFrame,
                    other => return Err(ElfError::BadSectionName(other.to_string())),
                };
                if sections.iter().any(|(k, _, _)| *k == kind) {
                    return Err(ElfError::DuplicateSection(kind.name()));
                }
                let range = checked_range(sh.off, sh.size, bytes.len(), i)?;
                sections.push((kind, sh.addr, range));
            }
            SHT_SYMTAB => {
                let str_sh = shdrs.get(sh.link as usize).ok_or(ElfError::Truncated)?;
                let sym_range = checked_range(sh.off, sh.size, bytes.len(), i)?;
                let str_range =
                    checked_range(str_sh.off, str_sh.size, bytes.len(), sh.link as usize)?;
                symtabs.push((sym_range, str_range));
            }
            _ => {}
        }
    }

    // No two loaded sections may claim the same file bytes: an overlap
    // means one body aliases another and the image is structurally
    // malformed (zero-sized sections alias nothing and are exempt).
    let mut spans: Vec<(Range<usize>, SectionKind)> = sections
        .iter()
        .filter(|(_, _, r)| !r.is_empty())
        .map(|(k, _, r)| (r.clone(), *k))
        .collect();
    spans.sort_by_key(|(r, _)| r.start);
    for pair in spans.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.0.start < a.0.end {
            return Err(ElfError::OverlappingSections {
                a: a.1.name(),
                b: b.1.name(),
            });
        }
    }

    Ok(Layout {
        entry,
        sections,
        symtabs,
    })
}

fn parse_symbols(bytes: &[u8], layout: &Layout) -> Vec<Symbol> {
    let mut symbols = Vec::new();
    for (sym_range, str_range) in &layout.symtabs {
        let symtab = &bytes[sym_range.clone()];
        let strtab = &bytes[str_range.clone()];
        let count = symtab.len() / SYM_SIZE;
        for i in 1..count {
            let e = &symtab[i * SYM_SIZE..(i + 1) * SYM_SIZE];
            let name_off = u32::from_le_bytes(e[0..4].try_into().unwrap()) as usize;
            if e[4] & 0xf != 2 {
                continue; // not STT_FUNC
            }
            let addr = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let size = u64::from_le_bytes(e[16..24].try_into().unwrap());
            symbols.push(Symbol {
                name: str_at(strtab, name_off).unwrap_or_default(),
                addr,
                size,
            });
        }
    }
    symbols
}

/// One section of an [`ElfView`]: kind, virtual address, and the body as
/// a borrowed slice of the image (no copy was made to produce it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionRef<'a> {
    /// Section role.
    pub kind: SectionKind,
    /// Virtual address of the first byte.
    pub addr: u64,
    /// The body, borrowed from the image.
    pub bytes: &'a [u8],
}

/// A borrowed, lazily sliced parse of an ELF64 image.
///
/// Construction validates the header and section table (see the crate
/// docs); section bodies are *not* touched until asked for, and are
/// handed out as borrows of the backing buffer.
///
/// # Examples
///
/// ```
/// use fetch_binary::{Binary, BuildInfo, ElfView, Section, SectionKind, write_elf};
///
/// let bin = Binary {
///     name: "demo".into(),
///     info: BuildInfo::gcc_o2(),
///     sections: vec![Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3])],
///     symbols: vec![],
///     entry: 0x40_1000,
/// };
/// let image = write_elf(&bin);
/// let view = ElfView::parse(&image)?;
/// let text = view.section(SectionKind::Text).expect("has text");
/// assert_eq!(text.addr, 0x40_1000);
/// assert_eq!(text.bytes, &[0x55, 0xc3]); // borrowed from `image`, not copied
/// # Ok::<(), fetch_binary::ElfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ElfView<'a> {
    data: &'a [u8],
    layout: Layout,
}

impl<'a> ElfView<'a> {
    /// Parses and validates the image's header and section table.
    ///
    /// # Errors
    ///
    /// A typed [`ElfError`] for every structural problem — truncation,
    /// offset/size overflow, overlapping or duplicated sections,
    /// unrecognized section names. Malformed input never panics and
    /// never produces an out-of-bounds window.
    pub fn parse(data: &'a [u8]) -> Result<ElfView<'a>, ElfError> {
        let layout = parse_layout(data)?;
        Ok(ElfView { data, layout })
    }

    /// Parses the image provided by `source`, faulting it in if needed.
    ///
    /// # Errors
    ///
    /// [`ElfError::Io`] when the source fails to produce bytes, else as
    /// [`ElfView::parse`].
    pub fn open(source: &'a dyn ImageSource) -> Result<ElfView<'a>, ElfError> {
        let data = source.image().map_err(|e| ElfError::Io(e.to_string()))?;
        ElfView::parse(data)
    }

    /// The raw image this view borrows.
    pub fn image(&self) -> &'a [u8] {
        self.data
    }

    /// The program entry point.
    pub fn entry(&self) -> u64 {
        self.layout.entry
    }

    /// Number of recognized (loadable) sections.
    pub fn section_count(&self) -> usize {
        self.layout.sections.len()
    }

    /// Iterates over the recognized sections without copying bodies.
    pub fn sections(&self) -> impl Iterator<Item = SectionRef<'a>> + '_ {
        let data = self.data;
        self.layout
            .sections
            .iter()
            .map(move |(kind, addr, range)| SectionRef {
                kind: *kind,
                addr: *addr,
                bytes: &data[range.clone()],
            })
    }

    /// The section of the given kind, body borrowed on demand.
    pub fn section(&self, kind: SectionKind) -> Option<SectionRef<'a>> {
        self.sections().find(|s| s.kind == kind)
    }

    /// The file range of the given section (validated at parse time).
    pub fn section_range(&self, kind: SectionKind) -> Option<Range<usize>> {
        self.layout
            .sections
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, _, r)| r.clone())
    }

    /// Whether the image carries a symbol table.
    pub fn has_symtab(&self) -> bool {
        !self.layout.symtabs.is_empty()
    }

    /// Parses the function symbols (names are the only allocation).
    pub fn symbols(&self) -> Vec<Symbol> {
        parse_symbols(self.data, &self.layout)
    }

    /// The eager bridge: an owned [`Binary`] whose sections each copy
    /// their body out of the image — for callers that cannot keep the
    /// backing buffer alive. Prefer [`ElfImage::to_binary`] (zero-copy)
    /// when the buffer is owned.
    pub fn to_owned(&self) -> Binary {
        self.to_owned_with_stats().0
    }

    /// [`ElfView::to_owned`], also reporting how many body bytes were
    /// copied (always every section byte on this path).
    pub fn to_owned_with_stats(&self) -> (Binary, LoadStats) {
        let sections: Vec<Section> = self
            .sections()
            .map(|s| Section::new(s.kind, s.addr, s.bytes.to_vec()))
            .collect();
        let copied = sections.iter().map(|s| s.bytes.len()).sum();
        let binary = Binary {
            name: "elf".into(),
            info: BuildInfo::gcc_o2(),
            sections,
            symbols: self.symbols(),
            entry: self.layout.entry,
        };
        let stats = LoadStats {
            image_bytes: self.data.len(),
            section_bytes: copied,
            section_bytes_copied: copied,
        };
        (binary, stats)
    }
}

/// An owned, shareable ELF image: one `Arc`'d backing buffer plus the
/// validated layout.
///
/// Cloning an `ElfImage` (or the [`Binary`] it materializes) shares the
/// same resident bytes, so a batch of workers analysing one binary keeps
/// a single copy of the image in memory.
///
/// # Examples
///
/// ```
/// use fetch_binary::{Binary, BuildInfo, ElfImage, Section, SectionKind, write_elf};
///
/// let bin = Binary {
///     name: "demo".into(),
///     info: BuildInfo::gcc_o2(),
///     sections: vec![
///         Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3]),
///         Section::new(SectionKind::Data, 0x40_3000, vec![1, 2, 3, 4]),
///     ],
///     symbols: vec![],
///     entry: 0x40_1000,
/// };
/// let image = ElfImage::parse(write_elf(&bin))?;
/// let loaded = image.to_binary();
/// assert_eq!(loaded.sections, bin.sections);
/// // Both sections are windows of one shared buffer: zero body copies.
/// assert!(loaded.sections[0].shares_image(&loaded.sections[1]));
/// assert_eq!(image.load_stats().section_bytes_copied, 0);
/// # Ok::<(), fetch_binary::ElfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ElfImage {
    buf: Arc<Vec<u8>>,
    layout: Layout,
    symbols: Vec<Symbol>,
}

impl ElfImage {
    /// Takes ownership of `bytes` and validates them as an ELF64 image
    /// (the buffer is moved, not copied).
    ///
    /// # Errors
    ///
    /// As [`ElfView::parse`].
    pub fn parse(bytes: Vec<u8>) -> Result<ElfImage, ElfError> {
        let layout = parse_layout(&bytes)?;
        let symbols = parse_symbols(&bytes, &layout);
        Ok(ElfImage {
            buf: Arc::new(bytes),
            layout,
            symbols,
        })
    }

    /// Reads the file at `path` straight into the owned buffer and
    /// validates it — the image is resident exactly once. (Going through
    /// a borrowed [`ImageSource`] would leave the source's copy alive
    /// next to this one; use [`ElfView::open`] for borrowed views.)
    ///
    /// # Errors
    ///
    /// [`ElfError::Io`] when the read fails, else as [`ElfView::parse`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<ElfImage, ElfError> {
        let bytes = std::fs::read(path).map_err(|e| ElfError::Io(e.to_string()))?;
        ElfImage::parse(bytes)
    }

    /// A borrowed view over the resident image.
    pub fn view(&self) -> ElfView<'_> {
        ElfView {
            data: &self.buf,
            layout: self.layout.clone(),
        }
    }

    /// The program entry point.
    pub fn entry(&self) -> u64 {
        self.layout.entry
    }

    /// Size of the resident image in bytes.
    pub fn image_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The parsed function symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Materializes a [`Binary`] whose sections are windows of this
    /// image's shared buffer — **zero** section-body bytes are copied,
    /// and every produced section keeps the one image buffer alive.
    ///
    /// ELF carries no build metadata, so like [`crate::read_elf`] the
    /// result gets a default [`BuildInfo`] and the name `"elf"`; callers
    /// with out-of-band metadata overwrite both fields.
    pub fn to_binary(&self) -> Binary {
        let sections = self
            .layout
            .sections
            .iter()
            .map(|(kind, addr, range)| Section {
                kind: *kind,
                addr: *addr,
                bytes: SectionBytes::from_shared(Arc::clone(&self.buf), range.clone())
                    .expect("ranges validated at parse time"),
            })
            .collect();
        Binary {
            name: "elf".into(),
            info: BuildInfo::gcc_o2(),
            sections,
            symbols: self.symbols.clone(),
            entry: self.layout.entry,
        }
    }

    /// Copy accounting for the shared-image path ([`ElfImage::to_binary`]):
    /// `section_bytes_copied` is zero by construction.
    pub fn load_stats(&self) -> LoadStats {
        LoadStats {
            image_bytes: self.buf.len(),
            section_bytes: self.layout.sections.iter().map(|(_, _, r)| r.len()).sum(),
            section_bytes_copied: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::write_elf;

    fn sample() -> Binary {
        Binary {
            name: "t".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![
                Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3, 0x90, 0xcc]),
                Section::new(SectionKind::Rodata, 0x40_2000, vec![1, 2, 3]),
                Section::new(SectionKind::Data, 0x40_3000, vec![9; 16]),
                Section::new(SectionKind::EhFrame, 0x40_4000, vec![0, 0, 0, 0]),
            ],
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    addr: 0x40_1000,
                    size: 2,
                },
                Symbol {
                    name: "pad".into(),
                    addr: 0x40_1002,
                    size: 2,
                },
            ],
            entry: 0x40_1000,
        }
    }

    #[test]
    fn view_matches_eager_reader() {
        let bin = sample();
        let image = write_elf(&bin);
        let view = ElfView::parse(&image).unwrap();
        assert_eq!(view.entry(), bin.entry);
        assert_eq!(view.section_count(), 4);
        for s in &bin.sections {
            let v = view.section(s.kind).expect("section present");
            assert_eq!(v.addr, s.addr);
            assert_eq!(v.bytes, &s.bytes[..]);
        }
        assert_eq!(view.symbols(), bin.symbols);
        let (owned, stats) = view.to_owned_with_stats();
        assert_eq!(owned.sections, bin.sections);
        assert_eq!(stats.section_bytes_copied, stats.section_bytes);
        assert_eq!(stats.image_bytes, image.len());
    }

    #[test]
    fn image_is_zero_copy_and_shared() {
        let bin = sample();
        let image = ElfImage::parse(write_elf(&bin)).unwrap();
        let loaded = image.to_binary();
        assert_eq!(loaded.sections, bin.sections);
        assert_eq!(loaded.symbols, bin.symbols);
        assert_eq!(loaded.entry, bin.entry);
        for pair in loaded.sections.windows(2) {
            assert!(pair[0].shares_image(&pair[1]), "one backing buffer");
        }
        let stats = image.load_stats();
        assert_eq!(stats.section_bytes_copied, 0);
        assert_eq!(
            stats.section_bytes,
            bin.sections.iter().map(|s| s.bytes.len()).sum::<usize>()
        );
        // A clone of the materialized binary still shares the image.
        let cloned = loaded.clone();
        assert!(cloned.sections[0].shares_image(&loaded.sections[1]));
    }

    #[test]
    fn file_source_faults_in_lazily() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fetch-view-test-{}.elf", std::process::id()));
        std::fs::write(&path, write_elf(&sample())).unwrap();
        let source = FileSource::new(&path);
        assert!(!source.is_resident());
        {
            let view = ElfView::open(&source).unwrap();
            assert_eq!(view.symbols().len(), 2);
        }
        assert!(source.is_resident());
        // The owning loader reads the file once into its own buffer.
        let image = ElfImage::load(&path).unwrap();
        assert_eq!(image.symbols().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let source = FileSource::new("/nonexistent/fetch-view-test.elf");
        match ElfView::open(&source) {
            Err(ElfError::Io(_)) => {}
            other => panic!("expected ElfError::Io, got {other:?}"),
        }
        match ElfImage::load("/nonexistent/fetch-view-test.elf") {
            Err(ElfError::Io(_)) => {}
            other => panic!("expected ElfError::Io, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_sections_rejected() {
        let bin = sample();
        let mut image = write_elf(&bin);
        let shoff = u64::from_le_bytes(image[40..48].try_into().unwrap()) as usize;
        // Point .rodata (section index 2) at .text's file range.
        let text_off = shoff + SHDR_SIZE + 24;
        let rodata_off = shoff + 2 * SHDR_SIZE + 24;
        let text_at: [u8; 8] = image[text_off..text_off + 8].try_into().unwrap();
        image[rodata_off..rodata_off + 8].copy_from_slice(&text_at);
        match ElfView::parse(&image) {
            Err(ElfError::OverlappingSections { .. }) => {}
            other => panic!("expected overlap error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_section_rejected() {
        let bin = sample();
        let mut image = write_elf(&bin);
        let shoff = u64::from_le_bytes(image[40..48].try_into().unwrap()) as usize;
        // Rename .rodata's header to point at .text's name offset.
        let text_name = image[shoff + SHDR_SIZE..shoff + SHDR_SIZE + 4].to_vec();
        image[shoff + 2 * SHDR_SIZE..shoff + 2 * SHDR_SIZE + 4].copy_from_slice(&text_name);
        match ElfView::parse(&image) {
            Err(ElfError::DuplicateSection(".text")) => {}
            // The two sections also overlap nowhere, so the duplicate
            // check must fire first.
            other => panic!("expected duplicate error, got {other:?}"),
        }
    }

    #[test]
    fn huge_offsets_error_instead_of_wrapping() {
        let bin = sample();
        let base = write_elf(&bin);
        // e_shoff = u64::MAX used to overflow `shoff + i * SHDR_SIZE`.
        let mut image = base.clone();
        image[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ElfView::parse(&image),
            Err(ElfError::RangeOverflow { .. } | ElfError::Truncated)
        ));
        // A section size that overflows its offset.
        let mut image = base;
        let shoff = u64::from_le_bytes(image[40..48].try_into().unwrap()) as usize;
        let size_off = shoff + SHDR_SIZE + 32; // .text sh_size
        image[size_off..size_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ElfView::parse(&image),
            Err(ElfError::RangeOverflow { .. } | ElfError::Truncated)
        ));
    }
}
