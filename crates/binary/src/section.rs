//! Sections and their shared backing storage.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// The role of a section. The FETCH analyses care about code (`Text`),
/// pointer-bearing data (`Rodata`/`Data`), and the unwind tables
/// (`EhFrame`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code (`.text`).
    Text,
    /// Read-only data (`.rodata`) — string literals, jump tables.
    Rodata,
    /// Writable data (`.data`) — globals, function-pointer tables.
    Data,
    /// The exception-handling frame section (`.eh_frame`).
    EhFrame,
}

impl SectionKind {
    /// The conventional ELF section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::Rodata => ".rodata",
            SectionKind::Data => ".data",
            SectionKind::EhFrame => ".eh_frame",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The backing bytes of a [`Section`]: a window into a shared image
/// buffer.
///
/// Several sections of one binary can reference disjoint ranges of the
/// *same* `Arc`-backed buffer (the whole ELF image loaded once), so
/// materializing a [`Section`] from a parsed image copies no body bytes
/// — see [`crate::ElfImage::to_binary`]. A standalone section built from
/// a `Vec<u8>` (the synthesis path) owns its buffer outright; both forms
/// deref to `[u8]` and compare by content, so consumers never see the
/// difference.
#[derive(Clone)]
pub struct SectionBytes {
    buf: Arc<Vec<u8>>,
    range: Range<usize>,
}

impl SectionBytes {
    /// A window of a shared buffer, or `None` when `range` lies outside
    /// it. Sections built this way copy nothing and keep `buf` alive.
    pub fn from_shared(buf: Arc<Vec<u8>>, range: Range<usize>) -> Option<SectionBytes> {
        if range.start > range.end || range.end > buf.len() {
            return None;
        }
        Some(SectionBytes { buf, range })
    }

    /// The bytes of the window.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.range.clone()]
    }

    /// Whether `self` and `other` are windows of the same backing buffer
    /// (the zero-copy invariant the tests assert).
    pub fn shares_buffer(&self, other: &SectionBytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl Deref for SectionBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SectionBytes {
    fn from(bytes: Vec<u8>) -> SectionBytes {
        let range = 0..bytes.len();
        SectionBytes {
            buf: Arc::new(bytes),
            range,
        }
    }
}

impl PartialEq for SectionBytes {
    fn eq(&self, other: &SectionBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SectionBytes {}

impl fmt::Debug for SectionBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// A loaded section: contiguous bytes at a virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section role.
    pub kind: SectionKind,
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Raw contents (owned or a window of a shared image buffer).
    pub bytes: SectionBytes,
}

impl Section {
    /// Creates a section from owned bytes or an existing window.
    pub fn new(kind: SectionKind, addr: u64, bytes: impl Into<SectionBytes>) -> Section {
        Section {
            kind,
            addr,
            bytes: bytes.into(),
        }
    }

    /// Whether this section's bytes are a window of the same backing
    /// buffer as `other`'s (both loaded from one image, zero-copy).
    pub fn shares_image(&self, other: &Section) -> bool {
        self.bytes.shares_buffer(&other.bytes)
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }

    /// Whether `addr` falls within the section.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// The bytes from `addr` to the section end, or `None` if out of range.
    pub fn slice_from(&self, addr: u64) -> Option<&[u8]> {
        if !self.contains(addr) {
            return None;
        }
        Some(&self.bytes[(addr - self.addr) as usize..])
    }

    /// Reads `N` little-endian bytes at `addr`.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> Option<[u8; N]> {
        let s = self.slice_from(addr)?;
        s.get(..N)?.try_into().ok()
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> Option<u64> {
        self.read_bytes::<8>(addr).map(u64::from_le_bytes)
    }

    /// Reads a little-endian `i32` at `addr`.
    pub fn read_i32(&self, addr: u64) -> Option<i32> {
        self.read_bytes::<4>(addr).map(i32::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_and_reads() {
        let s = Section::new(SectionKind::Data, 0x1000, (0u8..16).collect::<Vec<u8>>());
        assert!(s.contains(0x1000));
        assert!(s.contains(0x100f));
        assert!(!s.contains(0x1010));
        assert_eq!(s.slice_from(0x100e), Some(&[14u8, 15][..]));
        assert_eq!(s.read_i32(0x1000), Some(i32::from_le_bytes([0, 1, 2, 3])));
        assert_eq!(
            s.read_u64(0x1008),
            Some(u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]))
        );
        assert_eq!(s.read_u64(0x100c), None);
        assert_eq!(s.slice_from(0xfff), None);
    }

    #[test]
    fn shared_windows_copy_nothing_and_compare_by_content() {
        let image = Arc::new((0u8..32).collect::<Vec<u8>>());
        let a = SectionBytes::from_shared(Arc::clone(&image), 0..8).unwrap();
        let b = SectionBytes::from_shared(Arc::clone(&image), 8..16).unwrap();
        assert!(a.shares_buffer(&b));
        assert_eq!(&a[..], &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Content equality regardless of backing.
        let owned = SectionBytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a, owned);
        assert!(!a.shares_buffer(&owned));
        // Out-of-bounds windows are rejected, not clamped.
        assert!(SectionBytes::from_shared(Arc::clone(&image), 16..40).is_none());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = SectionBytes::from_shared(image, 8..4);
        assert!(reversed.is_none());
    }
}
