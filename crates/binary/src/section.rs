//! Sections and the loaded-binary container.

use std::fmt;

/// The role of a section. The FETCH analyses care about code (`Text`),
/// pointer-bearing data (`Rodata`/`Data`), and the unwind tables
/// (`EhFrame`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code (`.text`).
    Text,
    /// Read-only data (`.rodata`) — string literals, jump tables.
    Rodata,
    /// Writable data (`.data`) — globals, function-pointer tables.
    Data,
    /// The exception-handling frame section (`.eh_frame`).
    EhFrame,
}

impl SectionKind {
    /// The conventional ELF section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::Rodata => ".rodata",
            SectionKind::Data => ".data",
            SectionKind::EhFrame => ".eh_frame",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A loaded section: contiguous bytes at a virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section role.
    pub kind: SectionKind,
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Section {
    /// Creates a section.
    pub fn new(kind: SectionKind, addr: u64, bytes: Vec<u8>) -> Section {
        Section { kind, addr, bytes }
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }

    /// Whether `addr` falls within the section.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// The bytes from `addr` to the section end, or `None` if out of range.
    pub fn slice_from(&self, addr: u64) -> Option<&[u8]> {
        if !self.contains(addr) {
            return None;
        }
        Some(&self.bytes[(addr - self.addr) as usize..])
    }

    /// Reads `N` little-endian bytes at `addr`.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> Option<[u8; N]> {
        let s = self.slice_from(addr)?;
        s.get(..N)?.try_into().ok()
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> Option<u64> {
        self.read_bytes::<8>(addr).map(u64::from_le_bytes)
    }

    /// Reads a little-endian `i32` at `addr`.
    pub fn read_i32(&self, addr: u64) -> Option<i32> {
        self.read_bytes::<4>(addr).map(i32::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_and_reads() {
        let s = Section::new(SectionKind::Data, 0x1000, (0u8..16).collect());
        assert!(s.contains(0x1000));
        assert!(s.contains(0x100f));
        assert!(!s.contains(0x1010));
        assert_eq!(s.slice_from(0x100e), Some(&[14u8, 15][..]));
        assert_eq!(s.read_i32(0x1000), Some(i32::from_le_bytes([0, 1, 2, 3])));
        assert_eq!(
            s.read_u64(0x1008),
            Some(u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]))
        );
        assert_eq!(s.read_u64(0x100c), None);
        assert_eq!(s.slice_from(0xfff), None);
    }
}
