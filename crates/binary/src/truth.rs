//! Ground truth: the compiler-known mapping from code bytes to source
//! functions, mirroring the interception framework the paper re-uses from
//! its SoK companion to label Dataset 2 (§IV-A-2).
//!
//! Detectors never see this; only the metrics layer compares against it.

use std::collections::BTreeSet;

/// One contiguous part of a function's code.
///
/// Ordinary functions have exactly one part. Hot/cold splitting produces
/// additional parts placed far from the entry, each with its own FDE and
/// symbol — the paper's dominant source of FDE false positives (§V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// First byte of the part.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether the compiler emitted an FDE covering this part.
    pub has_fde: bool,
    /// Whether a symbol names this part.
    pub has_symbol: bool,
}

impl Part {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` falls inside the part.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// The provenance class of a function, driving which detection phenomena
/// it can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Ordinary compiler-generated code (always carries FDEs).
    Compiled,
    /// Hand-written assembly; FDEs exist only when the author wrote CFI
    /// directives (§IV-B: 1,330 of the 1,446 FDE misses).
    Assembly,
    /// `__clang_call_terminate`, statically linked without an FDE.
    ClangCallTerminate,
    /// A thunk whose body is a single `jmp` to another function.
    Thunk,
}

/// How the function is referenced — determines which detection strategy
/// can possibly find it, and whether missing it is harmful (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reach {
    /// Target of at least one direct call.
    Called,
    /// Only reachable via tail jumps; `callers` counts the distinct
    /// functions containing such jumps. With `callers == 1` the paper
    /// classifies a miss as harmless (equivalent to inlining).
    TailCalled {
        /// Number of distinct functions that tail-call this one.
        callers: u32,
    },
    /// Address only taken as data (function pointer); reached indirectly.
    PointerOnly,
    /// Not referenced anywhere (dead assembly routines).
    Unreachable,
}

/// The ground-truth record of one source-level function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionTruth {
    /// Symbol-style name.
    pub name: String,
    /// Provenance class.
    pub kind: FuncKind,
    /// Reference class.
    pub reach: Reach,
    /// Code parts; `parts[0]` holds the true entry point.
    pub parts: Vec<Part>,
}

impl FunctionTruth {
    /// The true function start (entry of the first part).
    pub fn entry(&self) -> u64 {
        self.parts[0].start
    }

    /// Whether the function is split into non-contiguous parts.
    pub fn is_noncontiguous(&self) -> bool {
        self.parts.len() > 1
    }

    /// Whether `addr` lies in any part.
    pub fn contains(&self, addr: u64) -> bool {
        self.parts.iter().any(|p| p.contains(addr))
    }
}

/// Ground truth for one binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// All functions, in layout order of their entry parts.
    pub functions: Vec<FunctionTruth>,
}

impl GroundTruth {
    /// The set of true function starts — what a perfect detector reports.
    pub fn starts(&self) -> BTreeSet<u64> {
        self.functions.iter().map(|f| f.entry()).collect()
    }

    /// Every part start (what symbols and FDEs are allowed to report:
    /// non-entry part starts are the built-in false positives of both).
    pub fn part_starts(&self) -> BTreeSet<u64> {
        self.functions
            .iter()
            .flat_map(|f| f.parts.iter().map(|p| p.start))
            .collect()
    }

    /// Starts of non-entry parts that carry FDEs — the FDE-introduced
    /// false positives quantified in §V-A.
    pub fn fde_false_starts(&self) -> BTreeSet<u64> {
        self.functions
            .iter()
            .flat_map(|f| f.parts.iter().skip(1))
            .filter(|p| p.has_fde)
            .map(|p| p.start)
            .collect()
    }

    /// The function owning `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&FunctionTruth> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// Whether `addr` is a true function start.
    pub fn is_start(&self, addr: u64) -> bool {
        self.functions.iter().any(|f| f.entry() == addr)
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether there are no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruth {
        GroundTruth {
            functions: vec![
                FunctionTruth {
                    name: "main".into(),
                    kind: FuncKind::Compiled,
                    reach: Reach::Called,
                    parts: vec![
                        Part {
                            start: 0x1000,
                            len: 0x100,
                            has_fde: true,
                            has_symbol: true,
                        },
                        Part {
                            start: 0x3000,
                            len: 0x40,
                            has_fde: true,
                            has_symbol: true,
                        },
                    ],
                },
                FunctionTruth {
                    name: "memcpy_asm".into(),
                    kind: FuncKind::Assembly,
                    reach: Reach::TailCalled { callers: 1 },
                    parts: vec![Part {
                        start: 0x1100,
                        len: 0x80,
                        has_fde: false,
                        has_symbol: true,
                    }],
                },
            ],
        }
    }

    #[test]
    fn starts_are_entry_parts_only() {
        let gt = sample();
        assert_eq!(gt.starts(), BTreeSet::from([0x1000, 0x1100]));
        assert_eq!(gt.part_starts(), BTreeSet::from([0x1000, 0x1100, 0x3000]));
        assert_eq!(gt.fde_false_starts(), BTreeSet::from([0x3000]));
    }

    #[test]
    fn lookup_by_address() {
        let gt = sample();
        assert_eq!(gt.function_at(0x3010).unwrap().name, "main");
        assert_eq!(gt.function_at(0x1150).unwrap().name, "memcpy_asm");
        assert!(gt.function_at(0x5000).is_none());
        assert!(gt.is_start(0x1000));
        assert!(!gt.is_start(0x3000)); // cold part: not a true start
    }
}
