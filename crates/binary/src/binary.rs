//! The loaded-binary container consumed by every detector.

use crate::meta::BuildInfo;
use crate::section::{Section, SectionKind};
use fetch_ehframe::{parse_eh_frame, EhFrame, ParseError};
use std::fmt;

/// A symbol table entry (function symbols only — the granularity the paper
/// compares FDE coverage against in Tables I and II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address of the named code.
    pub addr: u64,
    /// Size in bytes (0 when unknown, as with some assembly symbols).
    pub size: u64,
}

/// A loaded x86-64 System-V binary: sections, optional symbols, and entry
/// point. This is the *only* thing detectors see — ground truth lives in
/// [`crate::GroundTruth`] next to it, never inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binary {
    /// Display name (project/program).
    pub name: String,
    /// Build description.
    pub info: BuildInfo,
    /// Loaded sections.
    pub sections: Vec<Section>,
    /// Function symbols; empty when the binary is stripped.
    pub symbols: Vec<Symbol>,
    /// Program entry point.
    pub entry: u64,
}

impl Binary {
    /// The section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// The `.text` section.
    ///
    /// # Panics
    ///
    /// Panics if the binary has no text section; every corpus binary does.
    pub fn text(&self) -> &Section {
        self.section(SectionKind::Text)
            .expect("binary has a .text section")
    }

    /// Whether the binary carries an `.eh_frame` section (the `EHF` column
    /// of Tables I and II).
    pub fn has_eh_frame(&self) -> bool {
        self.section(SectionKind::EhFrame).is_some()
    }

    /// Parses the `.eh_frame` section.
    ///
    /// # Errors
    ///
    /// Returns the parser's [`ParseError`] if the section is malformed;
    /// returns an empty [`EhFrame`] if the section is absent.
    pub fn eh_frame(&self) -> Result<EhFrame, ParseError> {
        match self.section(SectionKind::EhFrame) {
            Some(s) => parse_eh_frame(&s.bytes, s.addr),
            None => Ok(EhFrame::new()),
        }
    }

    /// Whether `addr` lies inside the text section.
    pub fn is_code(&self, addr: u64) -> bool {
        self.text().contains(addr)
    }

    /// Code bytes from `addr` to the end of `.text`.
    pub fn code_from(&self, addr: u64) -> Option<&[u8]> {
        self.text().slice_from(addr)
    }

    /// Reads 8 bytes at `addr` from whichever section holds it.
    pub fn read_u64(&self, addr: u64) -> Option<u64> {
        self.sections.iter().find_map(|s| s.read_u64(addr))
    }

    /// Reads 4 bytes at `addr` from whichever section holds it.
    pub fn read_i32(&self, addr: u64) -> Option<i32> {
        self.sections.iter().find_map(|s| s.read_i32(addr))
    }

    /// The data-bearing sections scanned for function pointers (§IV-E):
    /// `.data` and `.rodata`.
    pub fn data_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections
            .iter()
            .filter(|s| matches!(s.kind, SectionKind::Data | SectionKind::Rodata))
    }

    /// Returns a stripped copy: same code and unwind data, no symbols.
    pub fn stripped(&self) -> Binary {
        Binary {
            symbols: Vec::new(),
            ..self.clone()
        }
    }

    /// Whether any symbols survive.
    pub fn has_symbols(&self) -> bool {
        !self.symbols.is_empty()
    }
}

impl fmt::Display for Binary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} -{} {}] {} sections, {} symbols",
            self.name,
            self.info.compiler,
            self.info.opt,
            self.info.lang,
            self.sections.len(),
            self.symbols.len()
        )
    }
}

/// A binary paired with its ground truth — the unit of corpus evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// The binary as a detector sees it.
    pub binary: Binary,
    /// The compiler-known truth, for metrics only.
    pub truth: crate::truth::GroundTruth,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::BuildInfo;

    fn sample() -> Binary {
        Binary {
            name: "t".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![
                Section::new(SectionKind::Text, 0x1000, vec![0x90; 32]),
                Section::new(
                    SectionKind::Data,
                    0x4000,
                    0x1122_3344_5566_7788u64.to_le_bytes().to_vec(),
                ),
            ],
            symbols: vec![Symbol {
                name: "f".into(),
                addr: 0x1000,
                size: 32,
            }],
            entry: 0x1000,
        }
    }

    #[test]
    fn section_lookup_and_reads() {
        let b = sample();
        assert!(b.is_code(0x1000));
        assert!(!b.is_code(0x4000));
        assert_eq!(b.read_u64(0x4000), Some(0x1122_3344_5566_7788));
        assert_eq!(b.code_from(0x101f).map(<[u8]>::len), Some(1));
        assert!(!b.has_eh_frame());
        assert_eq!(b.eh_frame().unwrap().fde_count(), 0);
    }

    #[test]
    fn stripping_removes_symbols_only() {
        let b = sample();
        let s = b.stripped();
        assert!(b.has_symbols());
        assert!(!s.has_symbols());
        assert_eq!(s.sections, b.sections);
        assert_eq!(s.entry, b.entry);
    }
}
