//! # fetch-binary
//!
//! The loaded-binary container and ground-truth model of the FETCH
//! reproduction.
//!
//! A [`Binary`] is what detectors see: sections ([`Section`]), optional
//! [`Symbol`]s, and an entry point. A [`GroundTruth`] is what only the
//! metrics layer sees: the compiler-known mapping from code ranges to
//! source functions, including non-contiguous parts, FDE/symbol presence
//! per part, provenance ([`FuncKind`]) and reachability ([`Reach`])
//! classes. A [`TestCase`] pairs the two.
//!
//! Binaries serialize to real ELF64 images via [`write_elf`]. Loading
//! back has two paths:
//!
//! * **zero-copy** — [`ElfImage`] (owned, shareable) and [`ElfView`]
//!   (borrowed) parse and validate the header and section table but
//!   leave section bodies as windows of the one backing buffer, fed by
//!   an [`ImageSource`] ([`MemSource`] or the lazily faulting
//!   [`FileSource`]). [`ElfImage::to_binary`] materializes a [`Binary`]
//!   whose sections all share that buffer — no body bytes are copied,
//!   which [`LoadStats`] lets callers verify;
//! * **eager** — [`read_elf`] copies every section body into an owned
//!   [`Binary`] (validated through the same hardened parser).
//!
//! Malformed images — truncated headers, offsets that overflow or point
//! outside the file, overlapping or duplicated sections — are rejected
//! with a typed [`ElfError`]; no input can cause a panic or an
//! out-of-bounds slice.
//!
//! # Examples
//!
//! ```
//! use fetch_binary::{Binary, BuildInfo, ElfImage, Section, SectionKind, Symbol, write_elf};
//!
//! let bin = Binary {
//!     name: "demo".into(),
//!     info: BuildInfo::gcc_o2(),
//!     sections: vec![Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3])],
//!     symbols: vec![Symbol { name: "f".into(), addr: 0x40_1000, size: 2 }],
//!     entry: 0x40_1000,
//! };
//! let image = ElfImage::parse(write_elf(&bin))?;
//! let back = image.to_binary(); // zero section-body copies
//! assert_eq!(back.sections, bin.sections);
//! assert_eq!(image.load_stats().section_bytes_copied, 0);
//! # Ok::<(), fetch_binary::ElfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod elf;
mod meta;
mod section;
mod truth;
mod view;

pub use binary::{Binary, Symbol, TestCase};
pub use elf::{read_elf, write_elf, ElfError};
pub use meta::{BuildInfo, Compiler, Lang, OptLevel};
pub use section::{Section, SectionBytes, SectionKind};
pub use truth::{FuncKind, FunctionTruth, GroundTruth, Part, Reach};
pub use view::{ElfImage, ElfView, FileSource, ImageSource, LoadStats, MemSource, SectionRef};
