//! # fetch-binary
//!
//! The loaded-binary container and ground-truth model of the FETCH
//! reproduction.
//!
//! A [`Binary`] is what detectors see: sections ([`Section`]), optional
//! [`Symbol`]s, and an entry point. A [`GroundTruth`] is what only the
//! metrics layer sees: the compiler-known mapping from code ranges to
//! source functions, including non-contiguous parts, FDE/symbol presence
//! per part, provenance ([`FuncKind`]) and reachability ([`Reach`])
//! classes. A [`TestCase`] pairs the two.
//!
//! Binaries serialize to real ELF64 images via [`write_elf`] /
//! [`read_elf`].
//!
//! # Examples
//!
//! ```
//! use fetch_binary::{Binary, BuildInfo, Section, SectionKind, Symbol, write_elf, read_elf};
//!
//! let bin = Binary {
//!     name: "demo".into(),
//!     info: BuildInfo::gcc_o2(),
//!     sections: vec![Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3])],
//!     symbols: vec![Symbol { name: "f".into(), addr: 0x40_1000, size: 2 }],
//!     entry: 0x40_1000,
//! };
//! let elf = write_elf(&bin);
//! let back = read_elf(&elf)?;
//! assert_eq!(back.sections, bin.sections);
//! # Ok::<(), fetch_binary::ElfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod elf;
mod meta;
mod section;
mod truth;

pub use binary::{Binary, Symbol, TestCase};
pub use elf::{read_elf, write_elf, ElfError};
pub use meta::{BuildInfo, Compiler, Lang, OptLevel};
pub use section::{Section, SectionKind};
pub use truth::{FuncKind, FunctionTruth, GroundTruth, Part, Reach};
