//! Build metadata: compiler, optimization level, and source language.
//!
//! These live in the container crate (not the synthesizer) because the
//! metrics layer groups every paper table by them.

use std::fmt;

/// The producing compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Compiler {
    /// GNU GCC (the paper uses 8.1.0).
    Gcc,
    /// LLVM Clang (the paper uses 6.0.0).
    Clang,
}

impl Compiler {
    /// Both compilers, in the paper's order.
    pub const ALL: [Compiler; 2] = [Compiler::Gcc, Compiler::Clang];
}

impl fmt::Display for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compiler::Gcc => write!(f, "gcc"),
            Compiler::Clang => write!(f, "clang"),
        }
    }
}

/// Optimization level. The paper omits O0/O1 as "not widely used in
/// practice" (§IV-A) and evaluates O2, O3, Os and Ofast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// `-O2`
    O2,
    /// `-O3`
    O3,
    /// `-Os` (optimize for size).
    Os,
    /// `-Ofast`
    Ofast,
}

impl OptLevel {
    /// The four evaluated levels, in the paper's table order.
    pub const ALL: [OptLevel; 4] = [OptLevel::O2, OptLevel::O3, OptLevel::Os, OptLevel::Ofast];

    /// The abbreviation used in the paper's tables ("Of" for Ofast).
    pub fn short(self) -> &'static str {
        match self {
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Os => "Os",
            OptLevel::Ofast => "Of",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::Ofast => write!(f, "Ofast"),
            other => write!(f, "{}", other.short()),
        }
    }
}

/// Source language of the project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// C.
    C,
    /// C++ (exception handling used in anger).
    Cpp,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lang::C => write!(f, "c"),
            Lang::Cpp => write!(f, "c++"),
        }
    }
}

/// Full build description attached to a [`crate::Binary`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BuildInfo {
    /// Producing compiler.
    pub compiler: Compiler,
    /// Optimization level.
    pub opt: OptLevel,
    /// Source language.
    pub lang: Lang,
}

impl BuildInfo {
    /// A conventional default build (gcc -O2, C).
    pub fn gcc_o2() -> BuildInfo {
        BuildInfo {
            compiler: Compiler::Gcc,
            opt: OptLevel::O2,
            lang: Lang::C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_abbreviations() {
        assert_eq!(OptLevel::Ofast.short(), "Of");
        assert_eq!(OptLevel::Ofast.to_string(), "Ofast");
        assert_eq!(OptLevel::Os.to_string(), "Os");
        assert_eq!(Compiler::Gcc.to_string(), "gcc");
        assert_eq!(Lang::Cpp.to_string(), "c++");
    }
}
