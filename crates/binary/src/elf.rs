//! Minimal ELF64 writer and reader.
//!
//! Corpus binaries can be serialized to real System-V ELF executables
//! (readable by `readelf`/`objdump`) and loaded back. Only the features
//! the paper's detectors need are modeled: progbits sections, a function
//! symbol table, and the entry point. Build metadata is not representable
//! in plain ELF, so [`read_elf`] restores a default [`BuildInfo`].

use crate::binary::{Binary, Symbol};
use crate::meta::BuildInfo;
use crate::section::{Section, SectionKind};
use std::fmt;

const EHDR_SIZE: usize = 64;
const SHDR_SIZE: usize = 64;
const SYM_SIZE: usize = 24;

const SHT_PROGBITS: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;

const SHF_WRITE: u64 = 1;
const SHF_ALLOC: u64 = 2;
const SHF_EXECINSTR: u64 = 4;

/// Errors from ELF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Not an ELF64 little-endian file.
    BadMagic,
    /// A header or table points outside the file.
    Truncated,
    /// A section has an unrecognized name (the reader only loads the
    /// four sections the detectors use plus symbol tables).
    BadSectionName(String),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF64 little-endian file"),
            ElfError::Truncated => write!(f, "header or table points outside the file"),
            ElfError::BadSectionName(n) => write!(f, "unrecognized section name {n:?}"),
        }
    }
}

impl std::error::Error for ElfError {}

struct StrTab {
    bytes: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { bytes: vec![0] }
    }

    fn add(&mut self, s: &str) -> u32 {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        off
    }

    fn get(bytes: &[u8], off: usize) -> Option<String> {
        let end = bytes[off..].iter().position(|&b| b == 0)? + off;
        Some(String::from_utf8_lossy(&bytes[off..end]).into_owned())
    }
}

fn push_u16(v: &mut Vec<u8>, x: u16) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

/// Serializes `bin` as an ELF64 executable image.
pub fn write_elf(bin: &Binary) -> Vec<u8> {
    let mut shstr = StrTab::new();
    let mut strtab = StrTab::new();

    // Body: section contents placed sequentially after the ELF header.
    let mut body: Vec<u8> = Vec::new();
    // (name_off, type, flags, addr, file_off, size, link, info, entsize)
    type ShdrRow = (u32, u32, u64, u64, usize, usize, u32, u32, u64);
    let mut shdrs: Vec<ShdrRow> = Vec::new();
    shdrs.push((0, 0, 0, 0, 0, 0, 0, 0, 0)); // SHN_UNDEF

    for s in &bin.sections {
        let flags = match s.kind {
            SectionKind::Text => SHF_ALLOC | SHF_EXECINSTR,
            SectionKind::Rodata | SectionKind::EhFrame => SHF_ALLOC,
            SectionKind::Data => SHF_ALLOC | SHF_WRITE,
        };
        let name = shstr.add(s.kind.name());
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&s.bytes);
        shdrs.push((
            name,
            SHT_PROGBITS,
            flags,
            s.addr,
            off,
            s.bytes.len(),
            0,
            0,
            0,
        ));
    }

    // Symbol table (one null entry + function symbols).
    let mut symtab: Vec<u8> = vec![0; SYM_SIZE];
    for sym in &bin.symbols {
        let name = strtab.add(&sym.name);
        let shndx = bin
            .sections
            .iter()
            .position(|s| s.contains(sym.addr))
            .map(|i| (i + 1) as u16)
            .unwrap_or(0);
        push_u32(&mut symtab, name);
        symtab.push(0x12); // GLOBAL | FUNC
        symtab.push(0);
        push_u16(&mut symtab, shndx);
        push_u64(&mut symtab, sym.addr);
        push_u64(&mut symtab, sym.size);
    }

    let strtab_ix = (shdrs.len() + 1) as u32;
    if !bin.symbols.is_empty() {
        let name = shstr.add(".symtab");
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&symtab);
        shdrs.push((
            name,
            SHT_SYMTAB,
            0,
            0,
            off,
            symtab.len(),
            strtab_ix,
            1, // first global symbol index
            SYM_SIZE as u64,
        ));
        let name = shstr.add(".strtab");
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&strtab.bytes);
        shdrs.push((name, SHT_STRTAB, 0, 0, off, strtab.bytes.len(), 0, 0, 0));
    }

    // Section-header string table.
    let shstrtab_name = shstr.add(".shstrtab");
    let shstr_off = EHDR_SIZE + body.len();
    let shstr_bytes = shstr.bytes;
    body.extend_from_slice(&shstr_bytes);
    shdrs.push((
        shstrtab_name,
        SHT_STRTAB,
        0,
        0,
        shstr_off,
        shstr_bytes.len(),
        0,
        0,
        0,
    ));
    let shstrndx = (shdrs.len() - 1) as u16;

    let shoff = EHDR_SIZE + body.len();

    // ELF header.
    let mut out: Vec<u8> = Vec::with_capacity(shoff + shdrs.len() * SHDR_SIZE);
    out.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]);
    out.extend_from_slice(&[0; 8]);
    push_u16(&mut out, 2); // ET_EXEC
    push_u16(&mut out, 62); // EM_X86_64
    push_u32(&mut out, 1);
    push_u64(&mut out, bin.entry);
    push_u64(&mut out, 0); // e_phoff
    push_u64(&mut out, shoff as u64);
    push_u32(&mut out, 0); // e_flags
    push_u16(&mut out, EHDR_SIZE as u16);
    push_u16(&mut out, 0); // e_phentsize
    push_u16(&mut out, 0); // e_phnum
    push_u16(&mut out, SHDR_SIZE as u16);
    push_u16(&mut out, shdrs.len() as u16);
    push_u16(&mut out, shstrndx);
    debug_assert_eq!(out.len(), EHDR_SIZE);

    out.extend_from_slice(&body);
    for (name, ty, flags, addr, off, size, link, info, entsize) in shdrs {
        push_u32(&mut out, name);
        push_u32(&mut out, ty);
        push_u64(&mut out, flags);
        push_u64(&mut out, addr);
        push_u64(&mut out, off as u64);
        push_u64(&mut out, size as u64);
        push_u32(&mut out, link);
        push_u32(&mut out, info);
        push_u64(&mut out, 0); // sh_addralign
        push_u64(&mut out, entsize);
    }
    out
}

fn read_u16(b: &[u8], off: usize) -> Result<u16, ElfError> {
    Ok(u16::from_le_bytes(
        b.get(off..off + 2)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}
fn read_u32(b: &[u8], off: usize) -> Result<u32, ElfError> {
    Ok(u32::from_le_bytes(
        b.get(off..off + 4)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}
fn read_u64v(b: &[u8], off: usize) -> Result<u64, ElfError> {
    Ok(u64::from_le_bytes(
        b.get(off..off + 8)
            .ok_or(ElfError::Truncated)?
            .try_into()
            .unwrap(),
    ))
}

/// Parses an ELF64 image produced by [`write_elf`] (or any conforming
/// ELF with the standard four section names).
///
/// # Errors
///
/// Returns an [`ElfError`] describing the first structural problem.
pub fn read_elf(bytes: &[u8]) -> Result<Binary, ElfError> {
    if bytes.len() < EHDR_SIZE || &bytes[0..4] != b"\x7fELF" || bytes[4] != 2 || bytes[5] != 1 {
        return Err(ElfError::BadMagic);
    }
    let entry = read_u64v(bytes, 24)?;
    let shoff = read_u64v(bytes, 40)? as usize;
    let shnum = read_u16(bytes, 60)? as usize;
    let shstrndx = read_u16(bytes, 62)? as usize;

    struct Shdr {
        name: u32,
        ty: u32,
        addr: u64,
        off: usize,
        size: usize,
        link: u32,
    }
    let mut shdrs = Vec::with_capacity(shnum);
    for i in 0..shnum {
        let base = shoff + i * SHDR_SIZE;
        shdrs.push(Shdr {
            name: read_u32(bytes, base)?,
            ty: read_u32(bytes, base + 4)?,
            addr: read_u64v(bytes, base + 16)?,
            off: read_u64v(bytes, base + 24)? as usize,
            size: read_u64v(bytes, base + 32)? as usize,
            link: read_u32(bytes, base + 40)?,
        });
    }
    let shstr = shdrs.get(shstrndx).ok_or(ElfError::Truncated)?;
    let shstr_bytes = bytes
        .get(shstr.off..shstr.off + shstr.size)
        .ok_or(ElfError::Truncated)?;

    let mut sections = Vec::new();
    let mut symbols = Vec::new();
    for sh in &shdrs {
        let name = StrTab::get(shstr_bytes, sh.name as usize).unwrap_or_default();
        match sh.ty {
            SHT_PROGBITS => {
                let kind = match name.as_str() {
                    ".text" => SectionKind::Text,
                    ".rodata" => SectionKind::Rodata,
                    ".data" => SectionKind::Data,
                    ".eh_frame" => SectionKind::EhFrame,
                    other => return Err(ElfError::BadSectionName(other.to_string())),
                };
                let data = bytes
                    .get(sh.off..sh.off + sh.size)
                    .ok_or(ElfError::Truncated)?
                    .to_vec();
                sections.push(Section::new(kind, sh.addr, data));
            }
            SHT_SYMTAB => {
                let str_sh = shdrs.get(sh.link as usize).ok_or(ElfError::Truncated)?;
                let str_bytes = bytes
                    .get(str_sh.off..str_sh.off + str_sh.size)
                    .ok_or(ElfError::Truncated)?;
                let count = sh.size / SYM_SIZE;
                for i in 1..count {
                    let base = sh.off + i * SYM_SIZE;
                    let name_off = read_u32(bytes, base)? as usize;
                    let info = *bytes.get(base + 4).ok_or(ElfError::Truncated)?;
                    if info & 0xf != 2 {
                        continue; // not STT_FUNC
                    }
                    let value = read_u64v(bytes, base + 8)?;
                    let size = read_u64v(bytes, base + 16)?;
                    symbols.push(Symbol {
                        name: StrTab::get(str_bytes, name_off).unwrap_or_default(),
                        addr: value,
                        size,
                    });
                }
            }
            _ => {}
        }
    }

    Ok(Binary {
        name: "elf".into(),
        info: BuildInfo::gcc_o2(),
        sections,
        symbols,
        entry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Binary {
        Binary {
            name: "t".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![
                Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3, 0x90, 0xcc]),
                Section::new(SectionKind::Rodata, 0x40_2000, vec![1, 2, 3]),
                Section::new(SectionKind::Data, 0x40_3000, vec![9; 16]),
                Section::new(SectionKind::EhFrame, 0x40_4000, vec![0, 0, 0, 0]),
            ],
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    addr: 0x40_1000,
                    size: 2,
                },
                Symbol {
                    name: "pad".into(),
                    addr: 0x40_1002,
                    size: 2,
                },
            ],
            entry: 0x40_1000,
        }
    }

    #[test]
    fn roundtrip() {
        let bin = sample();
        let elf = write_elf(&bin);
        let back = read_elf(&elf).unwrap();
        assert_eq!(back.sections, bin.sections);
        assert_eq!(back.symbols, bin.symbols);
        assert_eq!(back.entry, bin.entry);
    }

    #[test]
    fn roundtrip_stripped() {
        let bin = sample().stripped();
        let elf = write_elf(&bin);
        let back = read_elf(&elf).unwrap();
        assert!(back.symbols.is_empty());
        assert_eq!(back.sections, bin.sections);
    }

    #[test]
    fn magic_is_checked() {
        assert_eq!(read_elf(b"not an elf").unwrap_err(), ElfError::BadMagic);
        let mut elf = write_elf(&sample());
        elf[4] = 1; // ELFCLASS32
        assert_eq!(read_elf(&elf).unwrap_err(), ElfError::BadMagic);
    }

    #[test]
    fn header_fields_look_like_x86_64_exec() {
        let elf = write_elf(&sample());
        assert_eq!(u16::from_le_bytes([elf[16], elf[17]]), 2); // ET_EXEC
        assert_eq!(u16::from_le_bytes([elf[18], elf[19]]), 62); // EM_X86_64
    }
}
