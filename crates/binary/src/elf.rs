//! Minimal ELF64 writer and eager reader.
//!
//! Corpus binaries can be serialized to real System-V ELF executables
//! (readable by `readelf`/`objdump`) and loaded back. Only the features
//! the paper's detectors need are modeled: progbits sections, a function
//! symbol table, and the entry point. Build metadata is not representable
//! in plain ELF, so [`read_elf`] restores a default
//! [`BuildInfo`](crate::BuildInfo).
//!
//! [`read_elf`] is the eager bridge: it validates through the hardened
//! [`crate::ElfView`] parser and then copies every section body into an
//! owned [`Binary`]. Callers that keep the image buffer should prefer
//! [`crate::ElfImage`], whose sections are zero-copy windows of one
//! shared buffer.

use crate::binary::Binary;
use crate::section::SectionKind;
use crate::view::ElfView;
use std::fmt;

pub(crate) const EHDR_SIZE: usize = 64;
pub(crate) const SHDR_SIZE: usize = 64;
pub(crate) const SYM_SIZE: usize = 24;

pub(crate) const SHT_PROGBITS: u32 = 1;
pub(crate) const SHT_SYMTAB: u32 = 2;
pub(crate) const SHT_STRTAB: u32 = 3;

const SHF_WRITE: u64 = 1;
const SHF_ALLOC: u64 = 2;
const SHF_EXECINSTR: u64 = 4;

/// Errors from ELF parsing. Malformed input always yields one of these —
/// never a panic, wrap-around, or out-of-bounds slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Not an ELF64 little-endian file.
    BadMagic,
    /// A header or table points outside the file.
    Truncated,
    /// A section has an unrecognized name (the reader only loads the
    /// four sections the detectors use plus symbol tables).
    BadSectionName(String),
    /// An offset + size computation overflows the address space (the
    /// header or section-table index it came from is recorded).
    RangeOverflow {
        /// Header field offset or section index the overflow came from.
        at: usize,
    },
    /// Two loaded sections claim overlapping file ranges.
    OverlappingSections {
        /// Name of the earlier section.
        a: &'static str,
        /// Name of the later, overlapping section.
        b: &'static str,
    },
    /// The same loadable section name appears twice.
    DuplicateSection(&'static str),
    /// The backing [`crate::ImageSource`] failed to produce bytes.
    Io(String),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF64 little-endian file"),
            ElfError::Truncated => write!(f, "header or table points outside the file"),
            ElfError::BadSectionName(n) => write!(f, "unrecognized section name {n:?}"),
            ElfError::RangeOverflow { at } => {
                write!(f, "offset + size overflows (from header entry {at})")
            }
            ElfError::OverlappingSections { a, b } => {
                write!(f, "sections {a} and {b} overlap in the file")
            }
            ElfError::DuplicateSection(n) => write!(f, "section {n} appears twice"),
            ElfError::Io(e) => write!(f, "image source failed: {e}"),
        }
    }
}

impl std::error::Error for ElfError {}

struct StrTab {
    bytes: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { bytes: vec![0] }
    }

    fn add(&mut self, s: &str) -> u32 {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        off
    }
}

fn push_u16(v: &mut Vec<u8>, x: u16) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}
fn push_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

/// Serializes `bin` as an ELF64 executable image.
pub fn write_elf(bin: &Binary) -> Vec<u8> {
    let mut shstr = StrTab::new();
    let mut strtab = StrTab::new();

    // Body: section contents placed sequentially after the ELF header.
    let mut body: Vec<u8> = Vec::new();
    // (name_off, type, flags, addr, file_off, size, link, info, entsize)
    type ShdrRow = (u32, u32, u64, u64, usize, usize, u32, u32, u64);
    let mut shdrs: Vec<ShdrRow> = Vec::new();
    shdrs.push((0, 0, 0, 0, 0, 0, 0, 0, 0)); // SHN_UNDEF

    for s in &bin.sections {
        let flags = match s.kind {
            SectionKind::Text => SHF_ALLOC | SHF_EXECINSTR,
            SectionKind::Rodata | SectionKind::EhFrame => SHF_ALLOC,
            SectionKind::Data => SHF_ALLOC | SHF_WRITE,
        };
        let name = shstr.add(s.kind.name());
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&s.bytes);
        shdrs.push((
            name,
            SHT_PROGBITS,
            flags,
            s.addr,
            off,
            s.bytes.len(),
            0,
            0,
            0,
        ));
    }

    // Symbol table (one null entry + function symbols).
    let mut symtab: Vec<u8> = vec![0; SYM_SIZE];
    for sym in &bin.symbols {
        let name = strtab.add(&sym.name);
        let shndx = bin
            .sections
            .iter()
            .position(|s| s.contains(sym.addr))
            .map(|i| (i + 1) as u16)
            .unwrap_or(0);
        push_u32(&mut symtab, name);
        symtab.push(0x12); // GLOBAL | FUNC
        symtab.push(0);
        push_u16(&mut symtab, shndx);
        push_u64(&mut symtab, sym.addr);
        push_u64(&mut symtab, sym.size);
    }

    let strtab_ix = (shdrs.len() + 1) as u32;
    if !bin.symbols.is_empty() {
        let name = shstr.add(".symtab");
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&symtab);
        shdrs.push((
            name,
            SHT_SYMTAB,
            0,
            0,
            off,
            symtab.len(),
            strtab_ix,
            1, // first global symbol index
            SYM_SIZE as u64,
        ));
        let name = shstr.add(".strtab");
        let off = EHDR_SIZE + body.len();
        body.extend_from_slice(&strtab.bytes);
        shdrs.push((name, SHT_STRTAB, 0, 0, off, strtab.bytes.len(), 0, 0, 0));
    }

    // Section-header string table.
    let shstrtab_name = shstr.add(".shstrtab");
    let shstr_off = EHDR_SIZE + body.len();
    let shstr_bytes = shstr.bytes;
    body.extend_from_slice(&shstr_bytes);
    shdrs.push((
        shstrtab_name,
        SHT_STRTAB,
        0,
        0,
        shstr_off,
        shstr_bytes.len(),
        0,
        0,
        0,
    ));
    let shstrndx = (shdrs.len() - 1) as u16;

    let shoff = EHDR_SIZE + body.len();

    // ELF header.
    let mut out: Vec<u8> = Vec::with_capacity(shoff + shdrs.len() * SHDR_SIZE);
    out.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]);
    out.extend_from_slice(&[0; 8]);
    push_u16(&mut out, 2); // ET_EXEC
    push_u16(&mut out, 62); // EM_X86_64
    push_u32(&mut out, 1);
    push_u64(&mut out, bin.entry);
    push_u64(&mut out, 0); // e_phoff
    push_u64(&mut out, shoff as u64);
    push_u32(&mut out, 0); // e_flags
    push_u16(&mut out, EHDR_SIZE as u16);
    push_u16(&mut out, 0); // e_phentsize
    push_u16(&mut out, 0); // e_phnum
    push_u16(&mut out, SHDR_SIZE as u16);
    push_u16(&mut out, shdrs.len() as u16);
    push_u16(&mut out, shstrndx);
    debug_assert_eq!(out.len(), EHDR_SIZE);

    out.extend_from_slice(&body);
    for (name, ty, flags, addr, off, size, link, info, entsize) in shdrs {
        push_u32(&mut out, name);
        push_u32(&mut out, ty);
        push_u64(&mut out, flags);
        push_u64(&mut out, addr);
        push_u64(&mut out, off as u64);
        push_u64(&mut out, size as u64);
        push_u32(&mut out, link);
        push_u32(&mut out, info);
        push_u64(&mut out, 0); // sh_addralign
        push_u64(&mut out, entsize);
    }
    out
}

/// Parses an ELF64 image produced by [`write_elf`] (or any conforming
/// ELF with the standard four section names) into an owned [`Binary`],
/// copying every section body.
///
/// Validation goes through the hardened [`ElfView`] parser; prefer
/// [`crate::ElfImage`] when the image buffer can be kept alive — its
/// sections are zero-copy windows of the shared buffer.
///
/// # Errors
///
/// Returns an [`ElfError`] describing the first structural problem.
pub fn read_elf(bytes: &[u8]) -> Result<Binary, ElfError> {
    Ok(ElfView::parse(bytes)?.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::Symbol;
    use crate::meta::BuildInfo;
    use crate::section::Section;

    fn sample() -> Binary {
        Binary {
            name: "t".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![
                Section::new(SectionKind::Text, 0x40_1000, vec![0x55, 0xc3, 0x90, 0xcc]),
                Section::new(SectionKind::Rodata, 0x40_2000, vec![1, 2, 3]),
                Section::new(SectionKind::Data, 0x40_3000, vec![9; 16]),
                Section::new(SectionKind::EhFrame, 0x40_4000, vec![0, 0, 0, 0]),
            ],
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    addr: 0x40_1000,
                    size: 2,
                },
                Symbol {
                    name: "pad".into(),
                    addr: 0x40_1002,
                    size: 2,
                },
            ],
            entry: 0x40_1000,
        }
    }

    #[test]
    fn roundtrip() {
        let bin = sample();
        let elf = write_elf(&bin);
        let back = read_elf(&elf).unwrap();
        assert_eq!(back.sections, bin.sections);
        assert_eq!(back.symbols, bin.symbols);
        assert_eq!(back.entry, bin.entry);
    }

    #[test]
    fn roundtrip_stripped() {
        let bin = sample().stripped();
        let elf = write_elf(&bin);
        let back = read_elf(&elf).unwrap();
        assert!(back.symbols.is_empty());
        assert_eq!(back.sections, bin.sections);
    }

    #[test]
    fn magic_is_checked() {
        assert_eq!(read_elf(b"not an elf").unwrap_err(), ElfError::BadMagic);
        let mut elf = write_elf(&sample());
        elf[4] = 1; // ELFCLASS32
        assert_eq!(read_elf(&elf).unwrap_err(), ElfError::BadMagic);
    }

    #[test]
    fn header_fields_look_like_x86_64_exec() {
        let elf = write_elf(&sample());
        assert_eq!(u16::from_le_bytes([elf[16], elf[17]]), 2); // ET_EXEC
        assert_eq!(u16::from_le_bytes([elf[18], elf[19]]), 62); // EM_X86_64
    }
}
