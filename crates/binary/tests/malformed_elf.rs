//! Malformed-ELF hardening suite: every structurally broken image must
//! come back as a typed [`ElfError`] — never a panic, arithmetic wrap,
//! or out-of-bounds slice — through both the lazy ([`ElfView`],
//! [`ElfImage`]) and eager ([`read_elf`]) loaders.
//!
//! The table-driven half pins down one regression per hardening rule;
//! the property-based half fuzzes random mutations and truncations of a
//! valid image, which is exactly the input family that used to reach
//! the unchecked `shoff + i * SHDR_SIZE` / `off + size` arithmetic.

use fetch_binary::{
    read_elf, write_elf, Binary, BuildInfo, ElfError, ElfImage, ElfView, Section, SectionKind,
    Symbol,
};
use proptest::prelude::*;

fn sample() -> Binary {
    Binary {
        name: "t".into(),
        info: BuildInfo::gcc_o2(),
        sections: vec![
            Section::new(SectionKind::Text, 0x40_1000, (0..64u8).collect::<Vec<u8>>()),
            Section::new(SectionKind::Rodata, 0x40_2000, vec![1, 2, 3, 4, 5]),
            Section::new(SectionKind::Data, 0x40_3000, vec![9; 24]),
            Section::new(SectionKind::EhFrame, 0x40_4000, vec![0, 0, 0, 0]),
        ],
        symbols: vec![
            Symbol {
                name: "main".into(),
                addr: 0x40_1000,
                size: 32,
            },
            Symbol {
                name: "helper".into(),
                addr: 0x40_1020,
                size: 16,
            },
        ],
        entry: 0x40_1000,
    }
}

/// Parses through every entry point; asserts they agree on ok/err and
/// returns the view-path result. Reaching the return at all means no
/// path panicked.
fn parse_everywhere(bytes: &[u8]) -> Result<(), ElfError> {
    let view = ElfView::parse(bytes).map(|v| {
        // Force the lazy parts too: section bodies, symbols, bridge.
        let _ = v.sections().map(|s| s.bytes.len()).sum::<usize>();
        let _ = v.symbols();
        let _ = v.to_owned();
    });
    let eager = read_elf(bytes);
    let image = ElfImage::parse(bytes.to_vec()).map(|i| {
        let _ = i.to_binary();
        let _ = i.load_stats();
    });
    assert_eq!(view.is_ok(), eager.is_ok(), "lazy and eager paths agree");
    assert_eq!(
        view.is_ok(),
        image.is_ok(),
        "borrowed and owned views agree"
    );
    view
}

fn shoff_of(image: &[u8]) -> usize {
    u64::from_le_bytes(image[40..48].try_into().unwrap()) as usize
}

const SHDR_SIZE: usize = 64;

#[test]
fn truncated_headers_error_at_every_prefix() {
    let image = write_elf(&sample());
    for len in 0..image.len() {
        let err = parse_everywhere(&image[..len]);
        assert!(err.is_err(), "prefix of {len} bytes must not parse");
    }
    assert!(parse_everywhere(&image).is_ok());
}

#[test]
fn section_table_offset_overflow_is_typed() {
    // e_shoff near u64::MAX made `shoff + i * SHDR_SIZE` wrap (release)
    // or panic (debug) in the old reader.
    for shoff in [u64::MAX, u64::MAX - 63, 1u64 << 62] {
        let mut image = write_elf(&sample());
        image[40..48].copy_from_slice(&shoff.to_le_bytes());
        assert!(matches!(
            parse_everywhere(&image),
            Err(ElfError::RangeOverflow { .. } | ElfError::Truncated)
        ));
    }
}

#[test]
fn section_body_out_of_bounds_is_typed() {
    let base = write_elf(&sample());
    let shoff = shoff_of(&base);
    // Section 1 (.text): push sh_offset past the file, then make
    // sh_offset + sh_size overflow.
    let off_field = shoff + SHDR_SIZE + 24;
    let size_field = shoff + SHDR_SIZE + 32;

    let mut image = base.clone();
    image[off_field..off_field + 8].copy_from_slice(&(base.len() as u64 + 1).to_le_bytes());
    assert_eq!(parse_everywhere(&image), Err(ElfError::Truncated));

    let mut image = base.clone();
    image[off_field..off_field + 8].copy_from_slice(&(u64::MAX - 16).to_le_bytes());
    image[size_field..size_field + 8].copy_from_slice(&64u64.to_le_bytes());
    assert!(matches!(
        parse_everywhere(&image),
        Err(ElfError::RangeOverflow { .. })
    ));

    // The symbol string table gets the same treatment (index 6 after
    // 4 progbits + symtab).
    let str_off_field = shoff + 6 * SHDR_SIZE + 24;
    let mut image = base.clone();
    image[str_off_field..str_off_field + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        parse_everywhere(&image),
        Err(ElfError::RangeOverflow { .. } | ElfError::Truncated)
    ));
}

#[test]
fn overlapping_sections_are_typed() {
    let base = write_elf(&sample());
    let shoff = shoff_of(&base);
    // Shift .rodata's file offset back into .text's range.
    let text_off = u64::from_le_bytes(base[shoff + SHDR_SIZE + 24..][..8].try_into().unwrap());
    let rodata_off_field = shoff + 2 * SHDR_SIZE + 24;
    let mut image = base;
    image[rodata_off_field..rodata_off_field + 8].copy_from_slice(&(text_off + 8).to_le_bytes());
    assert_eq!(
        parse_everywhere(&image),
        Err(ElfError::OverlappingSections {
            a: ".text",
            b: ".rodata"
        })
    );
}

#[test]
fn duplicate_and_unknown_section_names_are_typed() {
    let base = write_elf(&sample());
    let shoff = shoff_of(&base);
    // Point .rodata's sh_name at .text's name: duplicate.
    let text_name = base[shoff + SHDR_SIZE..shoff + SHDR_SIZE + 4].to_vec();
    let mut image = base.clone();
    image[shoff + 2 * SHDR_SIZE..shoff + 2 * SHDR_SIZE + 4].copy_from_slice(&text_name);
    assert_eq!(
        parse_everywhere(&image),
        Err(ElfError::DuplicateSection(".text"))
    );
    // Corrupt a name byte: unknown section name.
    let mut image = base.clone();
    let shstr_off = {
        let shstrndx = u16::from_le_bytes(base[62..64].try_into().unwrap()) as usize;
        u64::from_le_bytes(
            base[shoff + shstrndx * SHDR_SIZE + 24..][..8]
                .try_into()
                .unwrap(),
        ) as usize
    };
    image[shstr_off + 1] = b'x'; // ".text" -> "xtext" (offset 1 is the first name byte)
    assert!(matches!(
        parse_everywhere(&image),
        Err(ElfError::BadSectionName(_))
    ));
}

#[test]
fn bogus_shstrndx_is_typed() {
    let mut image = write_elf(&sample());
    image[62..64].copy_from_slice(&u16::MAX.to_le_bytes());
    assert_eq!(parse_everywhere(&image), Err(ElfError::Truncated));
}

#[test]
fn wrong_class_and_endianness_are_bad_magic() {
    let base = write_elf(&sample());
    for (at, val) in [(4usize, 1u8), (5, 2), (0, 0x7e)] {
        let mut image = base.clone();
        image[at] = val;
        assert_eq!(parse_everywhere(&image), Err(ElfError::BadMagic));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte mutations of a valid image parse to Ok or a typed
    /// error through every loader — never a panic (a panic fails the
    /// test) and never a disagreement between the lazy and eager paths.
    #[test]
    fn random_mutations_never_panic(
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
    ) {
        let mut image = write_elf(&sample());
        for (pos, val) in &edits {
            let at = *pos as usize % image.len();
            image[at] = *val;
        }
        let _ = parse_everywhere(&image);
    }

    /// Random truncations (optionally after mutations) never panic.
    #[test]
    fn random_truncations_never_panic(
        cut in any::<u16>(),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..6),
    ) {
        let mut image = write_elf(&sample());
        for (pos, val) in &edits {
            let at = *pos as usize % image.len();
            image[at] = *val;
        }
        let keep = cut as usize % (image.len() + 1);
        image.truncate(keep);
        let _ = parse_everywhere(&image);
    }

    /// Valid images round-trip through every loader with identical
    /// sections, symbols and entry — and the image path copies nothing.
    #[test]
    fn valid_images_roundtrip_all_paths(
        n_syms in 0usize..6,
        text_len in 1usize..512,
        entry in any::<u64>(),
    ) {
        let mut bin = sample();
        bin.entry = entry;
        bin.sections[0] =
            Section::new(SectionKind::Text, 0x40_1000, vec![0x90u8; text_len]);
        bin.symbols = (0..n_syms)
            .map(|i| Symbol {
                name: format!("f{i}"),
                addr: 0x40_1000 + i as u64 * 8,
                size: 8,
            })
            .collect();
        let elf = write_elf(&bin);
        let eager = read_elf(&elf).unwrap();
        prop_assert_eq!(&eager.sections, &bin.sections);
        prop_assert_eq!(&eager.symbols, &bin.symbols);
        prop_assert_eq!(eager.entry, bin.entry);
        let image = ElfImage::parse(elf).unwrap();
        let viewed = image.to_binary();
        prop_assert_eq!(&viewed.sections, &bin.sections);
        prop_assert_eq!(&viewed.symbols, &bin.symbols);
        prop_assert_eq!(image.load_stats().section_bytes_copied, 0);
    }
}
