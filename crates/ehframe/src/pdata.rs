//! Windows x64 `.pdata` exception data — the §VII-B generality study.
//!
//! The paper's preliminary investigation found that PE binaries carry an
//! FDE-like structure (`RUNTIME_FUNCTION` entries in `.pdata`) covering
//! the starts and boundaries of at least ~70% of functions. This module
//! implements that structure: fixed-size `(BeginAddress, EndAddress,
//! UnwindInfoAddress)` RVA triples, sorted by begin address.
//!
//! The `generality` bench emits a `.pdata`-style table for a synthetic
//! binary (covering the subset of functions Windows compilers register —
//! those with stack frames or exception semantics) and measures the
//! coverage a pdata-seeded detector achieves, mirroring the paper's
//! "at least 70% of the functions are covered" observation.

use std::fmt;

/// One `RUNTIME_FUNCTION` entry (image-relative addresses, like the real
/// format; we use full VAs for simplicity since our images are not
/// relocated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeFunction {
    /// Function start address.
    pub begin: u32,
    /// One-past-the-end address.
    pub end: u32,
    /// Address of the unwind information (opaque here).
    pub unwind_info: u32,
}

impl RuntimeFunction {
    /// Whether `addr` falls inside the covered range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.begin && addr < self.end
    }
}

/// A parsed (or to-be-encoded) `.pdata` section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pdata {
    /// Entries sorted by `begin` (the loader requires this).
    pub entries: Vec<RuntimeFunction>,
}

/// Errors from `.pdata` parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdataError {
    /// The section size is not a multiple of 12 bytes.
    BadSize,
    /// Entries are not sorted by begin address or have empty ranges.
    NotSorted,
}

impl fmt::Display for PdataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdataError::BadSize => write!(f, ".pdata size is not a multiple of 12"),
            PdataError::NotSorted => write!(f, ".pdata entries not sorted or empty"),
        }
    }
}

impl std::error::Error for PdataError {}

impl Pdata {
    /// Creates an empty table.
    pub fn new() -> Pdata {
        Pdata::default()
    }

    /// The function starts recorded by the table — the PE analogue of
    /// [`crate::EhFrame::pc_begins`].
    pub fn begins(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.begin as u64).collect()
    }

    /// Binary-searches the entry covering `addr` (task T1 on Windows).
    pub fn lookup(&self, addr: u32) -> Option<&RuntimeFunction> {
        let ix = self.entries.partition_point(|e| e.begin <= addr);
        let e = &self.entries[..ix];
        e.last().filter(|e| e.contains(addr))
    }

    /// Serializes to the on-disk format: little-endian 12-byte triples.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 12);
        for e in &self.entries {
            out.extend_from_slice(&e.begin.to_le_bytes());
            out.extend_from_slice(&e.end.to_le_bytes());
            out.extend_from_slice(&e.unwind_info.to_le_bytes());
        }
        out
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns [`PdataError::BadSize`] when `bytes` is not a whole number
    /// of entries, and [`PdataError::NotSorted`] when the loader's sorted
    /// invariant does not hold.
    pub fn parse(bytes: &[u8]) -> Result<Pdata, PdataError> {
        if !bytes.len().is_multiple_of(12) {
            return Err(PdataError::BadSize);
        }
        let mut entries = Vec::with_capacity(bytes.len() / 12);
        for chunk in bytes.chunks_exact(12) {
            entries.push(RuntimeFunction {
                begin: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                end: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
                unwind_info: u32::from_le_bytes(chunk[8..12].try_into().unwrap()),
            });
        }
        let sorted = entries.windows(2).all(|w| w[0].begin <= w[1].begin)
            && entries.iter().all(|e| e.begin < e.end);
        if !sorted {
            return Err(PdataError::NotSorted);
        }
        Ok(Pdata { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pdata {
        Pdata {
            entries: vec![
                RuntimeFunction {
                    begin: 0x1000,
                    end: 0x1080,
                    unwind_info: 0x5000,
                },
                RuntimeFunction {
                    begin: 0x1080,
                    end: 0x10f0,
                    unwind_info: 0x500c,
                },
                RuntimeFunction {
                    begin: 0x1100,
                    end: 0x1200,
                    unwind_info: 0x5018,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), 36);
        assert_eq!(Pdata::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn lookup_is_binary_search() {
        let p = sample();
        assert_eq!(p.lookup(0x1000).unwrap().begin, 0x1000);
        assert_eq!(p.lookup(0x107f).unwrap().begin, 0x1000);
        assert_eq!(p.lookup(0x1080).unwrap().begin, 0x1080);
        assert!(p.lookup(0x10f8).is_none()); // gap between entries
        assert!(p.lookup(0x0fff).is_none());
        assert_eq!(p.begins(), vec![0x1000, 0x1080, 0x1100]);
    }

    #[test]
    fn malformed_sections_rejected() {
        assert_eq!(Pdata::parse(&[0u8; 13]), Err(PdataError::BadSize));
        // Unsorted entries.
        let mut p = sample();
        p.entries.swap(0, 2);
        assert_eq!(Pdata::parse(&p.encode()), Err(PdataError::NotSorted));
        // Empty range.
        let bad = Pdata {
            entries: vec![RuntimeFunction {
                begin: 8,
                end: 8,
                unwind_info: 0,
            }],
        };
        assert_eq!(Pdata::parse(&bad.encode()), Err(PdataError::NotSorted));
    }
}
