//! CFI program evaluation: CFA rule tables and stack-height extraction.
//!
//! The paper's Algorithm 1 uses "the stack height recorded by CFIs in FDEs"
//! as its authoritative stack-pointer model (§V-B) and deliberately *skips*
//! functions whose CFIs do not give complete height information. This
//! module implements both the evaluation and that completeness check.

use crate::cfi::CfiInst;
use crate::records::{Cie, Fde};
use fetch_x64::Reg;
use std::fmt;

/// The rule describing how to compute the Canonical Frame Address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfaRule {
    /// Base register.
    pub reg: Reg,
    /// Byte offset added to the base register.
    pub offset: i64,
}

/// One row of the evaluated unwind table: the rules in effect starting at
/// `addr` (until the next row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfaRow {
    /// First address where this row applies.
    pub addr: u64,
    /// The CFA computation rule, or `None` if it is expression-based.
    pub cfa: Option<CfaRule>,
    /// Callee-saved registers currently on the stack, as
    /// `(register, offset from CFA)` pairs (offsets are negative).
    pub saved: Vec<(Reg, i64)>,
}

/// The fully evaluated unwind table of one FDE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfaTable {
    /// Covered range start.
    pub pc_begin: u64,
    /// Covered range end (exclusive).
    pub pc_end: u64,
    /// Rows sorted by address; the first row starts at `pc_begin`.
    pub rows: Vec<CfaRow>,
}

/// Errors from CFI evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// `DW_CFA_def_cfa_offset`/`def_cfa_register` appeared before any CFA
    /// rule was established.
    NoCfaRule,
    /// `DW_CFA_advance_loc` walked past the end of the FDE's range.
    AdvancePastEnd,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NoCfaRule => write!(f, "CFA modified before being defined"),
            EvalError::AdvancePastEnd => write!(f, "advance_loc beyond FDE range"),
        }
    }
}

impl std::error::Error for EvalError {}

impl CfaTable {
    /// Evaluates the CIE initial instructions followed by the FDE program.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for structurally impossible programs.
    pub fn evaluate(cie: &Cie, fde: &Fde) -> Result<CfaTable, EvalError> {
        struct State {
            cfa: Option<CfaRule>,
            cfa_is_expr: bool,
            saved: Vec<(Reg, i64)>,
        }
        let mut st = State {
            cfa: None,
            cfa_is_expr: false,
            saved: Vec::new(),
        };

        fn apply(inst: &CfiInst, st: &mut State, data_align: i64) -> Result<(), EvalError> {
            match inst {
                CfiInst::DefCfa { reg, offset } => {
                    st.cfa = Some(CfaRule {
                        reg: *reg,
                        offset: *offset as i64,
                    });
                    st.cfa_is_expr = false;
                }
                CfiInst::DefCfaRegister { reg } => {
                    st.cfa.as_mut().ok_or(EvalError::NoCfaRule)?.reg = *reg;
                }
                CfiInst::DefCfaOffset { offset } => {
                    st.cfa.as_mut().ok_or(EvalError::NoCfaRule)?.offset = *offset as i64;
                }
                CfiInst::Offset { reg, factored } => {
                    let off = *factored as i64 * data_align;
                    st.saved.retain(|(r, _)| r != reg);
                    st.saved.push((*reg, off));
                }
                CfiInst::Restore { reg } => {
                    st.saved.retain(|(r, _)| r != reg);
                }
                CfiInst::Expression { .. } => {
                    // A register recovered by a DWARF expression. We do not
                    // evaluate expressions; hand-written entries using them
                    // simply provide no usable CFA when no rule exists yet.
                    st.cfa_is_expr = st.cfa.is_none();
                }
                CfiInst::AdvanceLoc { .. } => {
                    unreachable!("advance handled by the caller")
                }
                CfiInst::Nop => {}
            }
            Ok(())
        }

        for inst in &cie.initial_cfis {
            if !matches!(inst, CfiInst::AdvanceLoc { .. }) {
                apply(inst, &mut st, cie.data_align)?;
            }
        }

        let mut rows: Vec<CfaRow> = Vec::new();
        let mut loc = fde.pc_begin;
        let commit = |addr: u64, st: &State, rows: &mut Vec<CfaRow>| {
            let row = CfaRow {
                addr,
                cfa: if st.cfa_is_expr { None } else { st.cfa },
                saved: st.saved.clone(),
            };
            match rows.last_mut() {
                Some(last) if last.addr == addr => *last = row,
                _ => rows.push(row),
            }
        };

        for inst in &fde.cfis {
            if let CfiInst::AdvanceLoc { delta } = inst {
                // Close the row covering [loc, loc+delta) with the state
                // accumulated so far. An advance that would wrap the
                // address space is past any representable range end.
                commit(loc, &st, &mut rows);
                loc = loc.checked_add(*delta).ok_or(EvalError::AdvancePastEnd)?;
                if loc > fde.pc_end() {
                    return Err(EvalError::AdvancePastEnd);
                }
            } else {
                apply(inst, &mut st, cie.data_align)?;
            }
        }
        commit(loc, &st, &mut rows);

        Ok(CfaTable {
            pc_begin: fde.pc_begin,
            pc_end: fde.pc_end(),
            rows,
        })
    }

    /// The row in effect at `pc`, or `None` outside the covered range.
    pub fn row_at(&self, pc: u64) -> Option<&CfaRow> {
        if pc < self.pc_begin || pc >= self.pc_end {
            return None;
        }
        let ix = match self.rows.binary_search_by_key(&pc, |r| r.addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some(&self.rows[ix])
    }
}

/// Stack heights derived from CFIs: for each region, the number of bytes
/// the stack pointer sits *below* the return address slot.
///
/// Height 0 means `rsp` points directly at the return address — the state
/// required at a tail-call site (Algorithm 1, first criterion). At function
/// entry `CFA = rsp + 8`, i.e. height 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeightTable {
    /// Covered range start.
    pub pc_begin: u64,
    /// Covered range end (exclusive).
    pub pc_end: u64,
    /// `(from_addr, height)` entries sorted by address.
    pub entries: Vec<(u64, i64)>,
}

impl HeightTable {
    /// The stack height in effect at `pc`, or `None` outside the range.
    pub fn height_at(&self, pc: u64) -> Option<i64> {
        if pc < self.pc_begin || pc >= self.pc_end {
            return None;
        }
        let ix = match self.entries.binary_search_by_key(&pc, |e| e.0) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some(self.entries[ix].1)
    }
}

/// Extracts complete stack-height information from an FDE, mirroring the
/// paper's conservative criteria (§V-B):
///
/// 1. the CFA must be represented via `rsp` and initialized as `rsp + 8`;
/// 2. every CFA change must be a `DW_CFA_def_cfa_offset` keeping `rsp` as
///    the base (a switch to `rbp` or an expression makes heights at later
///    instructions unobservable from CFIs alone).
///
/// Returns `Ok(None)` when the information is incomplete — the caller is
/// expected to *skip* such functions rather than guess.
///
/// # Errors
///
/// Propagates [`EvalError`] for structurally invalid programs.
pub fn stack_heights(cie: &Cie, fde: &Fde) -> Result<Option<HeightTable>, EvalError> {
    let rows = cfa_rule_rows(cie, fde)?;
    let mut entries = Vec::with_capacity(rows.len());
    for &(addr, cfa) in &rows {
        match cfa {
            Some(CfaRule {
                reg: Reg::Rsp,
                offset,
            }) => {
                entries.push((addr, offset - 8));
            }
            _ => return Ok(None), // rbp-based or expression CFA: incomplete
        }
    }
    match entries.first() {
        Some(&(addr, 0)) if addr == fde.pc_begin => {}
        _ => return Ok(None), // not initialized as rsp+8 at the entry
    }
    Ok(Some(HeightTable {
        pc_begin: fde.pc_begin,
        pc_end: fde.pc_end(),
        entries,
    }))
}

/// The CFA-rule column of [`CfaTable::evaluate`], without materializing
/// the per-row saved-register vectors (the clone-per-row the full table
/// pays, which [`stack_heights`] never reads). Same program evaluation,
/// same commit/replace discipline, same errors.
fn cfa_rule_rows(cie: &Cie, fde: &Fde) -> Result<Vec<(u64, Option<CfaRule>)>, EvalError> {
    let mut cfa: Option<CfaRule> = None;
    let mut cfa_is_expr = false;
    let apply = |inst: &CfiInst,
                 cfa: &mut Option<CfaRule>,
                 cfa_is_expr: &mut bool|
     -> Result<(), EvalError> {
        match inst {
            CfiInst::DefCfa { reg, offset } => {
                *cfa = Some(CfaRule {
                    reg: *reg,
                    offset: *offset as i64,
                });
                *cfa_is_expr = false;
            }
            CfiInst::DefCfaRegister { reg } => {
                cfa.as_mut().ok_or(EvalError::NoCfaRule)?.reg = *reg;
            }
            CfiInst::DefCfaOffset { offset } => {
                cfa.as_mut().ok_or(EvalError::NoCfaRule)?.offset = *offset as i64;
            }
            // Saved-register bookkeeping: irrelevant to the CFA column.
            CfiInst::Offset { .. } | CfiInst::Restore { .. } => {}
            CfiInst::Expression { .. } => {
                *cfa_is_expr = cfa.is_none();
            }
            CfiInst::AdvanceLoc { .. } => unreachable!("advance handled by the caller"),
            CfiInst::Nop => {}
        }
        Ok(())
    };
    for inst in &cie.initial_cfis {
        if !matches!(inst, CfiInst::AdvanceLoc { .. }) {
            apply(inst, &mut cfa, &mut cfa_is_expr)?;
        }
    }
    let mut rows: Vec<(u64, Option<CfaRule>)> = Vec::new();
    let mut loc = fde.pc_begin;
    let commit = |addr: u64,
                  cfa: Option<CfaRule>,
                  cfa_is_expr: bool,
                  rows: &mut Vec<(u64, Option<CfaRule>)>| {
        let row = (addr, if cfa_is_expr { None } else { cfa });
        match rows.last_mut() {
            Some(last) if last.0 == addr => *last = row,
            _ => rows.push(row),
        }
    };
    for inst in &fde.cfis {
        if let CfiInst::AdvanceLoc { delta } = inst {
            commit(loc, cfa, cfa_is_expr, &mut rows);
            loc = loc.checked_add(*delta).ok_or(EvalError::AdvancePastEnd)?;
            if loc > fde.pc_end() {
                return Err(EvalError::AdvancePastEnd);
            }
        } else {
            apply(inst, &mut cfa, &mut cfa_is_expr)?;
        }
    }
    commit(loc, cfa, cfa_is_expr, &mut rows);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_4b() -> (Cie, Fde) {
        let cie = Cie::default();
        let fde = Fde {
            pc_begin: 0xb0,
            pc_range: 56,
            cfis: vec![
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::Offset {
                    reg: Reg::Rbp,
                    factored: 2,
                },
                CfiInst::AdvanceLoc { delta: 12 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::Offset {
                    reg: Reg::Rbx,
                    factored: 3,
                },
                CfiInst::AdvanceLoc { delta: 11 },
                CfiInst::DefCfaOffset { offset: 32 },
                CfiInst::AdvanceLoc { delta: 29 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 8 },
            ],
        };
        (cie, fde)
    }

    #[test]
    fn figure_4_cfa_evolution() {
        let (cie, fde) = figure_4b();
        let table = CfaTable::evaluate(&cie, &fde).unwrap();
        // At b0 (entry): CFA = rsp + 8.
        let row = table.row_at(0xb0).unwrap();
        assert_eq!(
            row.cfa,
            Some(CfaRule {
                reg: Reg::Rsp,
                offset: 8
            })
        );
        // After push rbp (b1..): CFA = rsp + 16, rbp saved at cfa-16.
        let row = table.row_at(0xb1).unwrap();
        assert_eq!(
            row.cfa,
            Some(CfaRule {
                reg: Reg::Rsp,
                offset: 16
            })
        );
        assert!(row.saved.contains(&(Reg::Rbp, -16)));
        // Mid-body (c8..e4): CFA = rsp + 32 with rbp and rbx saved.
        let row = table.row_at(0xd0).unwrap();
        assert_eq!(
            row.cfa,
            Some(CfaRule {
                reg: Reg::Rsp,
                offset: 32
            })
        );
        assert!(row.saved.contains(&(Reg::Rbx, -24)));
        // After final pop rbp (e7): back to CFA = rsp + 8.
        let row = table.row_at(0xe7).unwrap();
        assert_eq!(
            row.cfa,
            Some(CfaRule {
                reg: Reg::Rsp,
                offset: 8
            })
        );
        // Outside the range.
        assert!(table.row_at(0xe8).is_none());
    }

    #[test]
    fn figure_4_stack_heights() {
        let (cie, fde) = figure_4b();
        let h = stack_heights(&cie, &fde).unwrap().expect("complete CFI");
        assert_eq!(h.height_at(0xb0), Some(0)); // entry
        assert_eq!(h.height_at(0xb1), Some(8)); // after push rbp
        assert_eq!(h.height_at(0xbd), Some(16)); // after push rbx
        assert_eq!(h.height_at(0xc8), Some(24)); // after sub rsp,8
        assert_eq!(h.height_at(0xe5), Some(16)); // after add rsp,8
        assert_eq!(h.height_at(0xe6), Some(8)); // after pop rbx
        assert_eq!(h.height_at(0xe7), Some(0)); // after pop rbp: ready to ret
        assert_eq!(h.height_at(0x50), None);
    }

    #[test]
    fn rbp_based_frames_are_incomplete() {
        let cie = Cie::default();
        let fde = Fde {
            pc_begin: 0x100,
            pc_range: 0x20,
            cfis: vec![
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::AdvanceLoc { delta: 3 },
                CfiInst::DefCfaRegister { reg: Reg::Rbp },
            ],
        };
        assert_eq!(stack_heights(&cie, &fde).unwrap(), None);
    }

    #[test]
    fn non_standard_initial_rule_is_incomplete() {
        // Hand-written FDEs sometimes start with a non rsp+8 rule.
        let cie = Cie {
            initial_cfis: vec![CfiInst::DefCfa {
                reg: Reg::Rsp,
                offset: 16,
            }],
            ..Cie::default()
        };
        let fde = Fde {
            pc_begin: 0,
            pc_range: 8,
            cfis: vec![],
        };
        assert_eq!(stack_heights(&cie, &fde).unwrap(), None);
    }

    #[test]
    fn advance_past_end_rejected() {
        let cie = Cie::default();
        let fde = Fde {
            pc_begin: 0,
            pc_range: 4,
            cfis: vec![CfiInst::AdvanceLoc { delta: 100 }],
        };
        assert_eq!(
            CfaTable::evaluate(&cie, &fde),
            Err(EvalError::AdvancePastEnd)
        );
    }

    #[test]
    fn def_cfa_offset_without_rule_rejected() {
        let mut cie = Cie::default();
        cie.initial_cfis.clear();
        let fde = Fde {
            pc_begin: 0,
            pc_range: 4,
            cfis: vec![CfiInst::DefCfaOffset { offset: 16 }],
        };
        assert_eq!(CfaTable::evaluate(&cie, &fde), Err(EvalError::NoCfaRule));
    }
}
