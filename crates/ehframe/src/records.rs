//! CIE/FDE records and the binary `.eh_frame` section format (Figure 3).

use crate::cfi::{decode_cfis, encode_cfis, CfiError, CfiInst};
use crate::leb::{read_uleb, write_uleb, LebError};
use fetch_x64::Reg;
use std::fmt;

/// `DW_EH_PE_pcrel | DW_EH_PE_sdata4` — the pointer encoding GCC emits for
/// FDE `PC Begin` fields on x86-64.
pub const PE_PCREL_SDATA4: u8 = 0x1b;

/// A Common Information Entry: per-object-file defaults shared by its FDEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cie {
    /// CIE version (1 for .eh_frame).
    pub version: u8,
    /// Code alignment factor (1 on x86-64).
    pub code_align: u64,
    /// Data alignment factor (-8 on x86-64).
    pub data_align: i64,
    /// DWARF number of the return-address column (16 = RA on x86-64).
    pub ret_addr_reg: u8,
    /// Pointer encoding for FDE PC Begin fields.
    pub fde_encoding: u8,
    /// Initial CFI program establishing the default rules
    /// (conventionally `DW_CFA_def_cfa rsp+8; DW_CFA_offset RA at cfa-8`).
    pub initial_cfis: Vec<CfiInst>,
}

impl Default for Cie {
    fn default() -> Self {
        Cie {
            version: 1,
            code_align: 1,
            data_align: -8,
            ret_addr_reg: 16,
            fde_encoding: PE_PCREL_SDATA4,
            initial_cfis: vec![CfiInst::DefCfa {
                reg: Reg::Rsp,
                offset: 8,
            }],
        }
    }
}

/// A Frame Description Entry: the unwind record of one (part of a) function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fde {
    /// Start address of the covered code range (`PC Begin`).
    pub pc_begin: u64,
    /// Length of the covered range in bytes (`PC Range`).
    pub pc_range: u64,
    /// The CFI program for this range.
    pub cfis: Vec<CfiInst>,
}

impl Fde {
    /// One-past-the-end address of the covered range, saturating at
    /// `u64::MAX`.
    ///
    /// [`parse_eh_frame`] rejects FDEs whose `pc_begin + pc_range`
    /// overflows ([`ParseError::RangeOverflow`]), so parsed records
    /// never saturate; hand-built adversarial records degrade to a
    /// range clamped at the top of the address space instead of
    /// wrapping (release) or panicking (debug).
    pub fn pc_end(&self) -> u64 {
        self.pc_begin.saturating_add(self.pc_range)
    }

    /// Whether `pc` falls inside the covered range.
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.pc_begin && pc < self.pc_end()
    }
}

/// A parsed (or to-be-encoded) `.eh_frame` section: CIEs with their FDEs,
/// in section order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EhFrame {
    /// `(CIE, its FDEs)` groups, mirroring the section layout in Figure 3.
    pub groups: Vec<(Cie, Vec<Fde>)>,
}

impl EhFrame {
    /// Creates an empty section model.
    pub fn new() -> EhFrame {
        EhFrame::default()
    }

    /// Iterates over every FDE in section order.
    pub fn fdes(&self) -> impl Iterator<Item = &Fde> {
        self.groups.iter().flat_map(|(_, fdes)| fdes.iter())
    }

    /// Iterates over every FDE with its owning CIE.
    pub fn fdes_with_cie(&self) -> impl Iterator<Item = (&Cie, &Fde)> {
        self.groups
            .iter()
            .flat_map(|(cie, fdes)| fdes.iter().map(move |f| (cie, f)))
    }

    /// Total number of FDEs.
    pub fn fde_count(&self) -> usize {
        self.groups.iter().map(|(_, f)| f.len()).sum()
    }

    /// Finds the FDE covering `pc` — task T1 of the unwinder (§III-B).
    pub fn fde_for_pc(&self, pc: u64) -> Option<&Fde> {
        self.fdes().find(|f| f.contains(pc))
    }

    /// All `PC Begin` values, the raw material of FDE-based function-start
    /// detection (§IV-B).
    pub fn pc_begins(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.fdes().map(|f| f.pc_begin).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Errors produced while parsing a binary `.eh_frame` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The section ended inside an entry.
    Truncated,
    /// An entry length field was inconsistent with the section size.
    BadLength {
        /// Offset of the entry within the section.
        at: usize,
    },
    /// An FDE referenced a CIE at an offset where no CIE was parsed.
    DanglingCiePointer {
        /// Offset of the FDE within the section.
        at: usize,
    },
    /// Unsupported CIE field (version, augmentation, or pointer encoding).
    UnsupportedCie {
        /// Offset of the CIE within the section.
        at: usize,
    },
    /// An FDE's `PC Begin + PC Range` overflows the address space.
    RangeOverflow {
        /// Offset of the FDE within the section.
        at: usize,
    },
    /// Malformed CFI program.
    Cfi(CfiError),
    /// Malformed LEB128 field.
    Leb,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "section ended inside an entry"),
            ParseError::BadLength { at } => write!(f, "inconsistent entry length at {at:#x}"),
            ParseError::DanglingCiePointer { at } => {
                write!(f, "FDE at {at:#x} references an unknown CIE")
            }
            ParseError::UnsupportedCie { at } => write!(f, "unsupported CIE at {at:#x}"),
            ParseError::RangeOverflow { at } => {
                write!(f, "FDE at {at:#x} covers a range past the address space")
            }
            ParseError::Cfi(e) => write!(f, "bad CFI program: {e}"),
            ParseError::Leb => write!(f, "malformed LEB128 field"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Cfi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CfiError> for ParseError {
    fn from(e: CfiError) -> Self {
        ParseError::Cfi(e)
    }
}

impl From<LebError> for ParseError {
    fn from(_: LebError) -> Self {
        ParseError::Leb
    }
}

/// Errors produced while encoding an [`EhFrame`] to section bytes.
///
/// The `pcrel | sdata4` pointer encoding can only express relocations
/// within ±2 GiB; a model whose addresses fall outside that window is
/// reported instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An FDE's `PC Begin` lies more than ±2 GiB from its encoded field.
    PcRelOutOfRange {
        /// The FDE's start address.
        pc_begin: u64,
        /// Virtual address of the `PC Begin` field being encoded.
        field_addr: u64,
    },
    /// An FDE's `PC Range` exceeds the signed 32-bit field.
    PcRangeTooLarge {
        /// The FDE's start address.
        pc_begin: u64,
        /// The unencodable range.
        pc_range: u64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::PcRelOutOfRange {
                pc_begin,
                field_addr,
            } => write!(
                f,
                "FDE pc_begin {pc_begin:#x} is not within ±2GiB of its field at {field_addr:#x}"
            ),
            EncodeError::PcRangeTooLarge { pc_begin, pc_range } => write!(
                f,
                "FDE at {pc_begin:#x} has pc_range {pc_range:#x}, too large for sdata4"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes the section to bytes as it would appear at virtual address
/// `section_addr` (needed because `PC Begin` uses pc-relative encoding).
///
/// The layout follows the de-facto GCC format: 4-byte length, CIE id /
/// CIE pointer, `zR` augmentation, and a terminating zero-length entry.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an FDE's addresses cannot be
/// expressed in the `pcrel | sdata4` encoding (relocation outside
/// ±2 GiB, or a range wider than 31 bits).
pub fn encode_eh_frame(eh: &EhFrame, section_addr: u64) -> Result<Vec<u8>, EncodeError> {
    let mut out: Vec<u8> = Vec::new();
    for (cie, fdes) in &eh.groups {
        // ---- CIE ----
        let cie_off = out.len();
        out.extend_from_slice(&[0; 4]); // length placeholder
        out.extend_from_slice(&0u32.to_le_bytes()); // CIE id = 0
        out.push(cie.version);
        out.extend_from_slice(b"zR\0");
        write_uleb(&mut out, cie.code_align);
        crate::leb::write_sleb(&mut out, cie.data_align);
        write_uleb(&mut out, cie.ret_addr_reg as u64);
        write_uleb(&mut out, 1); // augmentation data length
        out.push(cie.fde_encoding);
        encode_cfis(&cie.initial_cfis, cie.code_align, &mut out);
        pad_and_patch_length(&mut out, cie_off);

        // ---- FDEs ----
        for fde in fdes {
            let fde_off = out.len();
            out.extend_from_slice(&[0; 4]); // length placeholder
                                            // CIE pointer: distance from this field back to the CIE start.
            let cie_ptr = (fde_off + 4 - cie_off) as u32;
            out.extend_from_slice(&cie_ptr.to_le_bytes());
            // PC Begin, pcrel sdata4.
            let field_addr = section_addr.wrapping_add(out.len() as u64);
            let rel = fde.pc_begin.wrapping_sub(field_addr) as i64;
            let rel = i32::try_from(rel).map_err(|_| EncodeError::PcRelOutOfRange {
                pc_begin: fde.pc_begin,
                field_addr,
            })?;
            out.extend_from_slice(&rel.to_le_bytes());
            // PC Range, sdata4 (absolute length).
            let range = i32::try_from(fde.pc_range).map_err(|_| EncodeError::PcRangeTooLarge {
                pc_begin: fde.pc_begin,
                pc_range: fde.pc_range,
            })?;
            out.extend_from_slice(&range.to_le_bytes());
            write_uleb(&mut out, 0); // augmentation data length
            encode_cfis(&fde.cfis, cie.code_align, &mut out);
            pad_and_patch_length(&mut out, fde_off);
        }
    }
    // Terminator: zero length.
    out.extend_from_slice(&0u32.to_le_bytes());
    Ok(out)
}

fn pad_and_patch_length(out: &mut Vec<u8>, entry_off: usize) {
    // Pad the entry body to 4-byte alignment with DW_CFA_nop (0x00).
    while !(out.len() - entry_off).is_multiple_of(4) {
        out.push(0);
    }
    let len = (out.len() - entry_off - 4) as u32;
    out[entry_off..entry_off + 4].copy_from_slice(&len.to_le_bytes());
}

/// Parses a binary `.eh_frame` section located at `section_addr`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first structural problem found.
pub fn parse_eh_frame(bytes: &[u8], section_addr: u64) -> Result<EhFrame, ParseError> {
    let mut eh = EhFrame::new();
    // Map from CIE section offset to index in eh.groups.
    let mut cie_index: Vec<(usize, usize)> = Vec::new();
    let mut pos = 0usize;

    while pos + 4 <= bytes.len() {
        let entry_off = pos;
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if len == 0 {
            break; // terminator
        }
        let body_end = pos
            .checked_add(len)
            .ok_or(ParseError::BadLength { at: entry_off })?;
        if body_end > bytes.len() {
            return Err(ParseError::BadLength { at: entry_off });
        }
        let id_field_off = pos;
        let id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        pos += 4;

        if id == 0 {
            // ---- CIE ----
            let mut p = pos;
            let version = *bytes.get(p).ok_or(ParseError::Truncated)?;
            p += 1;
            let aug_start = p;
            while *bytes.get(p).ok_or(ParseError::Truncated)? != 0 {
                p += 1;
            }
            let augmentation = &bytes[aug_start..p];
            p += 1;
            if version != 1 || augmentation != b"zR" {
                return Err(ParseError::UnsupportedCie { at: entry_off });
            }
            let code_align = read_uleb(bytes, &mut p)?;
            let data_align = crate::leb::read_sleb(bytes, &mut p)?;
            let ret_addr_reg = read_uleb(bytes, &mut p)? as u8;
            let aug_len = read_uleb(bytes, &mut p)? as usize;
            // Checked: an adversarial augmentation length must not wrap
            // `p` (release) or panic (debug).
            let aug_end = p
                .checked_add(aug_len)
                .ok_or(ParseError::UnsupportedCie { at: entry_off })?;
            if aug_len < 1 || aug_end > body_end {
                return Err(ParseError::UnsupportedCie { at: entry_off });
            }
            let fde_encoding = bytes[p];
            p = aug_end;
            let mut initial_cfis = decode_cfis(&bytes[p..body_end], code_align)?;
            // Strip trailing alignment nops for a clean model round trip.
            while initial_cfis.last() == Some(&CfiInst::Nop) {
                initial_cfis.pop();
            }
            cie_index.push((entry_off, eh.groups.len()));
            eh.groups.push((
                Cie {
                    version,
                    code_align,
                    data_align,
                    ret_addr_reg,
                    fde_encoding,
                    initial_cfis,
                },
                Vec::new(),
            ));
        } else {
            // ---- FDE ----
            let cie_off = id_field_off
                .checked_sub(id as usize)
                .ok_or(ParseError::DanglingCiePointer { at: entry_off })?;
            let group = cie_index
                .iter()
                .find(|(off, _)| *off == cie_off)
                .map(|(_, ix)| *ix)
                .ok_or(ParseError::DanglingCiePointer { at: entry_off })?;
            let code_align = eh.groups[group].0.code_align;

            let mut p = pos;
            let field = bytes.get(p..p + 4).ok_or(ParseError::Truncated)?;
            let rel = i32::from_le_bytes(field.try_into().unwrap());
            let pc_begin = section_addr
                .wrapping_add(p as u64)
                .wrapping_add(rel as i64 as u64);
            p += 4;
            let field = bytes.get(p..p + 4).ok_or(ParseError::Truncated)?;
            let pc_range = i32::from_le_bytes(field.try_into().unwrap()) as i64;
            if pc_range < 0 {
                return Err(ParseError::BadLength { at: entry_off });
            }
            // Reject coverage past the top of the address space: every
            // consumer computes `pc_begin + pc_range`, which must not
            // wrap (release) or panic (debug).
            if pc_begin.checked_add(pc_range as u64).is_none() {
                return Err(ParseError::RangeOverflow { at: entry_off });
            }
            p += 4;
            let aug_len = read_uleb(bytes, &mut p)? as usize;
            // Checked for the same reason as the CIE path above.
            p = p.checked_add(aug_len).ok_or(ParseError::Truncated)?;
            if p > body_end {
                return Err(ParseError::Truncated);
            }
            let cfis = decode_cfis(&bytes[p..body_end], code_align)?;
            // Strip trailing alignment nops for a cleaner model round trip.
            let mut cfis = cfis;
            while cfis.last() == Some(&CfiInst::Nop) {
                cfis.pop();
            }
            eh.groups[group].1.push(Fde {
                pc_begin,
                pc_range: pc_range as u64,
                cfis,
            });
        }
        pos = body_end;
    }
    Ok(eh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_4b_fde() -> Fde {
        Fde {
            pc_begin: 0xb0,
            pc_range: 56,
            cfis: vec![
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::Offset {
                    reg: Reg::Rbp,
                    factored: 2,
                },
                CfiInst::AdvanceLoc { delta: 12 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::Offset {
                    reg: Reg::Rbx,
                    factored: 3,
                },
                CfiInst::AdvanceLoc { delta: 11 },
                CfiInst::DefCfaOffset { offset: 32 },
                CfiInst::AdvanceLoc { delta: 29 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 8 },
            ],
        }
    }

    #[test]
    fn roundtrip_single_group() {
        let mut eh = EhFrame::new();
        eh.groups.push((Cie::default(), vec![figure_4b_fde()]));
        let addr = 0x40_0000;
        let bytes = encode_eh_frame(&eh, addr).unwrap();
        let parsed = parse_eh_frame(&bytes, addr).unwrap();
        assert_eq!(parsed, eh);
    }

    #[test]
    fn roundtrip_multiple_groups() {
        let mut eh = EhFrame::new();
        let f1 = Fde {
            pc_begin: 0x1000,
            pc_range: 0x80,
            cfis: vec![],
        };
        let f2 = Fde {
            pc_begin: 0x1100,
            pc_range: 0x40,
            cfis: vec![
                CfiInst::AdvanceLoc { delta: 4 },
                CfiInst::DefCfaOffset { offset: 16 },
            ],
        };
        let f3 = Fde {
            pc_begin: 0x2000,
            pc_range: 0x10,
            cfis: vec![],
        };
        eh.groups.push((Cie::default(), vec![f1, f2]));
        let mut cie2 = Cie::default();
        cie2.initial_cfis.push(CfiInst::Offset {
            reg: Reg::Rbp,
            factored: 2,
        });
        eh.groups.push((cie2, vec![f3]));
        let bytes = encode_eh_frame(&eh, 0x7_0000).unwrap();
        let parsed = parse_eh_frame(&bytes, 0x7_0000).unwrap();
        assert_eq!(parsed, eh);
        assert_eq!(parsed.fde_count(), 3);
        assert_eq!(parsed.pc_begins(), vec![0x1000, 0x1100, 0x2000]);
    }

    #[test]
    fn fde_for_pc_finds_covering_record() {
        let mut eh = EhFrame::new();
        eh.groups.push((Cie::default(), vec![figure_4b_fde()]));
        assert_eq!(eh.fde_for_pc(0xb0).unwrap().pc_begin, 0xb0);
        assert_eq!(eh.fde_for_pc(0xe7).unwrap().pc_begin, 0xb0);
        assert!(eh.fde_for_pc(0xe8).is_none());
        assert!(eh.fde_for_pc(0xaf).is_none());
    }

    #[test]
    fn terminator_stops_parsing() {
        let mut eh = EhFrame::new();
        eh.groups.push((Cie::default(), vec![figure_4b_fde()]));
        let mut bytes = encode_eh_frame(&eh, 0).unwrap();
        // Garbage after the terminator must be ignored.
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]);
        let parsed = parse_eh_frame(&bytes, 0).unwrap();
        assert_eq!(parsed.fde_count(), 1);
    }

    #[test]
    fn truncated_section_errors() {
        let mut eh = EhFrame::new();
        eh.groups.push((Cie::default(), vec![figure_4b_fde()]));
        let bytes = encode_eh_frame(&eh, 0).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(parse_eh_frame(cut, 0).is_err());
    }

    #[test]
    fn dangling_cie_pointer_rejected() {
        // An FDE whose CIE pointer points nowhere.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&12u32.to_le_bytes()); // length
        bytes.extend_from_slice(&999u32.to_le_bytes()); // CIE pointer (bogus)
        bytes.extend_from_slice(&[0; 8]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            parse_eh_frame(&bytes, 0),
            Err(ParseError::DanglingCiePointer { .. })
        ));
    }

    #[test]
    fn huge_augmentation_length_rejected_without_overflow() {
        // An FDE whose augmentation-length ULEB encodes u64::MAX made
        // `p += aug_len` wrap (release) or panic (debug). Build a valid
        // section whose FDE carries enough trailing nops to hold the
        // 10-byte encoding, then splice it over the aug_len field.
        let mut eh = EhFrame::new();
        eh.groups.push((
            Cie::default(),
            vec![Fde {
                pc_begin: 0x40_1000,
                pc_range: 0x20,
                cfis: vec![CfiInst::Nop; 12],
            }],
        ));
        let mut bytes = encode_eh_frame(&eh, 0x40_0000).unwrap();
        // The FDE is the second entry; its aug_len byte sits after
        // [len:4][cie_ptr:4][pc_begin:4][pc_range:4].
        let cie_total = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize + 4;
        let aug_at = cie_total + 16;
        assert_eq!(bytes[aug_at], 0, "located the aug_len field");
        let max_uleb: [u8; 10] = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        bytes[aug_at..aug_at + 10].copy_from_slice(&max_uleb);
        assert!(matches!(
            parse_eh_frame(&bytes, 0x40_0000),
            Err(ParseError::Truncated)
        ));
        // Same attack on the CIE's augmentation length.
        let mut bytes = encode_eh_frame(&eh, 0x40_0000).unwrap();
        // CIE layout: [len:4][id:4][version:1]["zR\0":3][ca:1][da:1][ra:1][aug_len:1].
        let cie_aug_at = 4 + 4 + 1 + 3 + 3;
        assert_eq!(bytes[cie_aug_at], 1, "located the CIE aug_len field");
        // Only one spare byte before the encoding matters here: a
        // 2-byte ULEB for a huge-but-not-wrapping length exercises the
        // bounds check, and a hand-built section exercises the wrap.
        let mut hand = bytes[..cie_aug_at].to_vec();
        hand.extend_from_slice(&max_uleb);
        hand.extend_from_slice(&bytes[cie_aug_at + 10..]);
        hand[0..4]
            .copy_from_slice(&(u32::from_le_bytes(bytes[0..4].try_into().unwrap())).to_le_bytes());
        assert!(parse_eh_frame(&hand, 0x40_0000).is_err());
        bytes[cie_aug_at] = 0xff; // truncated ULEB inside the entry is also an error
        assert!(parse_eh_frame(&bytes, 0x40_0000).is_err());
    }

    #[test]
    fn pc_end_saturates_instead_of_wrapping() {
        // `pc_begin + pc_range` near u64::MAX wrapped in release and
        // panicked in debug before the saturating fix.
        let fde = Fde {
            pc_begin: u64::MAX - 8,
            pc_range: 0x100,
            cfis: vec![],
        };
        assert_eq!(fde.pc_end(), u64::MAX);
        assert!(fde.contains(u64::MAX - 8));
        assert!(!fde.contains(u64::MAX - 9));
        let mut eh = EhFrame::new();
        eh.groups.push((Cie::default(), vec![fde]));
        // fde_for_pc walks `contains` over every record — must not panic.
        assert!(eh.fde_for_pc(0x1000).is_none());
        assert_eq!(eh.fde_for_pc(u64::MAX - 1).unwrap().pc_range, 0x100);
    }

    #[test]
    fn parser_rejects_overflowing_fde_range() {
        // An FDE laid out at the very top of the address space whose
        // range runs past u64::MAX: representable in the encoding,
        // rejected by the parser.
        let section_addr = u64::MAX - 0x2000;
        let mut eh = EhFrame::new();
        eh.groups.push((
            Cie::default(),
            vec![Fde {
                pc_begin: u64::MAX - 0x1000,
                pc_range: 0x7000_0000,
                cfis: vec![],
            }],
        ));
        let bytes = encode_eh_frame(&eh, section_addr).unwrap();
        assert!(matches!(
            parse_eh_frame(&bytes, section_addr),
            Err(ParseError::RangeOverflow { .. })
        ));
        // The same layout with an in-range length parses fine.
        eh.groups[0].1[0].pc_range = 0x800;
        let bytes = encode_eh_frame(&eh, section_addr).unwrap();
        let parsed = parse_eh_frame(&bytes, section_addr).unwrap();
        assert_eq!(parsed, eh);
    }

    #[test]
    fn encode_reports_out_of_range_relocations() {
        // pc_begin much farther than ±2GiB from the section.
        let mut eh = EhFrame::new();
        eh.groups.push((
            Cie::default(),
            vec![Fde {
                pc_begin: 0x2_0000_0000,
                pc_range: 0x10,
                cfis: vec![],
            }],
        ));
        match encode_eh_frame(&eh, 0x40_0000) {
            Err(EncodeError::PcRelOutOfRange { pc_begin, .. }) => {
                assert_eq!(pc_begin, 0x2_0000_0000);
            }
            other => panic!("expected PcRelOutOfRange, got {other:?}"),
        }
        // pc_range wider than sdata4.
        eh.groups[0].1[0] = Fde {
            pc_begin: 0x40_1000,
            pc_range: u64::from(u32::MAX),
            cfis: vec![],
        };
        match encode_eh_frame(&eh, 0x40_0000) {
            Err(EncodeError::PcRangeTooLarge { pc_range, .. }) => {
                assert_eq!(pc_range, u64::from(u32::MAX));
            }
            other => panic!("expected PcRangeTooLarge, got {other:?}"),
        }
    }
}
