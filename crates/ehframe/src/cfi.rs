//! Call Frame Instructions (CFIs) — the DWARF unwinding micro-language
//! carried by every FDE (§III-C of the paper).

use crate::leb::{read_uleb, write_uleb, LebError};
use fetch_x64::Reg;
use std::fmt;

/// A single call-frame instruction.
///
/// The subset matches what GCC/Clang emit for ordinary functions plus
/// `DW_CFA_expression`, which appears in hand-written assembly such as the
/// glibc `__restore_rt` example of Figure 6b.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CfiInst {
    /// `DW_CFA_def_cfa reg, offset` — CFA = reg + offset.
    DefCfa {
        /// Register holding the frame base.
        reg: Reg,
        /// Byte offset added to the register.
        offset: u64,
    },
    /// `DW_CFA_def_cfa_register reg` — change the CFA base register,
    /// keeping the offset.
    DefCfaRegister {
        /// New base register.
        reg: Reg,
    },
    /// `DW_CFA_def_cfa_offset offset` — change the CFA offset, keeping the
    /// base register.
    DefCfaOffset {
        /// New byte offset.
        offset: u64,
    },
    /// `DW_CFA_advance_loc delta` — move the current location forward by
    /// `delta` code bytes (already unfactored).
    AdvanceLoc {
        /// Code-byte delta.
        delta: u64,
    },
    /// `DW_CFA_offset reg, n` — `reg` is saved at `CFA + n * data_align`
    /// (with the conventional `data_align = -8`, "at cfa-16" is `n = 2`).
    Offset {
        /// Saved register.
        reg: Reg,
        /// Factored offset (multiplied by the CIE's data alignment).
        factored: u64,
    },
    /// `DW_CFA_restore reg` — restore `reg` to its CIE rule.
    Restore {
        /// Restored register.
        reg: Reg,
    },
    /// `DW_CFA_expression reg, bytes` — the register is recovered by a
    /// DWARF expression. We carry the raw expression bytes; the paper's
    /// analyses treat any expression-based rule as "incomplete" stack
    /// height information.
    Expression {
        /// Register the expression describes.
        reg: Reg,
        /// Raw DWARF expression bytes.
        expr: Vec<u8>,
    },
    /// `DW_CFA_nop` — padding.
    Nop,
}

/// Errors from CFI stream encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfiError {
    /// A LEB128 field was malformed.
    Leb,
    /// An unknown or unsupported CFI opcode was found.
    UnknownOpcode(u8),
    /// The stream ended mid-instruction.
    Truncated,
    /// A register number outside 0–15 was referenced.
    BadRegister(u64),
}

impl fmt::Display for CfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfiError::Leb => write!(f, "malformed LEB128 in CFI stream"),
            CfiError::UnknownOpcode(op) => write!(f, "unknown CFI opcode {op:#04x}"),
            CfiError::Truncated => write!(f, "CFI stream ended mid-instruction"),
            CfiError::BadRegister(r) => write!(f, "DWARF register number {r} out of range"),
        }
    }
}

impl std::error::Error for CfiError {}

impl From<LebError> for CfiError {
    fn from(_: LebError) -> Self {
        CfiError::Leb
    }
}

// Primary opcodes (high two bits).
const DW_CFA_ADVANCE_LOC: u8 = 0x40;
const DW_CFA_OFFSET: u8 = 0x80;
const DW_CFA_RESTORE: u8 = 0xc0;
// Extended opcodes.
const DW_CFA_NOP: u8 = 0x00;
const DW_CFA_ADVANCE_LOC1: u8 = 0x02;
const DW_CFA_ADVANCE_LOC2: u8 = 0x03;
const DW_CFA_ADVANCE_LOC4: u8 = 0x04;
const DW_CFA_DEF_CFA: u8 = 0x0c;
const DW_CFA_DEF_CFA_REGISTER: u8 = 0x0d;
const DW_CFA_DEF_CFA_OFFSET: u8 = 0x0e;
const DW_CFA_EXPRESSION: u8 = 0x10;

fn dwarf_reg(n: u64) -> Result<Reg, CfiError> {
    u8::try_from(n)
        .ok()
        .and_then(Reg::from_dwarf_number)
        .ok_or(CfiError::BadRegister(n))
}

/// Encodes a CFI instruction sequence. `code_align` factors
/// `AdvanceLoc` deltas (1 for x86-64).
pub fn encode_cfis(cfis: &[CfiInst], code_align: u64, out: &mut Vec<u8>) {
    for cfi in cfis {
        match cfi {
            CfiInst::DefCfa { reg, offset } => {
                out.push(DW_CFA_DEF_CFA);
                write_uleb(out, reg.dwarf_number() as u64);
                write_uleb(out, *offset);
            }
            CfiInst::DefCfaRegister { reg } => {
                out.push(DW_CFA_DEF_CFA_REGISTER);
                write_uleb(out, reg.dwarf_number() as u64);
            }
            CfiInst::DefCfaOffset { offset } => {
                out.push(DW_CFA_DEF_CFA_OFFSET);
                write_uleb(out, *offset);
            }
            CfiInst::AdvanceLoc { delta } => {
                let factored = delta / code_align.max(1);
                if factored < 0x40 && factored > 0 {
                    out.push(DW_CFA_ADVANCE_LOC | factored as u8);
                } else if factored <= u8::MAX as u64 {
                    out.push(DW_CFA_ADVANCE_LOC1);
                    out.push(factored as u8);
                } else if factored <= u16::MAX as u64 {
                    out.push(DW_CFA_ADVANCE_LOC2);
                    out.extend_from_slice(&(factored as u16).to_le_bytes());
                } else {
                    out.push(DW_CFA_ADVANCE_LOC4);
                    out.extend_from_slice(&(factored as u32).to_le_bytes());
                }
            }
            CfiInst::Offset { reg, factored } => {
                out.push(DW_CFA_OFFSET | reg.dwarf_number());
                write_uleb(out, *factored);
            }
            CfiInst::Restore { reg } => {
                out.push(DW_CFA_RESTORE | reg.dwarf_number());
            }
            CfiInst::Expression { reg, expr } => {
                out.push(DW_CFA_EXPRESSION);
                write_uleb(out, reg.dwarf_number() as u64);
                write_uleb(out, expr.len() as u64);
                out.extend_from_slice(expr);
            }
            CfiInst::Nop => out.push(DW_CFA_NOP),
        }
    }
}

/// Decodes a CFI instruction stream (the whole `bytes` buffer).
///
/// # Errors
///
/// Returns a [`CfiError`] on truncation, unknown opcodes, bad registers or
/// malformed LEB128 fields.
pub fn decode_cfis(bytes: &[u8], code_align: u64) -> Result<Vec<CfiInst>, CfiError> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let op = bytes[pos];
        pos += 1;
        match op >> 6 {
            1 => {
                // advance_loc with 6-bit factored delta.
                out.push(CfiInst::AdvanceLoc {
                    delta: (op & 0x3f) as u64 * code_align.max(1),
                });
            }
            2 => {
                let reg = dwarf_reg((op & 0x3f) as u64)?;
                let factored = read_uleb(bytes, &mut pos)?;
                out.push(CfiInst::Offset { reg, factored });
            }
            3 => {
                let reg = dwarf_reg((op & 0x3f) as u64)?;
                out.push(CfiInst::Restore { reg });
            }
            _ => match op {
                DW_CFA_NOP => out.push(CfiInst::Nop),
                DW_CFA_ADVANCE_LOC1 => {
                    let d = *bytes.get(pos).ok_or(CfiError::Truncated)? as u64;
                    pos += 1;
                    out.push(CfiInst::AdvanceLoc {
                        delta: d * code_align.max(1),
                    });
                }
                DW_CFA_ADVANCE_LOC2 => {
                    let s = bytes.get(pos..pos + 2).ok_or(CfiError::Truncated)?;
                    pos += 2;
                    let d = u16::from_le_bytes(s.try_into().unwrap()) as u64;
                    out.push(CfiInst::AdvanceLoc {
                        delta: d * code_align.max(1),
                    });
                }
                DW_CFA_ADVANCE_LOC4 => {
                    let s = bytes.get(pos..pos + 4).ok_or(CfiError::Truncated)?;
                    pos += 4;
                    let d = u32::from_le_bytes(s.try_into().unwrap()) as u64;
                    out.push(CfiInst::AdvanceLoc {
                        delta: d * code_align.max(1),
                    });
                }
                DW_CFA_DEF_CFA => {
                    let reg = dwarf_reg(read_uleb(bytes, &mut pos)?)?;
                    let offset = read_uleb(bytes, &mut pos)?;
                    out.push(CfiInst::DefCfa { reg, offset });
                }
                DW_CFA_DEF_CFA_REGISTER => {
                    let reg = dwarf_reg(read_uleb(bytes, &mut pos)?)?;
                    out.push(CfiInst::DefCfaRegister { reg });
                }
                DW_CFA_DEF_CFA_OFFSET => {
                    let offset = read_uleb(bytes, &mut pos)?;
                    out.push(CfiInst::DefCfaOffset { offset });
                }
                DW_CFA_EXPRESSION => {
                    let reg = dwarf_reg(read_uleb(bytes, &mut pos)?)?;
                    let len = read_uleb(bytes, &mut pos)? as usize;
                    let expr = bytes
                        .get(pos..pos + len)
                        .ok_or(CfiError::Truncated)?
                        .to_vec();
                    pos += len;
                    out.push(CfiInst::Expression { reg, expr });
                }
                other => return Err(CfiError::UnknownOpcode(other)),
            },
        }
    }
    Ok(out)
}

impl fmt::Display for CfiInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfiInst::DefCfa { reg, offset } => {
                write!(
                    f,
                    "DW_CFA_def_cfa: r{} ({}) ofs {}",
                    reg.dwarf_number(),
                    reg,
                    offset
                )
            }
            CfiInst::DefCfaRegister { reg } => {
                write!(
                    f,
                    "DW_CFA_def_cfa_register: r{} ({})",
                    reg.dwarf_number(),
                    reg
                )
            }
            CfiInst::DefCfaOffset { offset } => {
                write!(f, "DW_CFA_def_cfa_offset: {offset}")
            }
            CfiInst::AdvanceLoc { delta } => write!(f, "DW_CFA_advance_loc: {delta}"),
            CfiInst::Offset { reg, factored } => write!(
                f,
                "DW_CFA_offset: r{} ({}) at cfa-{}",
                reg.dwarf_number(),
                reg,
                factored * 8
            ),
            CfiInst::Restore { reg } => {
                write!(f, "DW_CFA_restore: r{} ({})", reg.dwarf_number(), reg)
            }
            CfiInst::Expression { reg, .. } => {
                write!(f, "DW_CFA_expression: r{} ({})", reg.dwarf_number(), reg)
            }
            CfiInst::Nop => write!(f, "DW_CFA_nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_figure_4b() {
        // The FDE program of Figure 4b.
        let cfis = vec![
            CfiInst::DefCfa {
                reg: Reg::Rsp,
                offset: 8,
            },
            CfiInst::AdvanceLoc { delta: 1 },
            CfiInst::DefCfaOffset { offset: 16 },
            CfiInst::Offset {
                reg: Reg::Rbp,
                factored: 2,
            },
            CfiInst::AdvanceLoc { delta: 12 },
            CfiInst::DefCfaOffset { offset: 24 },
            CfiInst::Offset {
                reg: Reg::Rbx,
                factored: 3,
            },
            CfiInst::AdvanceLoc { delta: 11 },
            CfiInst::DefCfaOffset { offset: 32 },
            CfiInst::AdvanceLoc { delta: 29 },
            CfiInst::DefCfaOffset { offset: 24 },
            CfiInst::AdvanceLoc { delta: 1 },
            CfiInst::DefCfaOffset { offset: 16 },
            CfiInst::AdvanceLoc { delta: 1 },
            CfiInst::DefCfaOffset { offset: 8 },
        ];
        let mut bytes = Vec::new();
        encode_cfis(&cfis, 1, &mut bytes);
        assert_eq!(decode_cfis(&bytes, 1).unwrap(), cfis);
    }

    #[test]
    fn long_advances_use_wide_forms() {
        for delta in [0x3f, 0x40, 0x100, 0x10000, 0x100000] {
            let cfis = vec![CfiInst::AdvanceLoc { delta }];
            let mut bytes = Vec::new();
            encode_cfis(&cfis, 1, &mut bytes);
            assert_eq!(decode_cfis(&bytes, 1).unwrap(), cfis, "delta {delta:#x}");
        }
    }

    #[test]
    fn expression_roundtrip() {
        // Figure 6b: DW_CFA_expression reg8 DW_OP_breg7 +40.
        let cfis = vec![CfiInst::Expression {
            reg: Reg::R8,
            expr: vec![0x77, 40],
        }];
        let mut bytes = Vec::new();
        encode_cfis(&cfis, 1, &mut bytes);
        assert_eq!(decode_cfis(&bytes, 1).unwrap(), cfis);
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode_cfis(&[0x3f], 1), Err(CfiError::UnknownOpcode(0x3f)));
    }

    #[test]
    fn display_matches_readelf_style() {
        let i = CfiInst::DefCfa {
            reg: Reg::Rsp,
            offset: 8,
        };
        assert_eq!(i.to_string(), "DW_CFA_def_cfa: r7 (rsp) ofs 8");
        let o = CfiInst::Offset {
            reg: Reg::Rbp,
            factored: 2,
        };
        assert_eq!(o.to_string(), "DW_CFA_offset: r6 (rbp) at cfa-16");
    }
}
