//! # fetch-ehframe
//!
//! The `.eh_frame` substrate of the FETCH reproduction: CIE/FDE data model,
//! the binary DWARF encoding used by System-V x86-64 binaries, CFI-program
//! evaluation (CFA tables and stack heights), and a table-driven unwinder.
//!
//! The paper ("Towards Optimal Use of Exception Handling Information for
//! Function Detection", DSN 2021) builds its detector on three properties
//! of this data, all modeled here:
//!
//! * every FDE carries a `PC Begin` that (for the first part of a function)
//!   is a true function start — [`EhFrame::pc_begins`];
//! * CFI programs record the exact stack height at every program point of
//!   well-behaved functions — [`stack_heights`], used by Algorithm 1;
//! * the information is *not* perfectly faithful: non-contiguous functions
//!   get one FDE per part, and hand-written CFI can mislabel starts, which
//!   is exactly what the repair algorithm fixes.
//!
//! The codecs are hardened against adversarial metadata: FDE ranges that
//! would overflow the address space are rejected at parse time
//! ([`ParseError::RangeOverflow`]) and saturate in the data model
//! ([`Fde::pc_end`]), over-wide LEB128 encodings error instead of
//! silently truncating ([`LebError`]), and [`encode_eh_frame`] reports
//! unencodable relocations as a typed [`EncodeError`] instead of
//! panicking.
//!
//! # Examples
//!
//! Encode and re-parse a section, then query stack heights:
//!
//! ```
//! use fetch_ehframe::{Cie, CfiInst, EhFrame, Fde, encode_eh_frame, parse_eh_frame, stack_heights};
//! use fetch_x64::Reg;
//!
//! let mut eh = EhFrame::new();
//! eh.groups.push((Cie::default(), vec![Fde {
//!     pc_begin: 0x40_00b0,
//!     pc_range: 56,
//!     cfis: vec![
//!         CfiInst::AdvanceLoc { delta: 1 },
//!         CfiInst::DefCfaOffset { offset: 16 },
//!         CfiInst::Offset { reg: Reg::Rbp, factored: 2 },
//!     ],
//! }]));
//!
//! let bytes = encode_eh_frame(&eh, 0x48_0000)?;
//! let parsed = parse_eh_frame(&bytes, 0x48_0000)?;
//! assert_eq!(parsed, eh);
//!
//! let (cie, fde) = parsed.fdes_with_cie().next().unwrap();
//! let heights = stack_heights(cie, fde)?.expect("complete CFI");
//! assert_eq!(heights.height_at(0x40_00b0), Some(0)); // entry
//! assert_eq!(heights.height_at(0x40_00b1), Some(8)); // after push rbp
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfi;
mod eval;
mod leb;
mod pdata;
mod records;
mod unwind;

pub use cfi::{decode_cfis, encode_cfis, CfiError, CfiInst};
pub use eval::{stack_heights, CfaRow, CfaRule, CfaTable, EvalError, HeightTable};
pub use leb::{read_sleb, read_uleb, write_sleb, write_uleb, LebError};
pub use pdata::{Pdata, PdataError, RuntimeFunction};
pub use records::{
    encode_eh_frame, parse_eh_frame, Cie, EhFrame, EncodeError, Fde, ParseError, PE_PCREL_SDATA4,
};
pub use unwind::{backtrace, unwind_one, Machine, Memory, UnwindError};
