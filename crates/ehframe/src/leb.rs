//! ULEB128 / SLEB128 primitives used throughout the DWARF encodings.

use std::fmt;

/// Error returned when a LEB128 value is malformed or the buffer ends early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LebError;

impl fmt::Display for LebError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed or truncated LEB128 value")
    }
}

impl std::error::Error for LebError {}

/// Appends `value` as unsigned LEB128.
pub fn write_uleb(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` as signed LEB128.
pub fn write_sleb(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 from `bytes` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or a value wider than 64 bits.
/// The width check covers the final byte too: at shift 63 only the low
/// bit of the payload is representable, so an over-wide foreign encoding
/// is rejected instead of silently decoding to a truncated value.
pub fn read_uleb(bytes: &[u8], pos: &mut usize) -> Result<u64, LebError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(LebError)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7e != 0) {
            return Err(LebError);
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Reads a signed LEB128 from `bytes` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or a value wider than 64 bits.
/// At shift 63 (the tenth byte) the payload contributes bit 63 and the
/// sign extension, so the only representable payloads are `0x00`
/// (non-negative) and `0x7f` (negative); anything else encodes a value
/// outside `i64` and is rejected rather than sign-mangled.
pub fn read_sleb(bytes: &[u8], pos: &mut usize) -> Result<i64, LebError> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(LebError)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7f != 0 && byte & 0x7f != 0x7f) {
            return Err(LebError);
        }
        result |= i64::from(byte & 0x7f) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Ok(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uleb_known_values() {
        let mut v = Vec::new();
        write_uleb(&mut v, 624485);
        assert_eq!(v, [0xe5, 0x8e, 0x26]);
        let mut pos = 0;
        assert_eq!(read_uleb(&v, &mut pos).unwrap(), 624485);
        assert_eq!(pos, 3);
    }

    #[test]
    fn sleb_known_values() {
        let mut v = Vec::new();
        write_sleb(&mut v, -123456);
        assert_eq!(v, [0xc0, 0xbb, 0x78]);
        let mut pos = 0;
        assert_eq!(read_sleb(&v, &mut pos).unwrap(), -123456);
        // The classic data-alignment factor of x86-64 eh_frame.
        let mut v = Vec::new();
        write_sleb(&mut v, -8);
        assert_eq!(v, [0x78]);
    }

    #[test]
    fn roundtrip_edges() {
        for value in [0u64, 1, 127, 128, 0x7fff_ffff, u64::MAX] {
            let mut v = Vec::new();
            write_uleb(&mut v, value);
            let mut pos = 0;
            assert_eq!(read_uleb(&v, &mut pos).unwrap(), value);
        }
        for value in [0i64, -1, 63, 64, -64, -65, i64::MIN, i64::MAX] {
            let mut v = Vec::new();
            write_sleb(&mut v, value);
            let mut pos = 0;
            assert_eq!(read_sleb(&v, &mut pos).unwrap(), value, "value {value}");
        }
    }

    #[test]
    fn truncated_errors() {
        let mut pos = 0;
        assert_eq!(read_uleb(&[0x80], &mut pos), Err(LebError));
        let mut pos = 0;
        assert_eq!(read_sleb(&[0xff, 0xff], &mut pos), Err(LebError));
        let mut pos = 0;
        assert_eq!(read_uleb(&[], &mut pos), Err(LebError));
    }

    /// Ten-byte encoding with payload `p` in the final byte.
    fn ten_bytes(fill: u8, last: u8) -> Vec<u8> {
        let mut v = vec![fill | 0x80; 9];
        v.push(last);
        v
    }

    #[test]
    fn uleb_final_byte_overflow_rejected() {
        // Bit 63 is the last representable bit: payload 0x01 is fine…
        let mut pos = 0;
        assert_eq!(
            read_uleb(&ten_bytes(0x80, 0x01), &mut pos).unwrap(),
            1u64 << 63
        );
        // …anything wider used to decode to a silently truncated value
        // (payload 0x02 came back as 0) instead of an error.
        for last in [0x02u8, 0x04, 0x7f, 0x7e, 0x03] {
            let mut pos = 0;
            assert_eq!(
                read_uleb(&ten_bytes(0x80, last), &mut pos),
                Err(LebError),
                "final byte {last:#x} must be rejected"
            );
        }
        // An eleventh byte is over-wide regardless of payload.
        let mut v = ten_bytes(0x80, 0x81);
        v.push(0x00);
        let mut pos = 0;
        assert_eq!(read_uleb(&v, &mut pos), Err(LebError));
    }

    #[test]
    fn sleb_final_byte_overflow_rejected() {
        // The canonical extremes still decode.
        let mut pos = 0;
        assert_eq!(
            read_sleb(&ten_bytes(0x80, 0x7f), &mut pos).unwrap(),
            i64::MIN
        );
        let mut pos = 0;
        assert_eq!(
            read_sleb(&ten_bytes(0xff, 0x00), &mut pos).unwrap(),
            i64::MAX
        );
        // Non-representable final payloads (bits 64+ disagreeing with
        // bit 63) used to sign-mangle silently.
        for last in [0x01u8, 0x02, 0x3f, 0x40, 0x41, 0x7e] {
            let mut pos = 0;
            assert_eq!(
                read_sleb(&ten_bytes(0x80, last), &mut pos),
                Err(LebError),
                "final byte {last:#x} must be rejected"
            );
        }
    }
}
