//! A table-driven stack unwinder, demonstrating tasks T1–T3 of §III-B.
//!
//! This is the consumer side of the eh_frame data: given a program counter
//! and register file, find the covering FDE (T1), compute the CFA and the
//! return address (T2), and restore callee-saved registers (T3). Function
//! detection itself only needs the FDE *data*; the unwinder exists so the
//! test-suite can prove the synthesized CFI programs actually unwind the
//! stacks the synthesized code builds.

use crate::eval::{CfaRule, CfaTable};
use crate::records::EhFrame;
use fetch_x64::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// A simulated 64-bit little-endian memory holding 8-byte slots.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    slots: BTreeMap<u64, u64>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Writes the 8-byte slot at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.slots.insert(addr, value);
    }

    /// Reads the 8-byte slot at `addr`.
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.slots.get(&addr).copied()
    }
}

/// A register file plus program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// General-purpose registers indexed by hardware number.
    pub regs: [u64; 16],
    /// Program counter.
    pub pc: u64,
}

impl Machine {
    /// Creates a machine with all registers zero and the given pc.
    pub fn at(pc: u64) -> Machine {
        Machine { regs: [0; 16], pc }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.number() as usize] = v;
    }
}

/// Errors during unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnwindError {
    /// No FDE covers the program counter (T1 failed) — the unwinder would
    /// call `terminate` here.
    NoFde {
        /// The uncovered pc.
        pc: u64,
    },
    /// The CFA rule at the pc is expression-based and unsupported.
    UnsupportedCfa {
        /// The pc whose rule was unusable.
        pc: u64,
    },
    /// A stack slot needed for restoration was never written.
    MemoryHole {
        /// The missing address.
        addr: u64,
    },
}

impl fmt::Display for UnwindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnwindError::NoFde { pc } => write!(f, "no FDE covers pc {pc:#x}"),
            UnwindError::UnsupportedCfa { pc } => {
                write!(f, "unsupported CFA rule at pc {pc:#x}")
            }
            UnwindError::MemoryHole { addr } => write!(f, "uninitialized stack slot {addr:#x}"),
        }
    }
}

impl std::error::Error for UnwindError {}

/// Unwinds one frame: returns the machine state of the caller.
///
/// # Errors
///
/// See [`UnwindError`]. A [`UnwindError::NoFde`] corresponds to the
/// `terminate` path in Figure 2.
pub fn unwind_one(
    eh: &EhFrame,
    machine: &Machine,
    memory: &Memory,
) -> Result<Machine, UnwindError> {
    // T1: find the function (FDE) containing the pc.
    let (cie, fde) = eh
        .fdes_with_cie()
        .find(|(_, f)| f.contains(machine.pc))
        .ok_or(UnwindError::NoFde { pc: machine.pc })?;

    let table =
        CfaTable::evaluate(cie, fde).map_err(|_| UnwindError::UnsupportedCfa { pc: machine.pc })?;
    let row = table
        .row_at(machine.pc)
        .ok_or(UnwindError::NoFde { pc: machine.pc })?;

    // T2: compute the CFA and fetch the return address at CFA - 8.
    let CfaRule { reg, offset } = row
        .cfa
        .ok_or(UnwindError::UnsupportedCfa { pc: machine.pc })?;
    let cfa = machine.reg(reg).wrapping_add(offset as u64);
    let ra_addr = cfa.wrapping_sub(8);
    let ra = memory
        .read(ra_addr)
        .ok_or(UnwindError::MemoryHole { addr: ra_addr })?;

    // T3: restore callee-saved registers recorded by DW_CFA_offset.
    let mut caller = machine.clone();
    for &(r, off) in &row.saved {
        let addr = cfa.wrapping_add(off as u64);
        let value = memory.read(addr).ok_or(UnwindError::MemoryHole { addr })?;
        caller.set_reg(r, value);
    }
    // Destroy the callee frame: the caller's rsp is the CFA.
    caller.set_reg(Reg::Rsp, cfa);
    caller.pc = ra;
    Ok(caller)
}

/// Unwinds until no FDE covers the pc (or `max_frames` is reached),
/// returning the call chain of pcs — the "search the handler in the call
/// chain" loop of Figure 2.
pub fn backtrace(eh: &EhFrame, machine: &Machine, memory: &Memory, max_frames: usize) -> Vec<u64> {
    let mut chain = vec![machine.pc];
    let mut m = machine.clone();
    for _ in 0..max_frames {
        match unwind_one(eh, &m, memory) {
            Ok(next) => {
                chain.push(next.pc);
                m = next;
            }
            Err(_) => break,
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfi::CfiInst;
    use crate::records::{Cie, Fde};

    /// Builds the Figure 4 function's frame at the deepest point (after
    /// `sub rsp,8`, pc = 0xd0) and checks the unwinder recovers the caller.
    #[test]
    fn unwind_figure_4_frame() {
        let mut eh = EhFrame::new();
        eh.groups.push((
            Cie::default(),
            vec![Fde {
                pc_begin: 0xb0,
                pc_range: 56,
                cfis: vec![
                    CfiInst::AdvanceLoc { delta: 1 },
                    CfiInst::DefCfaOffset { offset: 16 },
                    CfiInst::Offset {
                        reg: Reg::Rbp,
                        factored: 2,
                    },
                    CfiInst::AdvanceLoc { delta: 12 },
                    CfiInst::DefCfaOffset { offset: 24 },
                    CfiInst::Offset {
                        reg: Reg::Rbx,
                        factored: 3,
                    },
                    CfiInst::AdvanceLoc { delta: 11 },
                    CfiInst::DefCfaOffset { offset: 32 },
                ],
            }],
        ));

        // Caller frame at CFA = 0x7fff_0000 (Figure 4c layout).
        let cfa: u64 = 0x7fff_0000;
        let mut mem = Memory::new();
        mem.write(cfa - 8, 0x40_1234); // return address
        mem.write(cfa - 16, 0xbbbb); // saved rbp
        mem.write(cfa - 24, 0xcccc); // saved rbx

        let mut m = Machine::at(0xd0);
        m.set_reg(Reg::Rsp, cfa - 32); // rsp after sub rsp,8
        m.set_reg(Reg::Rbp, 0x1111); // clobbered values in the callee
        m.set_reg(Reg::Rbx, 0x2222);

        let caller = unwind_one(&eh, &m, &mem).unwrap();
        assert_eq!(caller.pc, 0x40_1234);
        assert_eq!(caller.reg(Reg::Rsp), cfa);
        assert_eq!(caller.reg(Reg::Rbp), 0xbbbb);
        assert_eq!(caller.reg(Reg::Rbx), 0xcccc);
    }

    #[test]
    fn missing_fde_terminates() {
        let eh = EhFrame::new();
        let m = Machine::at(0x1000);
        assert_eq!(
            unwind_one(&eh, &m, &Memory::new()),
            Err(UnwindError::NoFde { pc: 0x1000 })
        );
    }

    #[test]
    fn backtrace_walks_two_frames() {
        // Two functions: main (0x100..0x180) calls div (0x200..0x240),
        // mirroring Figure 1. div has pushed nothing; main pushed rbp.
        let mut eh = EhFrame::new();
        eh.groups.push((
            Cie::default(),
            vec![
                Fde {
                    pc_begin: 0x100,
                    pc_range: 0x80,
                    cfis: vec![
                        CfiInst::AdvanceLoc { delta: 1 },
                        CfiInst::DefCfaOffset { offset: 16 },
                        CfiInst::Offset {
                            reg: Reg::Rbp,
                            factored: 2,
                        },
                    ],
                },
                Fde {
                    pc_begin: 0x200,
                    pc_range: 0x40,
                    cfis: vec![],
                },
            ],
        ));

        // Stack: main's frame CFA = 0x8000_0000.
        let main_cfa: u64 = 0x8000_0000;
        let mut mem = Memory::new();
        // main's return address: outside any FDE, ends the backtrace.
        mem.write(main_cfa - 8, 0xdead_0000);
        mem.write(main_cfa - 16, 0x1); // main's saved rbp
                                       // div's frame: called from main at pc 0x150 → RA 0x155.
                                       // div's CFA = rsp_at_entry + 8; main called with rsp = main_cfa-16.
        let div_cfa = main_cfa - 16;
        mem.write(div_cfa - 8, 0x155); // RA into main

        let mut m = Machine::at(0x210); // inside div, height 0
        m.set_reg(Reg::Rsp, div_cfa - 8);

        let chain = backtrace(&eh, &m, &mem, 8);
        assert_eq!(chain, vec![0x210, 0x155, 0xdead_0000]);
    }
}
