//! LEB128 codec properties: round trips across the whole value range and
//! rejection of over-wide foreign encodings at the 64-bit boundary.

use fetch_ehframe::{read_sleb, read_uleb, write_sleb, write_uleb, LebError};
use proptest::prelude::*;

/// Biases draws toward the 64-bit boundary, where the truncation bugs
/// lived: raw values, values near the extremes, and single-bit values.
fn arb_u64_edgy() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64, 0u8..4).prop_map(|(raw, bit, class)| match class {
        0 => raw,
        1 => u64::MAX - (raw % 1024),
        2 => 1u64 << bit,
        _ => (1u64 << bit).wrapping_sub(1),
    })
}

fn arb_i64_edgy() -> impl Strategy<Value = i64> {
    (arb_u64_edgy(), any::<bool>()).prop_map(|(u, neg)| {
        let v = u as i64;
        if neg {
            v.wrapping_neg()
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn uleb_roundtrip(value in arb_u64_edgy()) {
        let mut buf = Vec::new();
        write_uleb(&mut buf, value);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        prop_assert_eq!(read_uleb(&buf, &mut pos), Ok(value));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn sleb_roundtrip(value in arb_i64_edgy()) {
        let mut buf = Vec::new();
        write_sleb(&mut buf, value);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        prop_assert_eq!(read_sleb(&buf, &mut pos), Ok(value));
        prop_assert_eq!(pos, buf.len());
    }

    /// Ten-byte encodings whose final payload carries bits past bit 63
    /// must error — the old decoder shifted them out silently.
    #[test]
    fn uleb_overwide_final_byte_rejected(
        fill in proptest::collection::vec(0u8..128, 9..10),
        last in 2u8..128,
    ) {
        let mut buf: Vec<u8> = fill.iter().map(|b| b | 0x80).collect();
        buf.push(last & 0x7f);
        let mut pos = 0;
        prop_assert_eq!(read_uleb(&buf, &mut pos), Err(LebError));
    }

    /// For signed values the only representable final payloads are 0x00
    /// and 0x7f (pure sign extension); everything else must error.
    #[test]
    fn sleb_overwide_final_byte_rejected(
        fill in proptest::collection::vec(0u8..128, 9..10),
        last in 1u8..127,
    ) {
        let mut buf: Vec<u8> = fill.iter().map(|b| b | 0x80).collect();
        buf.push(last & 0x7f);
        let mut pos = 0;
        prop_assert_eq!(read_sleb(&buf, &mut pos), Err(LebError));
    }

    /// Eleven-byte (and longer) continuations are over-wide no matter
    /// the payload.
    #[test]
    fn leb_eleven_bytes_rejected(fill in proptest::collection::vec(0u8..128, 10..11)) {
        let mut buf: Vec<u8> = fill.iter().map(|b| b | 0x80).collect();
        buf.push(0x00);
        let mut pos = 0;
        prop_assert_eq!(read_uleb(&buf, &mut pos), Err(LebError));
        let mut pos = 0;
        prop_assert_eq!(read_sleb(&buf, &mut pos), Err(LebError));
    }
}
