//! Property tests: arbitrary well-formed eh_frame models survive the
//! binary encode/parse round trip, and evaluation is total on them.

use fetch_ehframe::{
    encode_eh_frame, parse_eh_frame, stack_heights, CfaTable, CfiInst, Cie, EhFrame, Fde,
};
use fetch_x64::Reg;
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::from_number(n).unwrap())
}

/// A well-formed CFI program for a function of `range` bytes: advances sum
/// to at most `range`, and the CIE provides the initial CFA rule.
fn arb_cfis(range: u64) -> impl Strategy<Value = Vec<CfiInst>> {
    let step = prop_oneof![
        (1u64..32).prop_map(|d| CfiInst::AdvanceLoc { delta: d }),
        (8u64..512).prop_map(|o| CfiInst::DefCfaOffset { offset: o }),
        (arb_reg(), 1u64..16).prop_map(|(reg, factored)| CfiInst::Offset { reg, factored }),
        arb_reg().prop_map(|reg| CfiInst::Restore { reg }),
        Just(CfiInst::Nop),
        arb_reg().prop_map(|reg| CfiInst::DefCfaRegister { reg }),
    ];
    proptest::collection::vec(step, 0..24).prop_map(move |mut v| {
        // Clamp cumulative advances to stay within the range.
        let mut total = 0u64;
        v.retain(|inst| {
            if let CfiInst::AdvanceLoc { delta } = inst {
                if total + delta > range {
                    return false;
                }
                total += delta;
            }
            true
        });
        v
    })
}

fn arb_fde() -> impl Strategy<Value = Fde> {
    (0x1000u64..0x4000_0000, 16u64..0x4000).prop_flat_map(|(pc_begin, pc_range)| {
        arb_cfis(pc_range).prop_map(move |cfis| Fde {
            pc_begin,
            pc_range,
            cfis,
        })
    })
}

fn arb_eh_frame() -> impl Strategy<Value = EhFrame> {
    proptest::collection::vec(proptest::collection::vec(arb_fde(), 1..6), 1..4).prop_map(|groups| {
        EhFrame {
            groups: groups
                .into_iter()
                .map(|fdes| (Cie::default(), fdes))
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn section_roundtrip(eh in arb_eh_frame(), addr in 0u64..0x4000_0000u64) {
        let bytes = encode_eh_frame(&eh, addr).expect("generated layouts stay in pcrel range");
        let parsed = parse_eh_frame(&bytes, addr).expect("own encoding parses");
        // Nops are padding-equivalent: compare modulo Nop.
        let strip = |e: &EhFrame| {
            let mut e = e.clone();
            for (cie, fdes) in &mut e.groups {
                cie.initial_cfis.retain(|c| *c != CfiInst::Nop);
                for f in fdes {
                    f.cfis.retain(|c| *c != CfiInst::Nop);
                }
            }
            e
        };
        prop_assert_eq!(strip(&parsed), strip(&eh));
    }

    #[test]
    fn evaluation_is_total_on_wellformed(eh in arb_eh_frame()) {
        for (cie, fde) in eh.fdes_with_cie() {
            let table = CfaTable::evaluate(cie, fde).expect("well-formed program");
            // Rows are sorted, start at pc_begin, and cover the range.
            prop_assert!(!table.rows.is_empty());
            prop_assert_eq!(table.rows[0].addr, fde.pc_begin);
            for w in table.rows.windows(2) {
                prop_assert!(w[0].addr < w[1].addr);
            }
            // Every pc in range resolves to a row.
            for pc in [fde.pc_begin, fde.pc_begin + fde.pc_range / 2, fde.pc_end() - 1] {
                prop_assert!(table.row_at(pc).is_some());
            }
            prop_assert!(table.row_at(fde.pc_end()).is_none());
            // Stack-height extraction never panics and is consistent.
            if let Some(h) = stack_heights(cie, fde).expect("evaluates") {
                prop_assert_eq!(h.height_at(fde.pc_begin), Some(0));
                for pc in fde.pc_begin..fde.pc_end().min(fde.pc_begin + 64) {
                    prop_assert!(h.height_at(pc).is_some());
                }
            }
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256), addr: u64) {
        let _ = parse_eh_frame(&bytes, addr);
    }
}
