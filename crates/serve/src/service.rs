//! The transport-agnostic daemon core: one [`AnalysisService`] owns the
//! bounded cache, the persistent store, the shared decode engine, and
//! the telemetry hub, and turns parsed [`Request`]s into [`Reply`]s.
//!
//! Answer path for an analyze request, in order:
//!
//! 1. **Bounded cache** ([`fetch_core::AnalysisCache`]) — fingerprint
//!    hash + map lookup, no ELF materialization.
//! 2. **Persistent store** ([`ResultStore`]) — one file read +
//!    checksummed decode; the loaded result is promoted into the cache.
//!    A corrupt entry is *rejected* (counted in
//!    [`RequestCounters::store_errors`]), recomputed cold, and
//!    overwritten.
//! 3. **Cold compute** — the declarative pipeline through the service's
//!    persistent [`RecEngine`] (decode cache shared across requests);
//!    the result is inserted into the cache and written to the store.
//!
//! Every analyze/query answer also broadcasts its telemetry — a
//! `request` event plus one `layer` event per [`fetch_core::LayerTrace`]
//! — to the subscribers registered on the [`TelemetryHub`]. Warm
//! answers replay the trace persisted with the result, so the per-layer
//! telemetry survives both the cache and a restart.

use crate::protocol::{
    telemetry_events, AnalyzeInput, AnalyzeReply, Reply, Request, RequestCounters, ServeSource,
    StatsReply,
};
use crate::store::ResultStore;
use fetch_binary::ElfImage;
use fetch_core::{image_fingerprint, AnalysisCache, CacheCapacity, Pipeline};
use fetch_disasm::RecEngine;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Telemetry fan-out: registered sinks receive every event line. A sink
/// whose write fails is dropped (a disconnected subscriber must never
/// wedge the daemon).
#[derive(Default)]
pub struct TelemetryHub {
    sinks: Mutex<Vec<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TelemetryHub({} sinks)", self.subscriber_count())
    }
}

impl TelemetryHub {
    /// Registers a sink; it receives every subsequent event line.
    pub fn subscribe(&self, sink: Box<dyn Write + Send>) {
        self.sinks.lock().expect("hub lock").push(sink);
    }

    /// Currently registered sinks.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.lock().expect("hub lock").len()
    }

    /// Writes one event line (newline appended) to every sink, dropping
    /// sinks that fail.
    pub fn broadcast(&self, line: &str) {
        let mut sinks = self.sinks.lock().expect("hub lock");
        sinks.retain_mut(|sink| {
            sink.write_all(line.as_bytes())
                .and_then(|()| sink.write_all(b"\n"))
                .and_then(|()| sink.flush())
                .is_ok()
        });
    }
}

/// Configuration of an [`AnalysisService`].
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Directory of the persistent result store (`None` = memory-only:
    /// answers do not survive a restart).
    pub store_dir: Option<PathBuf>,
    /// Bounds of the in-memory cache (default: unbounded).
    pub cache_capacity: CacheCapacity,
}

/// The daemon core (see the [module docs](self)).
#[derive(Debug)]
pub struct AnalysisService {
    cache: AnalysisCache,
    store: Option<ResultStore>,
    engine: RecEngine,
    telemetry: TelemetryHub,
    counters: RequestCounters,
    shutdown: bool,
}

impl AnalysisService {
    /// Builds a service from `config`, opening (or creating) the store
    /// directory when one is configured.
    pub fn new(config: &ServeConfig) -> std::io::Result<AnalysisService> {
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        Ok(AnalysisService {
            cache: AnalysisCache::with_capacity(config.cache_capacity),
            store,
            engine: RecEngine::new(),
            telemetry: TelemetryHub::default(),
            counters: RequestCounters::default(),
            shutdown: false,
        })
    }

    /// The telemetry hub (transports register subscribers here).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// The bounded cache (read-only access for harnesses).
    pub fn cache(&self) -> &AnalysisCache {
        &self.cache
    }

    /// Whether a shutdown request has been handled; transports exit
    /// their accept loops when this turns true.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Handles one request. Every path returns a reply — errors become
    /// [`Reply::Error`], and the daemon keeps serving.
    pub fn handle(&mut self, request: Request) -> Reply {
        match request {
            Request::Analyze { input, pipeline } => match self.analyze(input, &pipeline) {
                Ok(reply) => {
                    self.emit(&reply);
                    Reply::Analyze(reply)
                }
                Err(message) => Reply::Error(message),
            },
            Request::Query {
                fingerprint,
                pipeline_id,
            } => {
                self.counters.query += 1;
                match self.lookup_warm(fingerprint, &pipeline_id) {
                    Some(reply) => {
                        self.emit(&reply);
                        Reply::Analyze(reply)
                    }
                    None => Reply::Error(format!(
                        "no cached or stored result for ({}, {pipeline_id})",
                        crate::protocol::hex_u64(fingerprint)
                    )),
                }
            }
            Request::Stats => Reply::Stats(self.stats()),
            Request::Subscribe => Reply::Subscribed,
            Request::Shutdown => {
                self.shutdown = true;
                Reply::Shutdown
            }
        }
    }

    /// The service's statistics snapshot.
    pub fn stats(&self) -> StatsReply {
        StatsReply {
            cache: self.cache.stats(),
            store: self.store.as_ref().and_then(|s| s.stats().ok()),
            requests: self.counters,
        }
    }

    fn emit(&self, reply: &AnalyzeReply) {
        if self.telemetry.subscriber_count() == 0 {
            return;
        }
        for event in telemetry_events(reply) {
            self.telemetry.broadcast(&event);
        }
    }

    /// Cache-then-store lookup without computing (the `query` path; also
    /// the warm half of `analyze`). Promotes store hits into the cache.
    fn lookup_warm(&mut self, fingerprint: u64, pipeline_id: &str) -> Option<AnalyzeReply> {
        let t0 = Instant::now();
        if let Some(result) = self.cache.lookup(fingerprint, pipeline_id) {
            self.counters.cache_hits += 1;
            return Some(AnalyzeReply {
                fingerprint,
                pipeline_id: pipeline_id.to_string(),
                source: ServeSource::CacheHit,
                wall_us: t0.elapsed().as_secs_f64() * 1e6,
                result,
            });
        }
        match self
            .store
            .as_ref()
            .map(|s| s.load(fingerprint, pipeline_id))
        {
            Some(Ok(Some(result))) => {
                self.counters.store_hits += 1;
                let result = self
                    .cache
                    .insert(fingerprint, pipeline_id, Arc::new(result));
                Some(AnalyzeReply {
                    fingerprint,
                    pipeline_id: pipeline_id.to_string(),
                    source: ServeSource::StoreHit,
                    wall_us: t0.elapsed().as_secs_f64() * 1e6,
                    result,
                })
            }
            Some(Err(e)) => {
                self.counters.store_errors += 1;
                eprintln!(
                    "fetch-serve: rejecting store entry for ({}, {pipeline_id}): {e}",
                    crate::protocol::hex_u64(fingerprint)
                );
                None
            }
            Some(Ok(None)) | None => None,
        }
    }

    fn analyze(
        &mut self,
        input: AnalyzeInput,
        pipeline: &Pipeline,
    ) -> Result<AnalyzeReply, String> {
        self.counters.analyze += 1;
        let t0 = Instant::now();
        let bytes = match input {
            AnalyzeInput::Path(path) => {
                std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?
            }
            AnalyzeInput::Bytes(bytes) => bytes,
        };
        let image = ElfImage::parse(bytes).map_err(|e| format!("not a loadable ELF: {e}"))?;
        let fingerprint = image_fingerprint(&image);
        let pipeline_id = pipeline.id();

        if let Some(mut warm) = self.lookup_warm(fingerprint, &pipeline_id) {
            // Charge the reply the full request time (parse included).
            warm.wall_us = t0.elapsed().as_secs_f64() * 1e6;
            return Ok(warm);
        }

        self.counters.cold += 1;
        let result = Arc::new(pipeline.run_with_engine(&image.to_binary(), &mut self.engine));
        let result = self.cache.insert(fingerprint, &pipeline_id, result);
        if let Some(store) = &self.store {
            if let Err(e) = store.save(fingerprint, &pipeline_id, &result) {
                // A failed persist degrades restart warmth, not answers.
                eprintln!(
                    "fetch-serve: failed to persist ({}, {pipeline_id}): {e}",
                    crate::protocol::hex_u64(fingerprint)
                );
            }
        }
        Ok(AnalyzeReply {
            fingerprint,
            pipeline_id,
            source: ServeSource::Cold,
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_binary::write_elf;
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-service-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn analyze_req(bytes: Vec<u8>) -> Request {
        Request::Analyze {
            input: AnalyzeInput::Bytes(bytes),
            pipeline: Pipeline::fetch(),
        }
    }

    fn reply_source(reply: &Reply) -> ServeSource {
        match reply {
            Reply::Analyze(a) => a.source,
            other => panic!("expected analyze reply, got {other:?}"),
        }
    }

    #[test]
    fn cold_then_cache_then_store_across_restart() {
        let dir = scratch_dir("restart");
        let case = synthesize(&SynthConfig::small(61));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            cache_capacity: CacheCapacity::entries(16),
        };

        let mut service = AnalysisService::new(&config).unwrap();
        let cold = service.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&cold), ServeSource::Cold);
        let warm = service.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&warm), ServeSource::CacheHit);
        let (cold_a, warm_a) = match (&cold, &warm) {
            (Reply::Analyze(c), Reply::Analyze(w)) => (c, w),
            other => panic!("{other:?}"),
        };
        assert!(Arc::ptr_eq(&cold_a.result, &warm_a.result));
        assert!(!service.shutdown_requested());
        assert!(matches!(service.handle(Request::Shutdown), Reply::Shutdown));
        assert!(service.shutdown_requested());
        drop(service);

        // Restart: fresh cache, same store directory.
        let mut restarted = AnalysisService::new(&config).unwrap();
        let from_store = restarted.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&from_store), ServeSource::StoreHit);
        match (&cold, &from_store) {
            (Reply::Analyze(c), Reply::Analyze(s)) => {
                assert_eq!(*c.result, *s.result, "persisted answer must equal cold");
            }
            other => panic!("{other:?}"),
        }
        // And the promotion means the next one is a cache hit.
        assert_eq!(
            reply_source(&restarted.handle(analyze_req(elf))),
            ServeSource::CacheHit
        );
        let stats = restarted.stats();
        assert_eq!(stats.requests.store_hits, 1);
        assert_eq!(stats.requests.cold, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_store_entry_is_recomputed_and_overwritten() {
        let dir = scratch_dir("heal");
        let case = synthesize(&SynthConfig::small(62));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            cache_capacity: CacheCapacity::UNBOUNDED,
        };
        let mut service = AnalysisService::new(&config).unwrap();
        let cold = service.handle(analyze_req(elf.clone()));

        // Corrupt the single store file in place.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "fres"))
            .expect("one persisted entry");
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&entry, &bytes).unwrap();

        // Restart: the corrupt entry must be rejected, recomputed, and
        // healed — never misread.
        let mut healed = AnalysisService::new(&config).unwrap();
        let recomputed = healed.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&recomputed), ServeSource::Cold);
        match (&cold, &recomputed) {
            (Reply::Analyze(c), Reply::Analyze(r)) => assert_eq!(*c.result, *r.result),
            other => panic!("{other:?}"),
        }
        assert_eq!(healed.stats().requests.store_errors, 1);

        // The overwrite healed the store: one more restart hits it.
        let mut third = AnalysisService::new(&config).unwrap();
        assert_eq!(
            reply_source(&third.handle(analyze_req(elf))),
            ServeSource::StoreHit
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_answers_warm_only_and_telemetry_streams() {
        let case = synthesize(&SynthConfig::small(63));
        let elf = write_elf(&case.binary);
        let mut service = AnalysisService::new(&ServeConfig::default()).unwrap();

        // Telemetry sink capturing into a shared buffer.
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let captured = Arc::new(Mutex::new(Vec::new()));
        service
            .telemetry()
            .subscribe(Box::new(Sink(captured.clone())));

        let fp = {
            let image = ElfImage::parse(elf.clone()).unwrap();
            image_fingerprint(&image)
        };
        let miss = service.handle(Request::Query {
            fingerprint: fp,
            pipeline_id: Pipeline::fetch().id(),
        });
        assert!(matches!(miss, Reply::Error(_)), "query never computes");

        let cold = service.handle(analyze_req(elf));
        assert_eq!(reply_source(&cold), ServeSource::Cold);
        let hit = service.handle(Request::Query {
            fingerprint: fp,
            pipeline_id: Pipeline::fetch().id(),
        });
        assert_eq!(reply_source(&hit), ServeSource::CacheHit);

        let text = String::from_utf8(captured.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Two answered requests × (1 request event + 4 layer events).
        assert_eq!(lines.len(), 10, "{text}");
        assert!(lines[0].contains("\"event\":\"request\""));
        assert!(lines[0].contains("\"source\":\"cold\""));
        assert!(lines[1].contains("\"event\":\"layer\""));
        assert!(lines[1].contains("\"layer\":\"FDE\""));
        assert!(lines[5].contains("\"source\":\"cache\""));
        let stats = service.stats();
        assert_eq!(stats.requests.query, 2);
        assert_eq!(stats.requests.analyze, 1);
        assert!(stats.store.is_none());
    }
}
