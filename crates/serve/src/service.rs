//! The transport-agnostic daemon core: one [`AnalysisService`] owns the
//! bounded cache, the persistent store, a pool of decode engines, and
//! the telemetry hub, and turns parsed [`Request`]s into [`Reply`]s.
//!
//! The service is `Sync` — [`AnalysisService::handle`] takes `&self`,
//! so one instance is shared by every worker of the server's pool
//! (and by the directory-queue and stdio transports) without an outer
//! lock around request handling.
//!
//! Answer path for an analyze request, in order:
//!
//! 1. **Bounded cache** ([`fetch_core::AnalysisCache`]) — fingerprint
//!    hash + map lookup, no ELF materialization.
//! 2. **Persistent store** ([`ResultStore`]) — one file read +
//!    checksummed decode; the loaded result is promoted into the cache.
//!    A corrupt entry is *rejected* (counted in
//!    [`RequestCounters::store_errors`]), recomputed cold, and
//!    overwritten.
//! 3. **Coalesced cold compute** — the request joins the cache's
//!    flight table ([`fetch_core::AnalysisCache::join_flight`]): the
//!    first arrival for an uncached key becomes the *leader* and runs
//!    the pipeline; every concurrent arrival for the same key blocks on
//!    the flight and receives the leader's `Arc` (source
//!    `"coalesced"`). N concurrent requests for one uncached
//!    fingerprint perform exactly one cold compute. A leader that fails
//!    (panic or injected fault) wakes the waiters, one of which takes
//!    over — a dead leader never strands the group.
//!
//! Cold computes borrow a [`RecEngine`] from the service's engine pool
//! (decode caches persist across requests; concurrent colds each get
//! their own engine) and the leader persists the answer — plus the
//! image's [`ImageDigest`] — to the store *after* publishing it to
//! waiters, so coalesced repliers never block on disk.
//!
//! A `reanalyze` request names a previously-analyzed *predecessor* and
//! submits a new version of the same binary; the service fetches the
//! predecessor's result and digest (cache, then store) and runs the
//! delta ladder ([`run_delta`]), so an unchanged or locally-patched
//! binary is answered without re-running the pipeline (source
//! `"delta"`, counted in `stats.delta`). Every tier is byte-identical
//! to a cold analyze of the same image.
//!
//! Every analyze/query answer also broadcasts its telemetry — a
//! `request` event plus one `layer` event per [`fetch_core::LayerTrace`]
//! — to the subscribers registered on the [`TelemetryHub`]. Warm
//! answers replay the trace persisted with the result, so the per-layer
//! telemetry survives both the cache and a restart.

use crate::fault::{FaultKind, FaultPlan};
use crate::json::Json;
use crate::protocol::{
    telemetry_events, AnalyzeInput, AnalyzeReply, DeltaCounters, ErrorCode, MetricsReply, Reply,
    Request, RequestCounters, ServeSource, StatsReply,
};
use crate::store::{GcPolicy, ResultStore};
use fetch_binary::ElfImage;
use fetch_core::{
    image_fingerprint, run_delta, AnalysisCache, CacheCapacity, DeltaClass, DetectionResult,
    Flight, ImageDigest, Pipeline,
};
use fetch_disasm::RecEngine;
use fetch_obs::{logmsg, Histogram, IdGen, LogLevel, MetricValue, Registry, Snapshot};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Telemetry fan-out: registered sinks receive every event line. A sink
/// whose write fails is dropped (a disconnected subscriber must never
/// wedge the daemon).
#[derive(Default)]
pub struct TelemetryHub {
    sinks: Mutex<Vec<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TelemetryHub({} sinks)", self.subscriber_count())
    }
}

impl TelemetryHub {
    /// Registers a sink; it receives every subsequent event line.
    pub fn subscribe(&self, sink: Box<dyn Write + Send>) {
        self.sinks.lock().expect("hub lock").push(sink);
    }

    /// Currently registered sinks.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.lock().expect("hub lock").len()
    }

    /// Writes one event line (newline appended) to every sink, dropping
    /// sinks that fail.
    pub fn broadcast(&self, line: &str) {
        let mut sinks = self.sinks.lock().expect("hub lock");
        sinks.retain_mut(|sink| {
            sink.write_all(line.as_bytes())
                .and_then(|()| sink.write_all(b"\n"))
                .and_then(|()| sink.flush())
                .is_ok()
        });
    }
}

/// Configuration of an [`AnalysisService`].
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Directory of the persistent result store (`None` = memory-only:
    /// answers do not survive a restart).
    pub store_dir: Option<PathBuf>,
    /// Bounds of the in-memory cache (default: unbounded).
    pub cache_capacity: CacheCapacity,
    /// Age/size bounds of the store (default: unbounded, no GC).
    pub store_gc: GcPolicy,
    /// The armed fault plan (default: empty — never fires).
    pub faults: Arc<FaultPlan>,
    /// Worker threads for the intra-binary sharded recursive walk on
    /// cold computes (`0` or `1` = serial). Answers are byte-identical
    /// at every setting (see [`fetch_core::Fetch::intra_jobs`]); this
    /// composes with the server's request-level worker pool the same
    /// way `--intra-jobs` composes with the batch driver's `--jobs`.
    pub intra_jobs: usize,
}

/// Lock-free request counters ([`RequestCounters`] is their snapshot).
///
/// Every field is an `Arc<AtomicU64>` so the same atomic can be
/// registered into the service's [`Registry`] — the `stats` reply and
/// the `metrics` exposition read *identical* storage and therefore
/// reconcile exactly by construction.
#[derive(Debug, Default)]
struct Counters {
    requests_total: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    analyze: Arc<AtomicU64>,
    reanalyze: Arc<AtomicU64>,
    query: Arc<AtomicU64>,
    cold: Arc<AtomicU64>,
    cache_hits: Arc<AtomicU64>,
    store_hits: Arc<AtomicU64>,
    store_errors: Arc<AtomicU64>,
    coalesced: Arc<AtomicU64>,
    shed_busy: Arc<AtomicU64>,
    rejected_too_large: Arc<AtomicU64>,
    queue_quarantined: Arc<AtomicU64>,
    delta_hits: Arc<AtomicU64>,
    sections_reused: Arc<AtomicU64>,
    fallback_cold: Arc<AtomicU64>,
    digest_mismatch: Arc<AtomicU64>,
}

impl Counters {
    /// Binds every counter into `registry` under its exposition name.
    fn register(&self, registry: &Registry) {
        for (name, atomic) in [
            ("fetch_requests_total", &self.requests_total),
            ("fetch_requests_errors_total", &self.errors),
            ("fetch_requests_analyze_total", &self.analyze),
            ("fetch_requests_reanalyze_total", &self.reanalyze),
            ("fetch_requests_query_total", &self.query),
            ("fetch_requests_cold_total", &self.cold),
            ("fetch_requests_cache_hits_total", &self.cache_hits),
            ("fetch_requests_store_hits_total", &self.store_hits),
            ("fetch_requests_store_errors_total", &self.store_errors),
            ("fetch_requests_coalesced_total", &self.coalesced),
            ("fetch_requests_shed_busy_total", &self.shed_busy),
            (
                "fetch_requests_rejected_too_large_total",
                &self.rejected_too_large,
            ),
            (
                "fetch_requests_queue_quarantined_total",
                &self.queue_quarantined,
            ),
            ("fetch_delta_hits_total", &self.delta_hits),
            ("fetch_delta_sections_reused_total", &self.sections_reused),
            ("fetch_delta_fallback_cold_total", &self.fallback_cold),
            ("fetch_delta_digest_mismatch_total", &self.digest_mismatch),
        ] {
            registry.register_counter(name, Arc::clone(atomic));
        }
    }

    fn snapshot(&self) -> RequestCounters {
        RequestCounters {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            analyze: self.analyze.load(Ordering::Relaxed),
            reanalyze: self.reanalyze.load(Ordering::Relaxed),
            query: self.query.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            rejected_too_large: self.rejected_too_large.load(Ordering::Relaxed),
            queue_quarantined: self.queue_quarantined.load(Ordering::Relaxed),
        }
    }

    fn delta_snapshot(&self) -> DeltaCounters {
        DeltaCounters {
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            sections_reused: self.sections_reused.load(Ordering::Relaxed),
            fallback_cold: self.fallback_cold.load(Ordering::Relaxed),
            digest_mismatch: self.digest_mismatch.load(Ordering::Relaxed),
        }
    }
}

/// The answer-source tokens a request latency is bucketed under —
/// `fetch_request_us{source="…"}` histograms, one per token. The sum of
/// their counts equals `fetch_requests_total` (every answer-path
/// request is recorded exactly once).
const REQUEST_SOURCES: [&str; 7] = [
    "cache",
    "store",
    "cold",
    "coalesced",
    "delta",
    "error",
    "shed",
];

/// The observability core of one service instance: the metric registry
/// plus the pre-resolved histogram handles of every instrumented site
/// on the answer path (resolving by name per request would take the
/// registry lock on the hot path).
pub(crate) struct ServiceObs {
    pub(crate) registry: Arc<Registry>,
    ids: IdGen,
    /// Request latency per answer source, [`REQUEST_SOURCES`] order.
    request_us: [Arc<Histogram>; 7],
    /// Wall time a connection sat in the server's pending queue.
    pub(crate) queue_wait_us: Arc<Histogram>,
    /// Wall time writing one reply line to a transport.
    pub(crate) reply_write_us: Arc<Histogram>,
    /// Coalescing: how long a leader held the flight (compute+publish).
    coalesce_leader_us: Arc<Histogram>,
    /// Coalescing: how long a waiter blocked for the leader's answer.
    coalesce_wait_us: Arc<Histogram>,
    /// Per-layer pipeline walls of fresh computes, keyed by layer name.
    layer_walls: Mutex<HashMap<&'static str, Arc<Histogram>>>,
}

impl std::fmt::Debug for ServiceObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServiceObs({:?})", self.registry)
    }
}

impl ServiceObs {
    fn new(registry: Arc<Registry>) -> ServiceObs {
        let request_us = REQUEST_SOURCES
            .map(|source| registry.histogram(&format!("fetch_request_us{{source=\"{source}\"}}")));
        ServiceObs {
            ids: IdGen::new(),
            queue_wait_us: registry.histogram("fetch_queue_wait_us"),
            reply_write_us: registry.histogram("fetch_reply_write_us"),
            coalesce_leader_us: registry.histogram("fetch_coalesce_leader_us"),
            coalesce_wait_us: registry.histogram("fetch_coalesce_wait_us"),
            layer_walls: Mutex::new(HashMap::new()),
            request_us,
            registry,
        }
    }

    fn request_hist(&self, source: &str) -> &Arc<Histogram> {
        let idx = REQUEST_SOURCES
            .iter()
            .position(|s| *s == source)
            .expect("known source token");
        &self.request_us[idx]
    }

    /// Records the per-layer walls of a freshly computed trace (warm
    /// answers replay persisted traces and are *not* re-recorded).
    fn record_layer_walls(&self, result: &DetectionResult) {
        let mut walls = self.layer_walls.lock().unwrap_or_else(|p| p.into_inner());
        for t in &result.trace {
            let hist = walls.entry(t.name).or_insert_with(|| {
                self.registry
                    .histogram(&format!("fetch_layer_wall_us{{layer=\"{}\"}}", t.name))
            });
            hist.record(t.wall_us() as u64);
        }
    }
}

/// The daemon core (see the [module docs](self)).
#[derive(Debug)]
pub struct AnalysisService {
    cache: AnalysisCache,
    store: Option<ResultStore>,
    /// Decode engines for cold computes: borrowed per compute, returned
    /// after, so decode caches persist across requests and concurrent
    /// colds never contend on one engine.
    engines: Mutex<Vec<RecEngine>>,
    telemetry: TelemetryHub,
    counters: Counters,
    faults: Arc<FaultPlan>,
    intra_jobs: usize,
    shutdown: AtomicBool,
    obs: ServiceObs,
}

impl AnalysisService {
    /// Builds a service from `config`, opening (or creating) the store
    /// directory — which runs the startup recovery sweep — when one is
    /// configured.
    pub fn new(config: &ServeConfig) -> std::io::Result<AnalysisService> {
        let registry = Arc::new(Registry::new());
        let obs = ServiceObs::new(Arc::clone(&registry));
        let mut store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open_with(
                dir,
                config.store_gc,
                config.faults.clone(),
            )?),
            None => None,
        };
        if let Some(store) = &mut store {
            store.bind_obs(
                registry.histogram("fetch_store_save_us"),
                registry.histogram("fetch_store_load_us"),
            );
        }
        let counters = Counters::default();
        counters.register(&registry);
        let cache = AnalysisCache::with_capacity(config.cache_capacity);
        cache.register_metrics(&registry, "fetch_cache");
        registry.register_counter("fetch_faults_injected_total", config.faults.fired_handle());
        for (site, handle) in config.faults.site_counter_handles() {
            registry.register_counter(
                &format!("fetch_fault_fired_total{{site=\"{site}\"}}"),
                handle,
            );
        }
        Ok(AnalysisService {
            cache,
            store,
            engines: Mutex::new(Vec::new()),
            telemetry: TelemetryHub::default(),
            counters,
            faults: config.faults.clone(),
            intra_jobs: config.intra_jobs,
            shutdown: AtomicBool::new(false),
            obs,
        })
    }

    /// The service's metric registry (the `metrics` verb renders it;
    /// harnesses may register their own series).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// The service's observability handles (transport instrumentation).
    pub(crate) fn obs(&self) -> &ServiceObs {
        &self.obs
    }

    /// Draws the next monotonic request ID. Transports draw one per
    /// incoming request so the reply envelope, the telemetry events,
    /// and the log lines of one request all agree.
    pub fn next_req_id(&self) -> u64 {
        self.obs.ids.next_id()
    }

    /// The telemetry hub (transports register subscribers here).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// The bounded cache (read-only access for harnesses).
    pub fn cache(&self) -> &AnalysisCache {
        &self.cache
    }

    /// The armed fault plan (transports fire connection-level sites).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether a shutdown request has been handled; transports exit
    /// their accept loops when this turns true.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Records a request shed with a `busy` error (transport-level).
    /// Shed requests count into `requests_total` and the
    /// `source="shed"` latency histogram (the daemon spent ~no time on
    /// them), so the reconciliation identity covers load shedding.
    pub fn note_shed_busy(&self) {
        self.counters.requests_total.fetch_add(1, Ordering::Relaxed);
        self.counters.shed_busy.fetch_add(1, Ordering::Relaxed);
        self.obs.request_hist("shed").record(0);
    }

    /// Records a request rejected with `too_large` (transport-level).
    pub fn note_rejected_too_large(&self) {
        self.counters
            .rejected_too_large
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a directory-queue request moved to quarantine.
    pub fn note_queue_quarantined(&self) {
        self.counters
            .queue_quarantined
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Handles one request under a freshly drawn request ID. Every path
    /// returns a reply — errors become structured [`Reply::Error`]s,
    /// and the daemon keeps serving. Takes `&self`: any number of
    /// workers call this concurrently.
    pub fn handle(&self, request: Request) -> Reply {
        self.handle_with_id(self.next_req_id(), request)
    }

    /// [`AnalysisService::handle`] with the caller's request ID — the
    /// transports draw the ID first so they can stamp it into the reply
    /// envelope ([`Reply::to_line_with`]) and their log lines.
    ///
    /// Answer-path requests (`analyze`/`reanalyze`/`query`) are counted
    /// into `requests_total`, bucketed into exactly one outcome counter
    /// (hit/cold/coalesced/delta/error), and recorded into exactly one
    /// `fetch_request_us{source="…"}` latency histogram.
    pub fn handle_with_id(&self, req_id: u64, request: Request) -> Reply {
        match request {
            Request::Analyze { input, pipeline } => {
                let t0 = Instant::now();
                self.counters.requests_total.fetch_add(1, Ordering::Relaxed);
                let reply = match self.analyze(req_id, input, &pipeline) {
                    Ok(reply) => {
                        self.emit(&reply);
                        Reply::Analyze(reply)
                    }
                    Err((code, message)) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        Reply::error(code, message)
                    }
                };
                self.record_request(&reply, t0);
                reply
            }
            Request::Reanalyze {
                prev_fingerprint,
                input,
                pipeline,
            } => {
                let t0 = Instant::now();
                self.counters.requests_total.fetch_add(1, Ordering::Relaxed);
                let reply = match self.reanalyze(req_id, prev_fingerprint, input, &pipeline) {
                    Ok(reply) => {
                        self.emit(&reply);
                        Reply::Analyze(reply)
                    }
                    Err((code, message)) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        Reply::error(code, message)
                    }
                };
                self.record_request(&reply, t0);
                reply
            }
            Request::Query {
                fingerprint,
                pipeline_id,
            } => {
                let t0 = Instant::now();
                self.counters.requests_total.fetch_add(1, Ordering::Relaxed);
                self.counters.query.fetch_add(1, Ordering::Relaxed);
                let reply = match self.lookup_warm(req_id, fingerprint, &pipeline_id) {
                    Some((reply, _has_digest)) => {
                        self.emit(&reply);
                        Reply::Analyze(reply)
                    }
                    None => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        Reply::error(
                            ErrorCode::NotFound,
                            format!(
                                "no cached or stored result for ({}, {pipeline_id})",
                                crate::protocol::hex_u64(fingerprint)
                            ),
                        )
                    }
                };
                self.record_request(&reply, t0);
                reply
            }
            Request::Stats => Reply::Stats(self.stats()),
            Request::Metrics => Reply::Metrics(self.metrics_reply()),
            Request::Subscribe => Reply::Subscribed,
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Reply::Shutdown
            }
        }
    }

    /// Buckets one finished answer-path request into its
    /// `fetch_request_us{source="…"}` histogram.
    fn record_request(&self, reply: &Reply, t0: Instant) {
        let source = match reply {
            Reply::Analyze(a) => a.source.token(),
            _ => "error",
        };
        self.obs
            .request_hist(source)
            .record(t0.elapsed().as_micros() as u64);
    }

    /// Builds the `metrics` reply: point-in-time gauges are refreshed
    /// from structural state (cache/store footprints), then the whole
    /// registry snapshots into both exposition forms.
    fn metrics_reply(&self) -> MetricsReply {
        let cache = self.cache.stats();
        self.obs
            .registry
            .gauge("fetch_cache_entries")
            .set(cache.entries as u64);
        self.obs
            .registry
            .gauge("fetch_cache_bytes")
            .set(cache.bytes as u64);
        if let Some(Ok(store)) = self.store.as_ref().map(|s| s.stats()) {
            self.obs
                .registry
                .gauge("fetch_store_entries")
                .set(store.entries as u64);
            self.obs
                .registry
                .gauge("fetch_store_disk_bytes")
                .set(store.disk_bytes);
        }
        let snap = self.obs.registry.snapshot();
        MetricsReply {
            text: fetch_obs::render_text(&snap),
            metrics: snapshot_json(&snap),
        }
    }

    /// The service's statistics snapshot.
    pub fn stats(&self) -> StatsReply {
        StatsReply {
            cache: self.cache.stats(),
            store: self.store.as_ref().and_then(|s| s.stats().ok()),
            requests: self.counters.snapshot(),
            delta: self.counters.delta_snapshot(),
            faults_injected: self.faults.fired(),
        }
    }

    fn emit(&self, reply: &AnalyzeReply) {
        if self.telemetry.subscriber_count() == 0 {
            return;
        }
        for event in telemetry_events(reply) {
            self.telemetry.broadcast(&event);
        }
    }

    /// Cache-then-store lookup without computing (the `query` path; also
    /// the warm half of `analyze`/`reanalyze`). Promotes store hits —
    /// digest included — into the cache. The returned flag says whether
    /// the warm entry carries an [`ImageDigest`]; `analyze` heals
    /// digest-less (pre-digest) entries when it has the image in hand.
    fn lookup_warm(
        &self,
        req_id: u64,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Option<(AnalyzeReply, bool)> {
        let t0 = Instant::now();
        if let Some((result, digest)) = self.cache.lookup_with_digest(fingerprint, pipeline_id) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Some((
                AnalyzeReply {
                    req_id,
                    fingerprint,
                    pipeline_id: pipeline_id.to_string(),
                    source: ServeSource::CacheHit,
                    wall_us: t0.elapsed().as_secs_f64() * 1e6,
                    result,
                },
                digest.is_some(),
            ));
        }
        match self
            .store
            .as_ref()
            .map(|s| s.load_full(fingerprint, pipeline_id))
        {
            Some(Ok(Some((result, digest)))) => {
                self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                let has_digest = digest.is_some();
                let result = self.cache.insert_with_digest(
                    fingerprint,
                    pipeline_id,
                    Arc::new(result),
                    digest.map(Arc::new),
                );
                Some((
                    AnalyzeReply {
                        req_id,
                        fingerprint,
                        pipeline_id: pipeline_id.to_string(),
                        source: ServeSource::StoreHit,
                        wall_us: t0.elapsed().as_secs_f64() * 1e6,
                        result,
                    },
                    has_digest,
                ))
            }
            Some(Err(e)) => {
                self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                logmsg!(
                    LogLevel::Warn,
                    req_id,
                    "fetch-serve: rejecting store entry for ({}, {pipeline_id}): {e}",
                    crate::protocol::hex_u64(fingerprint)
                );
                None
            }
            Some(Ok(None)) | None => None,
        }
    }

    /// Pops a pool engine (or makes a fresh one), configured with the
    /// service's intra-binary shard count.
    fn borrow_engine(&self) -> RecEngine {
        let mut engine = self
            .engines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
            .unwrap_or_default();
        engine.set_intra_jobs(self.intra_jobs);
        engine
    }

    /// Runs the pipeline on a borrowed pool engine.
    fn compute(&self, pipeline: &Pipeline, image: &ElfImage) -> fetch_core::DetectionResult {
        let mut engine = self.borrow_engine();
        let result = pipeline.run_with_engine(&image.to_binary(), &mut engine);
        self.engines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(engine);
        result
    }

    /// Reads and parses a request's ELF image (shared by `analyze` and
    /// `reanalyze`).
    fn load_image(&self, input: AnalyzeInput) -> Result<ElfImage, (ErrorCode, String)> {
        let bytes = match input {
            AnalyzeInput::Path(path) => std::fs::read(&path).map_err(|e| {
                (
                    ErrorCode::BadRequest,
                    format!("cannot read {}: {e}", path.display()),
                )
            })?,
            AnalyzeInput::Bytes(bytes) => bytes,
        };
        ElfImage::parse(bytes)
            .map_err(|e| (ErrorCode::BadRequest, format!("not a loadable ELF: {e}")))
    }

    /// Attaches `digest` to the published result in the cache and (when
    /// configured) the store. Returns the canonical cached `Arc`. A
    /// failed persist degrades restart warmth, not answers.
    fn publish_digest(
        &self,
        req_id: u64,
        fingerprint: u64,
        pipeline_id: &str,
        result: Arc<DetectionResult>,
        digest: Arc<ImageDigest>,
    ) -> Arc<DetectionResult> {
        let result =
            self.cache
                .insert_with_digest(fingerprint, pipeline_id, result, Some(digest.clone()));
        if let Some(store) = &self.store {
            if let Err(e) = store.save_with_digest(fingerprint, pipeline_id, &result, Some(&digest))
            {
                logmsg!(
                    LogLevel::Warn,
                    req_id,
                    "fetch-serve: failed to persist ({}, {pipeline_id}): {e}",
                    crate::protocol::hex_u64(fingerprint)
                );
            }
        }
        result
    }

    fn analyze(
        &self,
        req_id: u64,
        input: AnalyzeInput,
        pipeline: &Pipeline,
    ) -> Result<AnalyzeReply, (ErrorCode, String)> {
        self.counters.analyze.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let image = self.load_image(input)?;
        let fingerprint = image_fingerprint(&image);
        let pipeline_id = pipeline.id();

        if let Some((mut warm, has_digest)) = self.lookup_warm(req_id, fingerprint, &pipeline_id) {
            if !has_digest {
                // A pre-digest entry, and we have the image in hand:
                // heal it so a later reanalyze can delta against it.
                let digest = Arc::new(ImageDigest::compute(&image.to_binary(), fingerprint));
                warm.result =
                    self.publish_digest(req_id, fingerprint, &pipeline_id, warm.result, digest);
            }
            // Charge the reply the full request time (parse included).
            warm.wall_us = t0.elapsed().as_secs_f64() * 1e6;
            return Ok(warm);
        }

        // Cold path, coalesced: the first arrival leads and computes;
        // concurrent arrivals for the same key wait on the flight.
        loop {
            let t_join = Instant::now();
            match self.cache.join_flight(fingerprint, &pipeline_id) {
                Flight::Hit(result) => {
                    // Completed between our lookup and the join.
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(AnalyzeReply {
                        req_id,
                        fingerprint,
                        pipeline_id,
                        source: ServeSource::CacheHit,
                        wall_us: t0.elapsed().as_secs_f64() * 1e6,
                        result,
                    });
                }
                Flight::Waited(Some(result)) => {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    self.obs
                        .coalesce_wait_us
                        .record(t_join.elapsed().as_micros() as u64);
                    return Ok(AnalyzeReply {
                        req_id,
                        fingerprint,
                        pipeline_id,
                        source: ServeSource::Coalesced,
                        wall_us: t0.elapsed().as_secs_f64() * 1e6,
                        result,
                    });
                }
                // The leader aborted without an answer; rejoin (one of
                // the waiters — possibly us — takes over as leader).
                Flight::Waited(None) => continue,
                Flight::Leader(guard) => {
                    if let Some(FaultKind::Io) = self.faults.fire(FaultPlan::COMPUTE) {
                        // Dropping the guard aborts the flight: waiters
                        // wake and elect a new leader, so one injected
                        // failure never fails the whole group.
                        drop(guard);
                        return Err((
                            ErrorCode::Internal,
                            FaultPlan::injected_error(FaultPlan::COMPUTE).to_string(),
                        ));
                    }
                    self.counters.cold.fetch_add(1, Ordering::Relaxed);
                    let result = Arc::new(self.compute(pipeline, &image));
                    // Publish to cache and waiters first; digest + disk
                    // after, so coalesced repliers never block on them.
                    let result = guard.complete(result);
                    self.obs
                        .coalesce_leader_us
                        .record(t_join.elapsed().as_micros() as u64);
                    self.obs.record_layer_walls(&result);
                    let digest = Arc::new(ImageDigest::compute(&image.to_binary(), fingerprint));
                    let result =
                        self.publish_digest(req_id, fingerprint, &pipeline_id, result, digest);
                    return Ok(AnalyzeReply {
                        req_id,
                        fingerprint,
                        pipeline_id,
                        source: ServeSource::Cold,
                        wall_us: t0.elapsed().as_secs_f64() * 1e6,
                        result,
                    });
                }
            }
        }
    }

    /// The `reanalyze` path: answer a new version of a known binary
    /// through the delta ladder ([`run_delta`]).
    ///
    /// Order of resolution:
    ///
    /// 1. If the *new* image is itself already warm (cache or store),
    ///    that answer wins — same as `analyze`.
    /// 2. The predecessor named by `prev_fingerprint` is fetched from
    ///    the cache, then the store. A missing or digest-less
    ///    predecessor drops the ladder to its cold tier (counted as
    ///    `digest_mismatch` — there was nothing sound to delta against).
    /// 3. The ladder runs on a pooled engine; tiers 1–2 reuse the
    ///    previous result verbatim (source `"delta"`, counted in
    ///    `delta_hits`), tier 3 recomputes decode-warm
    ///    (`fallback_cold`), tier 4 runs plain cold (`digest_mismatch`).
    ///
    /// Whatever tier answered, the result and the new image's digest
    /// are published to the cache and store, so the next version deltas
    /// against *this* one. Every tier is byte-identical to a cold
    /// `analyze` of the same image (property-tested in core and pinned
    /// end-to-end by the serve tests).
    fn reanalyze(
        &self,
        req_id: u64,
        prev_fingerprint: u64,
        input: AnalyzeInput,
        pipeline: &Pipeline,
    ) -> Result<AnalyzeReply, (ErrorCode, String)> {
        self.counters.reanalyze.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let image = self.load_image(input)?;
        let fingerprint = image_fingerprint(&image);
        let pipeline_id = pipeline.id();

        // The new version may already be known (a resubmission, or two
        // clients racing on the same rebuild): warm answers win.
        if let Some((mut warm, has_digest)) = self.lookup_warm(req_id, fingerprint, &pipeline_id) {
            if !has_digest {
                let digest = Arc::new(ImageDigest::compute(&image.to_binary(), fingerprint));
                warm.result =
                    self.publish_digest(req_id, fingerprint, &pipeline_id, warm.result, digest);
            }
            warm.wall_us = t0.elapsed().as_secs_f64() * 1e6;
            return Ok(warm);
        }

        // Fetch the predecessor: cache first, then store (not counted
        // as a store hit — it is an input of the ladder, not the
        // answer). Load failures degrade to the cold tier.
        let prev = self
            .cache
            .lookup_with_digest(prev_fingerprint, &pipeline_id)
            .or_else(|| {
                match self
                    .store
                    .as_ref()
                    .map(|s| s.load_full(prev_fingerprint, &pipeline_id))
                {
                    Some(Ok(Some((result, digest)))) => {
                        Some((Arc::new(result), digest.map(Arc::new)))
                    }
                    Some(Err(e)) => {
                        self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
                        logmsg!(
                            LogLevel::Warn,
                            req_id,
                            "fetch-serve: rejecting store entry for ({}, {pipeline_id}): {e}",
                            crate::protocol::hex_u64(prev_fingerprint)
                        );
                        None
                    }
                    Some(Ok(None)) | None => None,
                }
            });

        let binary = image.to_binary();
        let new_digest = ImageDigest::compute(&binary, fingerprint);
        let mut engine = self.borrow_engine();
        let (result, class, sections_reused) = match &prev {
            Some((prev_result, prev_digest)) => {
                let out = run_delta(
                    pipeline,
                    prev_result,
                    prev_digest.as_deref(),
                    &binary,
                    &new_digest,
                    &mut engine,
                );
                (out.result, out.class, out.sections_reused)
            }
            // Unknown predecessor: nothing to delta against.
            None => (
                Arc::new(pipeline.run_with_engine(&binary, &mut engine)),
                DeltaClass::Cold,
                0,
            ),
        };
        self.engines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(engine);

        self.counters
            .sections_reused
            .fetch_add(sections_reused as u64, Ordering::Relaxed);
        let source = if class.is_hit() {
            self.counters.delta_hits.fetch_add(1, Ordering::Relaxed);
            ServeSource::Delta
        } else {
            match class {
                DeltaClass::Recompute => {
                    self.counters.fallback_cold.fetch_add(1, Ordering::Relaxed)
                }
                _ => self
                    .counters
                    .digest_mismatch
                    .fetch_add(1, Ordering::Relaxed),
            };
            self.counters.cold.fetch_add(1, Ordering::Relaxed);
            // A non-hit tier ran the pipeline: its trace is fresh.
            self.obs.record_layer_walls(&result);
            ServeSource::Cold
        };
        let result = self.publish_digest(
            req_id,
            fingerprint,
            &pipeline_id,
            result,
            Arc::new(new_digest),
        );
        Ok(AnalyzeReply {
            req_id,
            fingerprint,
            pipeline_id,
            source,
            wall_us: t0.elapsed().as_secs_f64() * 1e6,
            result,
        })
    }
}

/// Renders a registry snapshot as the `metrics` reply's JSON form:
/// counters/gauges become numbers, histograms become
/// `{count,sum,max,p50,p95,p99}` objects, keyed by the full metric name
/// (labels included). Key order is deterministic ([`Json::Obj`] renders
/// sorted).
fn snapshot_json(snap: &Snapshot) -> Json {
    Json::Obj(
        snap.entries
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::int(*v),
                    MetricValue::Histogram(h) => crate::json::obj([
                        ("count", Json::int(h.count)),
                        ("sum", Json::int(h.sum)),
                        ("max", Json::int(h.max)),
                        ("p50", Json::int(h.p50)),
                        ("p95", Json::int(h.p95)),
                        ("p99", Json::int(h.p99)),
                    ]),
                };
                (name.clone(), v)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_binary::write_elf;
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-service-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn analyze_req(bytes: Vec<u8>) -> Request {
        Request::Analyze {
            input: AnalyzeInput::Bytes(bytes),
            pipeline: Pipeline::fetch(),
        }
    }

    fn reply_source(reply: &Reply) -> ServeSource {
        match reply {
            Reply::Analyze(a) => a.source,
            other => panic!("expected analyze reply, got {other:?}"),
        }
    }

    #[test]
    fn cold_then_cache_then_store_across_restart() {
        let dir = scratch_dir("restart");
        let case = synthesize(&SynthConfig::small(61));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            cache_capacity: CacheCapacity::entries(16),
            ..ServeConfig::default()
        };

        let service = AnalysisService::new(&config).unwrap();
        let cold = service.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&cold), ServeSource::Cold);
        let warm = service.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&warm), ServeSource::CacheHit);
        let (cold_a, warm_a) = match (&cold, &warm) {
            (Reply::Analyze(c), Reply::Analyze(w)) => (c, w),
            other => panic!("{other:?}"),
        };
        assert!(Arc::ptr_eq(&cold_a.result, &warm_a.result));
        assert!(!service.shutdown_requested());
        assert!(matches!(service.handle(Request::Shutdown), Reply::Shutdown));
        assert!(service.shutdown_requested());
        drop(service);

        // Restart: fresh cache, same store directory.
        let restarted = AnalysisService::new(&config).unwrap();
        let from_store = restarted.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&from_store), ServeSource::StoreHit);
        match (&cold, &from_store) {
            (Reply::Analyze(c), Reply::Analyze(s)) => {
                assert_eq!(*c.result, *s.result, "persisted answer must equal cold");
            }
            other => panic!("{other:?}"),
        }
        // And the promotion means the next one is a cache hit.
        assert_eq!(
            reply_source(&restarted.handle(analyze_req(elf))),
            ServeSource::CacheHit
        );
        let stats = restarted.stats();
        assert_eq!(stats.requests.store_hits, 1);
        assert_eq!(stats.requests.cold, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_store_entry_is_recomputed_and_overwritten() {
        let dir = scratch_dir("heal");
        let case = synthesize(&SynthConfig::small(62));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            cache_capacity: CacheCapacity::UNBOUNDED,
            ..ServeConfig::default()
        };
        let service = AnalysisService::new(&config).unwrap();
        let cold = service.handle(analyze_req(elf.clone()));

        // Corrupt the single store file in place — *after* open, so the
        // recovery sweep has not seen it.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "fres"))
            .expect("one persisted entry");
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&entry, &bytes).unwrap();

        // Restart: the startup recovery sweep quarantines the corrupt
        // entry, the request recomputes cold, and the store heals —
        // the entry is never misread.
        let healed = AnalysisService::new(&config).unwrap();
        let recomputed = healed.handle(analyze_req(elf.clone()));
        assert_eq!(reply_source(&recomputed), ServeSource::Cold);
        match (&cold, &recomputed) {
            (Reply::Analyze(c), Reply::Analyze(r)) => assert_eq!(*c.result, *r.result),
            other => panic!("{other:?}"),
        }
        let stats = healed.stats();
        assert_eq!(
            stats.store.unwrap().quarantined,
            1,
            "the sweep quarantined the corrupt entry"
        );

        // The overwrite healed the store: one more restart hits it.
        let third = AnalysisService::new(&config).unwrap();
        assert_eq!(
            reply_source(&third.handle(analyze_req(elf))),
            ServeSource::StoreHit
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_answers_warm_only_and_telemetry_streams() {
        let case = synthesize(&SynthConfig::small(63));
        let elf = write_elf(&case.binary);
        let service = AnalysisService::new(&ServeConfig::default()).unwrap();

        // Telemetry sink capturing into a shared buffer.
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let captured = Arc::new(Mutex::new(Vec::new()));
        service
            .telemetry()
            .subscribe(Box::new(Sink(captured.clone())));

        let fp = {
            let image = ElfImage::parse(elf.clone()).unwrap();
            image_fingerprint(&image)
        };
        let miss = service.handle(Request::Query {
            fingerprint: fp,
            pipeline_id: Pipeline::fetch().id(),
        });
        match miss {
            Reply::Error { code, .. } => {
                assert_eq!(code, ErrorCode::NotFound, "query never computes")
            }
            other => panic!("{other:?}"),
        }

        let cold = service.handle(analyze_req(elf));
        assert_eq!(reply_source(&cold), ServeSource::Cold);
        let hit = service.handle(Request::Query {
            fingerprint: fp,
            pipeline_id: Pipeline::fetch().id(),
        });
        assert_eq!(reply_source(&hit), ServeSource::CacheHit);

        let text = String::from_utf8(captured.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Two answered requests × (1 request event + 4 layer events).
        assert_eq!(lines.len(), 10, "{text}");
        assert!(lines[0].contains("\"event\":\"request\""));
        assert!(lines[0].contains("\"source\":\"cold\""));
        assert!(lines[1].contains("\"event\":\"layer\""));
        assert!(lines[1].contains("\"layer\":\"FDE\""));
        assert!(lines[5].contains("\"source\":\"cache\""));
        let stats = service.stats();
        assert_eq!(stats.requests.query, 2);
        assert_eq!(stats.requests.analyze, 1);
        assert!(stats.store.is_none());
    }

    #[test]
    fn concurrent_analyzes_coalesce_to_exactly_one_cold_compute() {
        let case = synthesize(&SynthConfig::small(64));
        let elf = write_elf(&case.binary);
        let service = AnalysisService::new(&ServeConfig::default()).unwrap();

        // The serial reference answer, from an independent service.
        let reference = AnalysisService::new(&ServeConfig::default()).unwrap();
        let serial = match reference.handle(analyze_req(elf.clone())) {
            Reply::Analyze(a) => crate::protocol::result_json(&a.result).to_string(),
            other => panic!("{other:?}"),
        };

        const CALLERS: usize = 8;
        let barrier = std::sync::Barrier::new(CALLERS);
        let replies: Vec<Reply> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    let service = &service;
                    let barrier = &barrier;
                    let elf = elf.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        service.handle(analyze_req(elf))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Exactly one cold compute; every reply byte-identical to the
        // serial answer; every source a known warm/cold token.
        let stats = service.stats();
        assert_eq!(stats.requests.cold, 1, "exactly one cold compute");
        assert_eq!(stats.requests.analyze, CALLERS as u64);
        for reply in &replies {
            let a = match reply {
                Reply::Analyze(a) => a,
                other => panic!("{other:?}"),
            };
            assert_eq!(
                crate::protocol::result_json(&a.result).to_string(),
                serial,
                "coalesced reply must be byte-identical to the serial answer"
            );
            assert!(matches!(
                a.source,
                ServeSource::Cold | ServeSource::Coalesced | ServeSource::CacheHit
            ));
        }
        let cold_replies = replies
            .iter()
            .filter(|r| reply_source(r) == ServeSource::Cold)
            .count();
        assert_eq!(cold_replies, 1);
    }

    fn result_json_of(reply: &Reply) -> String {
        match reply {
            Reply::Analyze(a) => crate::protocol::result_json(&a.result).to_string(),
            other => panic!("expected analyze reply, got {other:?}"),
        }
    }

    #[test]
    fn reanalyze_serves_patched_binaries_from_the_delta_path() {
        use fetch_synth::{patch_function, PatchKind};
        let dir = scratch_dir("delta");
        let case = synthesize(&SynthConfig::small(11));
        let neutral = patch_function(&case, 7, PatchKind::Neutral).expect("a neutral patch site");
        let behavioral =
            patch_function(&case, 9, PatchKind::Behavioral).expect("a behavioral patch site");
        let elf_v1 = write_elf(&case.binary);
        let elf_v2 = write_elf(&neutral.binary);
        let elf_v2b = write_elf(&behavioral.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        // Version 1 lands cold (digest persisted alongside the result).
        let service = AnalysisService::new(&config).unwrap();
        let prev_fp = match service.handle(analyze_req(elf_v1)) {
            Reply::Analyze(a) => a.fingerprint,
            other => panic!("{other:?}"),
        };
        drop(service);

        // Cold reference answers for both new versions, from an
        // independent store-less service.
        let reference = AnalysisService::new(&ServeConfig::default()).unwrap();
        let ref_v2 = result_json_of(&reference.handle(analyze_req(elf_v2.clone())));
        let ref_v2b = result_json_of(&reference.handle(analyze_req(elf_v2b.clone())));

        // Restart (fresh cache): the predecessor — digest included —
        // comes out of the store, and the neutral patch is answered
        // verbatim from the delta path.
        let restarted = AnalysisService::new(&config).unwrap();
        let reanalyze = |elf: Vec<u8>| {
            restarted.handle(Request::Reanalyze {
                prev_fingerprint: prev_fp,
                input: AnalyzeInput::Bytes(elf),
                pipeline: Pipeline::fetch(),
            })
        };
        let delta = reanalyze(elf_v2);
        assert_eq!(reply_source(&delta), ServeSource::Delta);
        assert_eq!(
            result_json_of(&delta),
            ref_v2,
            "a delta answer must be byte-identical to the cold answer"
        );
        let stats = restarted.stats();
        assert_eq!(stats.requests.reanalyze, 1);
        assert_eq!(stats.delta.delta_hits, 1);
        assert!(stats.delta.sections_reused > 0);
        assert_eq!(stats.requests.cold, 0, "no pipeline ran");

        // A behavioral patch (an immediate became a code address) is
        // not provably answer-preserving: decode-warm recompute,
        // byte-identical, counted as a cold fallback.
        let recomputed = reanalyze(elf_v2b);
        assert_eq!(reply_source(&recomputed), ServeSource::Cold);
        assert_eq!(result_json_of(&recomputed), ref_v2b);
        assert_eq!(restarted.stats().delta.fallback_cold, 1);

        // An unknown predecessor bottoms out on the ladder's cold tier.
        let other = synthesize(&SynthConfig::small(67));
        let re = restarted.handle(Request::Reanalyze {
            prev_fingerprint: 0x1234_5678,
            input: AnalyzeInput::Bytes(write_elf(&other.binary)),
            pipeline: Pipeline::fetch(),
        });
        assert_eq!(reply_source(&re), ServeSource::Cold);
        assert_eq!(restarted.stats().delta.digest_mismatch, 1);

        // Every reanalyze republished under the new fingerprint: a
        // plain resubmission of the neutral patch is now a cache hit.
        let again = reanalyze(write_elf(&neutral.binary));
        assert_eq!(reply_source(&again), ServeSource::CacheHit);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_digest_store_entries_heal_on_the_next_analyze() {
        let dir = scratch_dir("healdigest");
        let case = synthesize(&SynthConfig::small(68));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let service = AnalysisService::new(&config).unwrap();
        let fp = match service.handle(analyze_req(elf.clone())) {
            Reply::Analyze(a) => a.fingerprint,
            other => panic!("{other:?}"),
        };
        let id = Pipeline::fetch().id();

        // Strip the persisted digest, simulating an entry written
        // before digests existed.
        let store = ResultStore::open(&dir).unwrap();
        let (result, digest) = store.load_full(fp, &id).unwrap().unwrap();
        assert!(digest.is_some(), "cold analyzes persist digests");
        store.save(fp, &id, &result).unwrap();
        assert!(store.load_full(fp, &id).unwrap().unwrap().1.is_none());
        drop(store);

        // A restarted daemon's warm analyze heals the entry in place.
        let restarted = AnalysisService::new(&config).unwrap();
        assert_eq!(
            reply_source(&restarted.handle(analyze_req(elf))),
            ServeSource::StoreHit
        );
        let store = ResultStore::open(&dir).unwrap();
        assert!(
            store.load_full(fp, &id).unwrap().unwrap().1.is_some(),
            "the warm analyze re-persisted the digest"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_compute_fault_fails_one_request_not_the_group() {
        let case = synthesize(&SynthConfig::small(65));
        let elf = write_elf(&case.binary);
        let config = ServeConfig {
            faults: Arc::new(FaultPlan::parse("service.compute=io#1").unwrap()),
            ..ServeConfig::default()
        };
        let service = AnalysisService::new(&config).unwrap();

        // First analyze hits the armed fault: a structured internal
        // error, not a panic or a wrong answer.
        match service.handle(analyze_req(elf.clone())) {
            Reply::Error { code, message } => {
                assert_eq!(code, ErrorCode::Internal);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // The plan is spent: the retry computes fine.
        assert_eq!(
            reply_source(&service.handle(analyze_req(elf))),
            ServeSource::Cold
        );
        assert_eq!(service.stats().faults_injected, 1);
    }
}
