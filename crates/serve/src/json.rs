//! A minimal, dependency-free JSON value: enough for the line-delimited
//! serve protocol, nothing more.
//!
//! The build environment is offline (no serde), so the protocol layer
//! hand-rolls its wire format on this module: a [`Json`] tree with a
//! strict recursive-descent parser ([`Json::parse`]: depth-limited,
//! full string escapes incl. surrogate pairs, one value per input) and
//! a *deterministic* compact renderer (the `Display` impl) — object
//! keys are stored in a `BTreeMap`, so the same value always renders to
//! the same bytes. That determinism is load-bearing: the end-to-end
//! smoke test asserts a cache/store hit renders the byte-identical
//! `result` object a cold run rendered.
//!
//! Numbers are `f64`; values that must survive above 2^53 (content
//! fingerprints) travel as hex *strings* at the protocol layer.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (IEEE double — see the module docs for the 2^53 caveat).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-ordered, so rendering is deterministic).
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: protocol messages are flat, anything deeper is
/// hostile or broken input, and unbounded recursion is a stack risk on
/// untrusted lines.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &'static str) -> Result<T, JsonError> {
        Err(JsonError { at: self.pos, what })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err("invalid number"),
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return self.err("invalid \\u escape"),
            };
            self.pos += 1;
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                self.eat(b'u', "unpaired surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("unpaired surrogate");
                                }
                                let code =
                                    0x10000 + (((hi as u32 - 0xd800) << 10) | (lo as u32 - 0xdc00));
                                char::from_u32(code).expect("valid pair")
                            } else {
                                match char::from_u32(hi as u32) {
                                    Some(c) => c,
                                    None => return self.err("unpaired surrogate"),
                                }
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Copy the whole run of plain characters in one go —
                    // the delimiters checked below are ASCII, so the run
                    // always ends on a UTF-8 boundary. (Per-character
                    // validation here would make string parsing
                    // quadratic; multi-MiB inline payloads hit that.)
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        JsonError {
                            at: start,
                            what: "invalid UTF-8",
                        }
                    })?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

impl Json {
    /// Parses exactly one JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing garbage after value");
        }
        Ok(v)
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an integer rendered exactly (callers
    /// must stay under 2^53 — larger identifiers travel as hex strings).
    pub fn int(v: u64) -> Json {
        debug_assert!(v < (1 << 53), "integer too large for JSON number");
        Json::Num(v as f64)
    }

    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v < (1u64 << 53) as f64).then_some(v as u64)
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact, deterministic rendering (object keys in `BTreeMap`
    /// order; integral numbers without a fractional part).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 => {
                write!(f, "{}", *v as i64)
            }
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_is_deterministic() {
        let v = obj([
            ("zeta", Json::int(3)),
            (
                "alpha",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("hi\n\"x\"")]),
            ),
            ("mid", Json::Num(1.5)),
        ]);
        let text = v.to_string();
        assert_eq!(
            text, r#"{"alpha":[null,true,"hi\n\"x\""],"mid":1.5,"zeta":3}"#,
            "keys render sorted, escapes applied"
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = Json::parse(r#""aA😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("aA😀\t"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse("\"ab").is_err(), "unterminated");
    }

    #[test]
    fn rejects_garbage_and_deep_nesting() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("01e").is_err());
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&deep).is_err(), "depth limit");
        let ok = format!("{}1{}", "[".repeat(20), "]".repeat(20));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numeric_accessors_guard_precision() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }
}
