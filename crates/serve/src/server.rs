//! Transports of the daemon: a Unix-domain socket accept loop, a
//! directory-queue intake, and a stdio mode — all driving one
//! [`AnalysisService`].
//!
//! * **Socket** (`--socket <path>`): clients connect and exchange one
//!   JSON line per request/reply. A `subscribe` request hands the
//!   connection's write half to the telemetry hub; it then receives
//!   event lines until it disconnects.
//! * **Directory queue** (`--queue <dir>`): files dropped into
//!   `<dir>/in/*.json` (one request line each) are handled in filename
//!   order; the reply is written atomically to `<dir>/out/<same name>`
//!   and the input file removed. The no-socket integration path for
//!   batch producers — an intake that needs no client library at all.
//!   Producers should write-then-rename into `in/`; files that do not
//!   parse get one grace poll before being consumed with an error
//!   reply, so an in-place writer is not eaten mid-write.
//! * **Stdio** (`--stdio`): one request line per stdin line, one reply
//!   line per stdout line, until EOF or `shutdown` — the
//!   inetd/subprocess shape, and the fallback transport everywhere.
//!
//! The loop is single-threaded on purpose: requests are handled in
//! arrival order against one engine and one cache, so daemon behavior
//! is deterministic for a given request sequence (scale-out happens by
//! running more daemons over one shared store directory — entries are
//! written atomically and are content-addressed, so writers never
//! conflict).

use crate::protocol::{parse_request, Reply, Request};
use crate::service::AnalysisService;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Transport configuration of [`serve`].
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// Unix-domain socket path to listen on.
    pub socket: Option<PathBuf>,
    /// Directory-queue root (`in/` and `out/` are created beneath it).
    pub queue: Option<PathBuf>,
    /// Idle poll interval (default 20 ms).
    pub poll: Option<Duration>,
}

/// What a finished [`serve`] loop handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Socket connections accepted.
    pub connections: u64,
    /// Queue files processed.
    pub queue_files: u64,
}

/// Runs the daemon loop over the configured transports until a
/// `shutdown` request arrives. At least one of `socket`/`queue` must be
/// configured (use [`serve_io`] for the stdio shape).
pub fn serve(service: &mut AnalysisService, opts: &ServerOptions) -> io::Result<ServeSummary> {
    if opts.socket.is_none() && opts.queue.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs a socket path or a queue directory",
        ));
    }
    let poll = opts.poll.unwrap_or(Duration::from_millis(20));
    let mut summary = ServeSummary::default();
    // Unparseable queue files seen once, awaiting their grace poll.
    let mut deferred = std::collections::HashSet::new();

    #[cfg(unix)]
    let listener = match &opts.socket {
        Some(path) => {
            // A stale socket file from a dead daemon would fail bind.
            let _ = fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    #[cfg(not(unix))]
    if opts.socket.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "socket transport requires Unix-domain sockets; use --queue or --stdio",
        ));
    }

    if let Some(queue) = &opts.queue {
        fs::create_dir_all(queue.join("in"))?;
        fs::create_dir_all(queue.join("out"))?;
    }

    while !service.shutdown_requested() {
        let mut progress = false;
        #[cfg(unix)]
        if let Some(listener) = &listener {
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        summary.connections += 1;
                        progress = true;
                        if let Err(e) = handle_connection(service, stream) {
                            eprintln!("fetch-serve: connection error: {e}");
                        }
                        if service.shutdown_requested() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
        }
        if service.shutdown_requested() {
            break;
        }
        if let Some(queue) = &opts.queue {
            let handled = poll_queue(service, queue, &mut deferred)?;
            summary.queue_files += handled;
            progress |= handled > 0;
        }
        if !progress && !service.shutdown_requested() {
            std::thread::sleep(poll);
        }
    }

    #[cfg(unix)]
    if let Some(path) = &opts.socket {
        let _ = fs::remove_file(path);
    }
    Ok(summary)
}

/// How long one connection may sit idle (or one write may stall)
/// before the daemon treats it as gone. The loop is single-threaded,
/// so an unbounded read or write on one connection would starve every
/// other transport — including `shutdown`.
#[cfg(unix)]
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Handles one socket connection: request lines in, reply lines out,
/// until EOF, timeout, `shutdown`, or a `subscribe` (which parks the
/// write half on the telemetry hub and stops reading).
#[cfg(unix)]
fn handle_connection(
    service: &mut AnalysisService,
    stream: std::os::unix::net::UnixStream,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // A silent or stalled client is disconnected, not waited on.
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            // Timed out mid-silence: drop the connection.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(Request::Subscribe) => {
                write_line(&mut writer, &Reply::Subscribed.to_line())?;
                // The write timeout stays armed on the parked half: a
                // subscriber that stops reading makes broadcast() error
                // out and be dropped, instead of wedging the daemon on
                // a full socket buffer.
                service.telemetry().subscribe(Box::new(writer));
                return Ok(());
            }
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown);
                let reply = service.handle(request);
                write_line(&mut writer, &reply.to_line())?;
                if shutdown {
                    return Ok(());
                }
            }
            Err(message) => write_line(&mut writer, &Reply::Error(message).to_line())?,
        }
    }
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Processes every pending `<queue>/in/*.json` file in filename order;
/// returns how many were handled.
///
/// Producers should write-then-rename into `in/`; as a safety net for
/// producers that write in place, a file whose content does not parse
/// is left untouched for one extra poll (`deferred`) before being
/// consumed with an error reply — a half-written file gets one poll
/// interval to finish instead of being eaten mid-write.
fn poll_queue(
    service: &mut AnalysisService,
    queue: &Path,
    deferred: &mut std::collections::HashSet<PathBuf>,
) -> io::Result<u64> {
    let in_dir = queue.join("in");
    let out_dir = queue.join("out");
    let mut pending: Vec<PathBuf> = fs::read_dir(&in_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    pending.sort();
    let mut handled = 0u64;
    for path in pending {
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            // The producer may still be writing; retry next poll.
            Err(_) => continue,
        };
        let request_line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
        let parsed = parse_request(request_line);
        if parsed.is_err() && deferred.insert(path.clone()) {
            // First sighting of an unparseable file: grace poll.
            continue;
        }
        deferred.remove(&path);
        let reply = match parsed {
            Ok(Request::Subscribe) => {
                Reply::Error("subscribe requires a stream transport (socket or stdio)".into())
            }
            Ok(request) => service.handle(request),
            Err(message) => Reply::Error(message),
        };
        let name = path.file_name().expect("queue file has a name");
        let out_path = out_dir.join(name);
        let tmp = out_path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, format!("{}\n", reply.to_line()))?;
        fs::rename(&tmp, &out_path)?;
        fs::remove_file(&path)?;
        handled += 1;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(handled)
}

/// The stdio transport: request lines on `input`, reply lines on
/// `output`, until EOF or `shutdown`. `subscribe` turns the remainder
/// of `output` into the telemetry stream (replies and events share
/// stdout; subscribe last, or use a socket, to separate them).
pub fn serve_io(
    service: &mut AnalysisService,
    input: impl BufRead,
    output: &mut (impl Write + Send + Clone + 'static),
) -> io::Result<u64> {
    let mut handled = 0u64;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        handled += 1;
        match parse_request(&line) {
            Ok(Request::Subscribe) => {
                write_line(output, &Reply::Subscribed.to_line())?;
                service.telemetry().subscribe(Box::new(output.clone()));
            }
            Ok(request) => {
                let reply = service.handle(request);
                write_line(output, &reply.to_line())?;
                if service.shutdown_requested() {
                    break;
                }
            }
            Err(message) => write_line(output, &Reply::Error(message).to_line())?,
        }
    }
    Ok(handled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use fetch_binary::write_elf;
    use fetch_core::CacheCapacity;
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-server-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A cloneable writer over a shared buffer, standing in for stdout.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn stdio_transport_serves_and_shuts_down() {
        let case = synthesize(&SynthConfig::small(71));
        let elf_hex = crate::protocol::encode_hex(&write_elf(&case.binary));
        let script = format!(
            "{}\n\n{}\n{{\"cmd\":\"stats\"}}\nnot json\n{{\"cmd\":\"shutdown\"}}\n{}\n",
            format_args!("{{\"cmd\":\"analyze\",\"bytes_hex\":\"{elf_hex}\"}}"),
            format_args!("{{\"cmd\":\"analyze\",\"bytes_hex\":\"{elf_hex}\"}}"),
            "{\"cmd\":\"stats\"}",
        );
        let mut service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let mut out = SharedBuf::default();
        let handled = serve_io(&mut service, script.as_bytes(), &mut out).unwrap();
        assert_eq!(handled, 5, "blank skipped, post-shutdown line unread");
        let text = out.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"source\":\"cold\""));
        assert!(lines[1].contains("\"source\":\"cache\""));
        assert!(lines[2].contains("\"cache\":{"));
        assert!(lines[3].contains("\"ok\":false"));
        assert!(lines[4].contains("\"shutdown\":true"));
        assert!(service.shutdown_requested());
    }

    #[test]
    fn queue_grace_polls_unparseable_files() {
        let dir = scratch_dir("grace");
        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        let mut service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let mut deferred = std::collections::HashSet::new();

        // A half-written file is deferred on first sight...
        let partial = queue.join("in/00-req.json");
        fs::write(&partial, "{\"cmd\":\"ana").unwrap();
        assert_eq!(poll_queue(&mut service, &queue, &mut deferred).unwrap(), 0);
        assert!(partial.exists(), "mid-write file must not be consumed");

        // ...and handled normally once the producer finishes it.
        fs::write(&partial, "{\"cmd\":\"stats\"}\n").unwrap();
        assert_eq!(poll_queue(&mut service, &queue, &mut deferred).unwrap(), 1);
        assert!(!partial.exists());
        assert!(fs::read_to_string(queue.join("out/00-req.json"))
            .unwrap()
            .contains("\"cache\":{"));

        // A file that stays garbage is consumed with an error reply on
        // its second poll, not retried forever.
        let garbage = queue.join("in/01-bad.json");
        fs::write(&garbage, "not json at all").unwrap();
        assert_eq!(poll_queue(&mut service, &queue, &mut deferred).unwrap(), 0);
        assert_eq!(poll_queue(&mut service, &queue, &mut deferred).unwrap(), 1);
        assert!(!garbage.exists());
        assert!(fs::read_to_string(queue.join("out/01-bad.json"))
            .unwrap()
            .contains("\"ok\":false"));
        assert!(deferred.is_empty(), "consumed files leave the grace set");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queue_transport_round_trips_files() {
        let dir = scratch_dir("queue");
        let case = synthesize(&SynthConfig::small(72));
        let elf = write_elf(&case.binary);
        let elf_path = dir.join("sample.elf");
        fs::write(&elf_path, &elf).unwrap();

        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        let analyze = format!(
            "{{\"cmd\":\"analyze\",\"path\":\"{}\"}}\n",
            elf_path.display()
        );
        fs::write(queue.join("in/00-a.json"), &analyze).unwrap();
        fs::write(queue.join("in/01-b.json"), &analyze).unwrap();
        fs::write(queue.join("in/02-sub.json"), "{\"cmd\":\"subscribe\"}\n").unwrap();
        fs::write(queue.join("in/03-stop.json"), "{\"cmd\":\"shutdown\"}\n").unwrap();
        fs::write(queue.join("in/ignored.txt"), "not a queue file").unwrap();

        let mut service = AnalysisService::new(&ServeConfig {
            store_dir: Some(dir.join("store")),
            cache_capacity: CacheCapacity::entries(8),
        })
        .unwrap();
        let summary = serve(
            &mut service,
            &ServerOptions {
                queue: Some(queue.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.queue_files, 4);

        let read = |name: &str| fs::read_to_string(queue.join("out").join(name)).unwrap();
        assert!(read("00-a.json").contains("\"source\":\"cold\""));
        assert!(read("01-b.json").contains("\"source\":\"cache\""));
        assert!(read("02-sub.json").contains("stream transport"));
        assert!(read("03-stop.json").contains("\"shutdown\":true"));
        assert!(
            !queue.join("in/00-a.json").exists(),
            "handled inputs are consumed"
        );
        assert!(queue.join("in/ignored.txt").exists(), "non-.json untouched");
        fs::remove_dir_all(&dir).unwrap();
    }
}
