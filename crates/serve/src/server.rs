//! Transports of the daemon: a Unix-domain socket accept loop feeding a
//! bounded worker pool, a directory-queue intake, and a stdio mode —
//! all driving one shared [`AnalysisService`].
//!
//! * **Socket** (`--socket <path>`): clients connect and exchange one
//!   JSON line per request/reply. Accepted connections land on a
//!   bounded pending queue ([`ServerOptions::queue_depth`]) drained by
//!   [`ServerOptions::jobs`] worker threads; when the queue is full the
//!   daemon *sheds* the connection with a structured `busy` error
//!   instead of queueing unbounded work. Every connection carries
//!   read/write deadlines ([`ServerOptions::io_timeout`]), so a silent
//!   or stalled client can never hold a worker forever. A `subscribe`
//!   request hands the connection's write half to the telemetry hub; it
//!   then receives event lines until it disconnects.
//! * **Directory queue** (`--queue <dir>`): files dropped into
//!   `<dir>/in/*.json` (one request line each) are handled in filename
//!   order on the accept thread (keeping queue semantics deterministic
//!   under any worker count); the reply is written atomically to
//!   `<dir>/out/<same name>` and the input file removed — input removal
//!   happens *after* the reply is durably in `out/`, so a crash between
//!   the two re-processes the request instead of losing it. Producers
//!   should write-then-rename into `in/`; a file that does not parse
//!   gets one grace poll (an in-place writer is not eaten mid-write),
//!   and is then *quarantined*: moved to `<dir>/failed/<same name>`
//!   with a structured error reply in `out/` — never deleted silently,
//!   never retried forever.
//! * **Stdio** (`--stdio`): one request line per stdin line, one reply
//!   line per stdout line, until EOF or `shutdown` — the
//!   inetd/subprocess shape, and the fallback transport everywhere.
//!
//! Request lines on every transport are read through a hard cap
//! ([`MAX_LINE_BYTES`]): an over-long line is answered with a `too_large`
//! error and the connection dropped (the remainder of the line cannot be
//! resynchronized), so no client can balloon daemon memory.
//!
//! Concurrency never changes answers: workers share the service's
//! coalescing cache, so N concurrent requests for one uncached
//! fingerprint still perform exactly one cold compute, and every reply
//! body is byte-identical to the serial answer. Scale-out beyond one
//! process happens by running more daemons over one shared store
//! directory — entries are written atomically and content-addressed, so
//! writers never conflict.

use crate::fault::FaultPlan;
use crate::protocol::{parse_request, ErrorCode, Reply, Request, MAX_LINE_BYTES};
use crate::service::AnalysisService;
use fetch_obs::{logmsg, LogLevel};
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Default worker-pool size for the socket transport.
pub const DEFAULT_JOBS: usize = 4;
/// Default bound of the pending-connection queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;
/// Default per-connection read/write deadline.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Transport configuration of [`serve`].
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// Unix-domain socket path to listen on.
    pub socket: Option<PathBuf>,
    /// Directory-queue root (`in/`, `out/` and `failed/` are created
    /// beneath it).
    pub queue: Option<PathBuf>,
    /// Idle poll interval (default 20 ms).
    pub poll: Option<Duration>,
    /// Socket worker threads (default [`DEFAULT_JOBS`], min 1).
    pub jobs: Option<usize>,
    /// Pending-connection bound before shedding (default
    /// [`DEFAULT_QUEUE_DEPTH`], min 1).
    pub queue_depth: Option<usize>,
    /// Per-connection read/write deadline (default
    /// [`DEFAULT_IO_TIMEOUT`]). A connection idle past the deadline is
    /// dropped; a write stalled past it errors out.
    pub io_timeout: Option<Duration>,
}

/// What a finished [`serve`] loop handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Socket connections accepted and handed to workers.
    pub connections: u64,
    /// Connections shed with a `busy` error (pending queue full).
    pub shed: u64,
    /// Queue files processed (replies written).
    pub queue_files: u64,
    /// Queue files quarantined to `failed/`.
    pub queue_quarantined: u64,
}

/// The bounded hand-off between the accept loop and the worker pool.
#[cfg(unix)]
struct ConnQueue {
    /// Pending connections with their enqueue instants — popped age
    /// feeds the `fetch_queue_wait_us` histogram.
    state: std::sync::Mutex<(
        std::collections::VecDeque<(Instant, std::os::unix::net::UnixStream)>,
        bool,
    )>,
    ready: std::sync::Condvar,
    depth: usize,
}

#[cfg(unix)]
impl ConnQueue {
    fn new(depth: usize) -> ConnQueue {
        ConnQueue {
            state: std::sync::Mutex::new((std::collections::VecDeque::new(), false)),
            ready: std::sync::Condvar::new(),
            depth,
        }
    }

    /// Enqueues a connection, or returns it when the queue is full (the
    /// caller sheds it with a `busy` error).
    fn try_push(
        &self,
        stream: std::os::unix::net::UnixStream,
    ) -> Result<(), std::os::unix::net::UnixStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        if state.0.len() >= self.depth {
            return Err(stream);
        }
        state.0.push_back((Instant::now(), stream));
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection (with its enqueue instant);
    /// `None` once closed and drained.
    fn pop(&self) -> Option<(Instant, std::os::unix::net::UnixStream)> {
        let mut state = self.state.lock().expect("conn queue lock");
        loop {
            if let Some(entry) = state.0.pop_front() {
                return Some(entry);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("conn queue lock");
        }
    }

    /// Closes the queue: workers drain what is pending, then exit.
    fn close(&self) {
        self.state.lock().expect("conn queue lock").1 = true;
        self.ready.notify_all();
    }
}

/// Runs the daemon loop over the configured transports until a
/// `shutdown` request arrives. At least one of `socket`/`queue` must be
/// configured (use [`serve_io`] for the stdio shape). Takes `&self` on
/// the service: the worker pool shares it.
pub fn serve(service: &AnalysisService, opts: &ServerOptions) -> io::Result<ServeSummary> {
    if opts.socket.is_none() && opts.queue.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs a socket path or a queue directory",
        ));
    }
    let poll = opts.poll.unwrap_or(Duration::from_millis(20));
    let io_timeout = opts.io_timeout.unwrap_or(DEFAULT_IO_TIMEOUT);

    #[cfg(unix)]
    let listener = match &opts.socket {
        Some(path) => {
            // A stale socket file from a dead daemon would fail bind.
            let _ = fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    #[cfg(not(unix))]
    if opts.socket.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "socket transport requires Unix-domain sockets; use --queue or --stdio",
        ));
    }

    if let Some(queue) = &opts.queue {
        fs::create_dir_all(queue.join("in"))?;
        fs::create_dir_all(queue.join("out"))?;
        fs::create_dir_all(queue.join("failed"))?;
    }

    let mut summary = ServeSummary::default();
    // Unparseable queue files seen once, awaiting their grace poll.
    let mut deferred = std::collections::HashSet::new();

    #[cfg(unix)]
    {
        let jobs = opts.jobs.unwrap_or(DEFAULT_JOBS).max(1);
        let depth = opts.queue_depth.unwrap_or(DEFAULT_QUEUE_DEPTH).max(1);
        let pending = ConnQueue::new(depth);
        let result = std::thread::scope(|scope| -> io::Result<()> {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    let pending = &pending;
                    scope.spawn(move || {
                        while let Some((queued_at, stream)) = pending.pop() {
                            service
                                .obs()
                                .queue_wait_us
                                .record(queued_at.elapsed().as_micros() as u64);
                            if let Err(e) = handle_connection(service, stream, io_timeout) {
                                logmsg!(LogLevel::Warn, 0, "fetch-serve: connection error: {e}");
                            }
                        }
                    })
                })
                .collect();
            let run = (|| -> io::Result<()> {
                while !service.shutdown_requested() {
                    let mut progress = false;
                    if let Some(listener) = &listener {
                        loop {
                            match listener.accept() {
                                Ok((stream, _addr)) => {
                                    progress = true;
                                    match pending.try_push(stream) {
                                        Ok(()) => summary.connections += 1,
                                        Err(stream) => {
                                            summary.shed += 1;
                                            let req_id = service.next_req_id();
                                            service.note_shed_busy();
                                            shed_connection(stream, io_timeout, req_id);
                                        }
                                    }
                                    if service.shutdown_requested() {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    if service.shutdown_requested() {
                        break;
                    }
                    if let Some(queue) = &opts.queue {
                        let (handled, quarantined) = poll_queue(service, queue, &mut deferred)?;
                        summary.queue_files += handled;
                        summary.queue_quarantined += quarantined;
                        progress |= handled + quarantined > 0;
                    }
                    if !progress && !service.shutdown_requested() {
                        std::thread::sleep(poll);
                    }
                }
                Ok(())
            })();
            // Shutdown (or an accept error): drain the pool either way.
            pending.close();
            for worker in workers {
                worker.join().expect("serve worker panicked");
            }
            run
        });
        result?;
    }
    #[cfg(not(unix))]
    {
        while !service.shutdown_requested() {
            let mut progress = false;
            if let Some(queue) = &opts.queue {
                let (handled, quarantined) = poll_queue(service, queue, &mut deferred)?;
                summary.queue_files += handled;
                summary.queue_quarantined += quarantined;
                progress |= handled + quarantined > 0;
            }
            if !progress && !service.shutdown_requested() {
                std::thread::sleep(poll);
            }
        }
    }

    #[cfg(unix)]
    if let Some(path) = &opts.socket {
        let _ = fs::remove_file(path);
    }
    Ok(summary)
}

/// Answers a shed connection with a structured `busy` error, best
/// effort under a short deadline — load shedding must never block the
/// accept loop.
#[cfg(unix)]
fn shed_connection(stream: std::os::unix::net::UnixStream, io_timeout: Duration, req_id: u64) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(io_timeout.min(Duration::from_millis(250))));
    let mut stream = stream;
    let reply = Reply::error(
        ErrorCode::Busy,
        "daemon at capacity (pending-connection queue full); retry later",
    );
    let _ = write_line(&mut stream, &reply.to_line_with(req_id));
}

/// Reads one request line through the [`MAX_LINE_BYTES`] cap.
///
/// `Ok(Some(line))` is a complete in-cap line; `Ok(None)` is EOF;
/// `Err` with kind [`io::ErrorKind::InvalidData`] marks an over-cap
/// line (the caller replies `too_large` and drops the connection — the
/// stream cannot be resynchronized mid-line).
fn read_capped_line(reader: &mut impl BufRead, line: &mut String) -> io::Result<Option<()>> {
    line.clear();
    let mut limited = reader.take((MAX_LINE_BYTES + 1) as u64);
    let n = limited.read_line(line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    Ok(Some(()))
}

/// Handles one socket connection: request lines in, reply lines out,
/// until EOF, deadline, `shutdown`, or a `subscribe` (which parks the
/// write half on the telemetry hub and stops reading).
#[cfg(unix)]
fn handle_connection(
    service: &AnalysisService,
    stream: std::os::unix::net::UnixStream,
    io_timeout: Duration,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // A silent or stalled client is disconnected, not waited on.
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if service.faults().fire(FaultPlan::CONN_READ).is_some() {
            // An injected transport failure: the connection is dropped
            // (the client observes EOF / connection reset — a visible
            // failure, never a wrong or truncated reply).
            return Err(FaultPlan::injected_error(FaultPlan::CONN_READ));
        }
        match read_capped_line(&mut reader, &mut line) {
            Ok(None) => return Ok(()), // EOF
            Ok(Some(())) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                service.note_rejected_too_large();
                let reply = Reply::error(ErrorCode::TooLarge, e.to_string());
                let _ = write_line(&mut writer, &reply.to_line_with(service.next_req_id()));
                return Ok(());
            }
            // Timed out mid-silence: drop the connection.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let req_id = service.next_req_id();
        match parse_request(&line) {
            Ok(Request::Subscribe) => {
                write_checked(
                    service,
                    &mut writer,
                    &Reply::Subscribed.to_line_with(req_id),
                )?;
                // The write timeout stays armed on the parked half: a
                // subscriber that stops reading makes broadcast() error
                // out and be dropped, instead of wedging the daemon on
                // a full socket buffer.
                service.telemetry().subscribe(Box::new(writer));
                return Ok(());
            }
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown);
                let reply = service.handle_with_id(req_id, request);
                write_checked(service, &mut writer, &reply.to_line_with(req_id))?;
                if shutdown || service.shutdown_requested() {
                    return Ok(());
                }
            }
            Err(e) => {
                if e.code == ErrorCode::TooLarge {
                    service.note_rejected_too_large();
                }
                write_checked(service, &mut writer, &Reply::from(e).to_line_with(req_id))?
            }
        }
    }
}

/// [`write_line`] behind the `conn.write` fault site, timed into the
/// `fetch_reply_write_us` histogram.
#[cfg(unix)]
fn write_checked(service: &AnalysisService, writer: &mut impl Write, line: &str) -> io::Result<()> {
    if service.faults().fire(FaultPlan::CONN_WRITE).is_some() {
        return Err(FaultPlan::injected_error(FaultPlan::CONN_WRITE));
    }
    let t0 = Instant::now();
    let out = write_line(writer, line);
    service
        .obs()
        .reply_write_us
        .record(t0.elapsed().as_micros() as u64);
    out
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Processes every pending `<queue>/in/*.json` file in filename order;
/// returns `(handled, quarantined)` counts.
///
/// Producers should write-then-rename into `in/`; as a safety net for
/// producers that write in place, a file whose content does not parse
/// (or cannot be read) is left untouched for one extra poll
/// (`deferred`) before being *quarantined*: moved to
/// `<queue>/failed/<name>` with a structured error reply in `out/` —
/// a half-written file gets one poll interval to finish, and a
/// genuinely bad file is preserved for inspection instead of being
/// deleted silently or retried forever.
///
/// Reply files are written temp-then-rename, and the input is removed
/// only *after* the reply lands — a reply-write failure (injected or
/// real) leaves the input in place to be retried on the next poll.
fn poll_queue(
    service: &AnalysisService,
    queue: &Path,
    deferred: &mut std::collections::HashSet<PathBuf>,
) -> io::Result<(u64, u64)> {
    let in_dir = queue.join("in");
    let out_dir = queue.join("out");
    let failed_dir = queue.join("failed");
    let mut pending: Vec<PathBuf> = fs::read_dir(&in_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    pending.sort();
    let mut handled = 0u64;
    let mut quarantined = 0u64;
    for path in pending {
        let parsed = match fs::read_to_string(&path) {
            Ok(text) => {
                let request_line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
                parse_request(request_line)
            }
            Err(e) => Err(crate::protocol::RequestError::bad(format!(
                "unreadable queue file: {e}"
            ))),
        };
        let name = path.file_name().expect("queue file has a name").to_owned();
        let req_id = service.next_req_id();
        match parsed {
            Ok(request) => {
                deferred.remove(&path);
                let reply = match request {
                    Request::Subscribe => Reply::error(
                        ErrorCode::BadRequest,
                        "subscribe requires a stream transport (socket or stdio)",
                    ),
                    request => service.handle_with_id(req_id, request),
                };
                match write_queue_reply(service, &out_dir, &name, &reply, req_id) {
                    Ok(()) => {
                        fs::remove_file(&path)?;
                        handled += 1;
                    }
                    Err(e) => {
                        // Leave the input: the next poll retries it
                        // (handling is idempotent through the cache).
                        logmsg!(
                            LogLevel::Warn,
                            req_id,
                            "fetch-serve: failed to write reply for {}: {e}",
                            name.to_string_lossy()
                        );
                    }
                }
            }
            Err(e) => {
                if deferred.insert(path.clone()) {
                    // First sighting of a bad file: grace poll.
                    continue;
                }
                deferred.remove(&path);
                if e.code == ErrorCode::TooLarge {
                    service.note_rejected_too_large();
                }
                let reply = Reply::from(e);
                if let Err(we) = write_queue_reply(service, &out_dir, &name, &reply, req_id) {
                    logmsg!(
                        LogLevel::Warn,
                        req_id,
                        "fetch-serve: failed to write reply for {}: {we}",
                        name.to_string_lossy()
                    );
                    continue; // retried next poll
                }
                // Quarantine, never silently delete.
                let target = failed_dir.join(&name);
                if let Err(me) = fs::rename(&path, &target) {
                    logmsg!(
                        LogLevel::Warn,
                        req_id,
                        "fetch-serve: failed to quarantine {}: {me}",
                        name.to_string_lossy()
                    );
                    continue;
                }
                service.note_queue_quarantined();
                quarantined += 1;
            }
        }
        if service.shutdown_requested() {
            break;
        }
    }
    Ok((handled, quarantined))
}

/// Atomically writes one reply file, behind the `queue.reply` fault
/// site (any injected kind fails the write before the rename, so a
/// consumer can never observe a torn reply).
fn write_queue_reply(
    service: &AnalysisService,
    out_dir: &Path,
    name: &std::ffi::OsStr,
    reply: &Reply,
    req_id: u64,
) -> io::Result<()> {
    if service.faults().fire(FaultPlan::QUEUE_REPLY).is_some() {
        return Err(FaultPlan::injected_error(FaultPlan::QUEUE_REPLY));
    }
    let t0 = Instant::now();
    let out_path = out_dir.join(name);
    let tmp = out_path.with_extension(format!("tmp{}", std::process::id()));
    fs::write(&tmp, format!("{}\n", reply.to_line_with(req_id)))?;
    let out = fs::rename(&tmp, &out_path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    });
    service
        .obs()
        .reply_write_us
        .record(t0.elapsed().as_micros() as u64);
    out
}

/// The stdio transport: request lines on `input`, reply lines on
/// `output`, until EOF or `shutdown`. `subscribe` turns the remainder
/// of `output` into the telemetry stream (replies and events share
/// stdout; subscribe last, or use a socket, to separate them). Request
/// lines pass through the same [`MAX_LINE_BYTES`] cap as the socket
/// transport (an over-cap line ends the session with a `too_large`
/// error — stdin cannot be resynchronized mid-line).
pub fn serve_io(
    service: &AnalysisService,
    input: impl BufRead,
    output: &mut (impl Write + Send + Clone + 'static),
) -> io::Result<u64> {
    let mut handled = 0u64;
    let mut input = input;
    let mut line = String::new();
    loop {
        match read_capped_line(&mut input, &mut line) {
            Ok(None) => break,
            Ok(Some(())) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                service.note_rejected_too_large();
                let reply = Reply::error(ErrorCode::TooLarge, e.to_string());
                write_line(output, &reply.to_line_with(service.next_req_id()))?;
                break;
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        handled += 1;
        let req_id = service.next_req_id();
        match parse_request(&line) {
            Ok(Request::Subscribe) => {
                write_line(output, &Reply::Subscribed.to_line_with(req_id))?;
                service.telemetry().subscribe(Box::new(output.clone()));
            }
            Ok(request) => {
                let reply = service.handle_with_id(req_id, request);
                write_line(output, &reply.to_line_with(req_id))?;
                if service.shutdown_requested() {
                    break;
                }
            }
            Err(e) => {
                if e.code == ErrorCode::TooLarge {
                    service.note_rejected_too_large();
                }
                write_line(output, &Reply::from(e).to_line_with(req_id))?
            }
        }
    }
    Ok(handled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use fetch_binary::write_elf;
    use fetch_core::CacheCapacity;
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-server-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A cloneable writer over a shared buffer, standing in for stdout.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn stdio_transport_serves_and_shuts_down() {
        let case = synthesize(&SynthConfig::small(71));
        let elf_hex = crate::protocol::encode_hex(&write_elf(&case.binary));
        let script = format!(
            "{}\n\n{}\n{{\"cmd\":\"stats\"}}\nnot json\n{{\"cmd\":\"shutdown\"}}\n{}\n",
            format_args!("{{\"cmd\":\"analyze\",\"bytes_hex\":\"{elf_hex}\"}}"),
            format_args!("{{\"cmd\":\"analyze\",\"bytes_hex\":\"{elf_hex}\"}}"),
            "{\"cmd\":\"stats\"}",
        );
        let service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let mut out = SharedBuf::default();
        let handled = serve_io(&service, script.as_bytes(), &mut out).unwrap();
        assert_eq!(handled, 5, "blank skipped, post-shutdown line unread");
        let text = out.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"source\":\"cold\""));
        assert!(lines[1].contains("\"source\":\"cache\""));
        assert!(lines[2].contains("\"cache\":{"));
        assert!(lines[3].contains("\"ok\":false"));
        assert!(lines[3].contains("\"code\":\"bad_request\""));
        assert!(lines[4].contains("\"shutdown\":true"));
        assert!(service.shutdown_requested());
    }

    #[test]
    fn queue_grace_polls_then_quarantines_unparseable_files() {
        let dir = scratch_dir("grace");
        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        fs::create_dir_all(queue.join("failed")).unwrap();
        let service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let mut deferred = std::collections::HashSet::new();

        // A half-written file is deferred on first sight...
        let partial = queue.join("in/00-req.json");
        fs::write(&partial, "{\"cmd\":\"ana").unwrap();
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (0, 0));
        assert!(partial.exists(), "mid-write file must not be consumed");

        // ...and handled normally once the producer finishes it.
        fs::write(&partial, "{\"cmd\":\"stats\"}\n").unwrap();
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (1, 0));
        assert!(!partial.exists());
        assert!(fs::read_to_string(queue.join("out/00-req.json"))
            .unwrap()
            .contains("\"cache\":{"));

        // A file that stays garbage is quarantined on its second poll —
        // moved to failed/ with a structured error reply, not deleted,
        // not retried forever.
        let garbage = queue.join("in/01-bad.json");
        fs::write(&garbage, "not json at all").unwrap();
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (0, 0));
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (0, 1));
        assert!(!garbage.exists(), "quarantined out of in/");
        assert_eq!(
            fs::read_to_string(queue.join("failed/01-bad.json")).unwrap(),
            "not json at all",
            "the bad input is preserved for inspection"
        );
        let reply = fs::read_to_string(queue.join("out/01-bad.json")).unwrap();
        assert!(reply.contains("\"ok\":false"), "{reply}");
        assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
        assert!(deferred.is_empty(), "consumed files leave the grace set");
        assert_eq!(service.stats().requests.queue_quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queue_reply_fault_leaves_input_for_retry() {
        let dir = scratch_dir("qfault");
        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        fs::create_dir_all(queue.join("failed")).unwrap();
        let service = AnalysisService::new(&ServeConfig {
            faults: std::sync::Arc::new(FaultPlan::parse("queue.reply=io#1").unwrap()),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut deferred = std::collections::HashSet::new();

        let req = queue.join("in/00-stats.json");
        fs::write(&req, "{\"cmd\":\"stats\"}\n").unwrap();
        // Firing 1: the reply write fails; the input must survive.
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (0, 0));
        assert!(req.exists(), "input is kept when the reply write fails");
        assert!(!queue.join("out/00-stats.json").exists());
        // Plan spent: the retry succeeds and consumes the input.
        assert_eq!(poll_queue(&service, &queue, &mut deferred).unwrap(), (1, 0));
        assert!(!req.exists());
        assert!(queue.join("out/00-stats.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queue_transport_round_trips_files() {
        let dir = scratch_dir("queue");
        let case = synthesize(&SynthConfig::small(72));
        let elf = write_elf(&case.binary);
        let elf_path = dir.join("sample.elf");
        fs::write(&elf_path, &elf).unwrap();

        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        let analyze = format!(
            "{{\"cmd\":\"analyze\",\"path\":\"{}\"}}\n",
            elf_path.display()
        );
        fs::write(queue.join("in/00-a.json"), &analyze).unwrap();
        fs::write(queue.join("in/01-b.json"), &analyze).unwrap();
        fs::write(queue.join("in/02-sub.json"), "{\"cmd\":\"subscribe\"}\n").unwrap();
        fs::write(queue.join("in/03-stop.json"), "{\"cmd\":\"shutdown\"}\n").unwrap();
        fs::write(queue.join("in/ignored.txt"), "not a queue file").unwrap();

        let service = AnalysisService::new(&ServeConfig {
            store_dir: Some(dir.join("store")),
            cache_capacity: CacheCapacity::entries(8),
            ..ServeConfig::default()
        })
        .unwrap();
        let summary = serve(
            &service,
            &ServerOptions {
                queue: Some(queue.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.queue_files, 4);
        assert_eq!(summary.queue_quarantined, 0);

        let read = |name: &str| fs::read_to_string(queue.join("out").join(name)).unwrap();
        assert!(read("00-a.json").contains("\"source\":\"cold\""));
        assert!(read("01-b.json").contains("\"source\":\"cache\""));
        assert!(read("02-sub.json").contains("stream transport"));
        assert!(read("03-stop.json").contains("\"shutdown\":true"));
        assert!(
            !queue.join("in/00-a.json").exists(),
            "handled inputs are consumed"
        );
        assert!(queue.join("in/ignored.txt").exists(), "non-.json untouched");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queue_transport_handles_reanalyze() {
        use crate::protocol::{encode_hex, hex_u64};
        use crate::service::ServeConfig;
        use fetch_synth::{patch_function, PatchKind};

        let dir = scratch_dir("queue-delta");
        let case = synthesize(&SynthConfig::small(11));
        let patched = patch_function(&case, 7, PatchKind::Neutral).expect("a neutral patch site");

        let service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let prev_fp = match service.handle(crate::protocol::Request::Analyze {
            input: crate::protocol::AnalyzeInput::Bytes(write_elf(&case.binary)),
            pipeline: fetch_core::Pipeline::fetch(),
        }) {
            Reply::Analyze(a) => a.fingerprint,
            other => panic!("{other:?}"),
        };

        let queue = dir.join("q");
        fs::create_dir_all(queue.join("in")).unwrap();
        fs::create_dir_all(queue.join("out")).unwrap();
        let line = format!(
            "{{\"cmd\":\"reanalyze\",\"prev_fingerprint\":\"{}\",\"bytes_hex\":\"{}\"}}\n",
            hex_u64(prev_fp),
            encode_hex(&write_elf(&patched.binary)),
        );
        fs::write(queue.join("in/00-re.json"), &line).unwrap();
        fs::write(queue.join("in/01-stop.json"), "{\"cmd\":\"shutdown\"}\n").unwrap();

        let summary = serve(
            &service,
            &ServerOptions {
                queue: Some(queue.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(summary.queue_files, 2);
        let reply = fs::read_to_string(queue.join("out/00-re.json")).unwrap();
        assert!(reply.contains("\"source\":\"delta\""), "{reply}");
        assert_eq!(service.stats().delta.delta_hits, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capped_line_reader_rejects_over_limit_lines() {
        let service = AnalysisService::new(&ServeConfig::default()).unwrap();
        let mut out = SharedBuf::default();
        // One giant line, no newline within the cap.
        let giant = format!("{{\"pad\":\"{}\"}}", "y".repeat(MAX_LINE_BYTES));
        let handled = serve_io(&service, giant.as_bytes(), &mut out).unwrap();
        assert_eq!(handled, 0);
        let text = out.text();
        assert!(text.contains("\"code\":\"too_large\""), "{text}");
        assert_eq!(service.stats().requests.rejected_too_large, 1);
    }
}
