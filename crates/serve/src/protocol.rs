//! The line-delimited JSON serve protocol: one request per line in, one
//! reply per line out, plus a telemetry event stream for subscribers.
//!
//! ## Requests
//!
//! Every request is a JSON object with a `cmd` field:
//!
//! * `{"cmd":"analyze", "path":"/bin/x"}` — analyze the ELF at a path.
//!   Alternatives/extras: `"bytes_hex":"7f454c46…"` submits the image
//!   inline; `"pipeline":"FDE+Rec+Xref"` picks a strategy stack
//!   ([`Pipeline::parse`]); `"tool":"GHIDRA"` picks a Table III tool
//!   model ([`Tool::from_name`]). Default stack:
//!   [`Pipeline::fetch`].
//! * `{"cmd":"reanalyze", "prev_fingerprint":"0x1234abcd…",
//!   "path":"/bin/x"}` — analyze a *new version* of a previously-
//!   analyzed binary, reusing the previous answer wherever the digest
//!   diff proves that sound (the delta ladder, [`fetch_core::run_delta`]).
//!   Takes the same `path`/`bytes_hex`/`pipeline`/`tool` fields as
//!   `analyze`; `prev_fingerprint` names the earlier analyze reply's
//!   fingerprint. Byte-identical to a cold `analyze` of the same image;
//!   an unknown or digest-less predecessor just falls back cold.
//! * `{"cmd":"query", "fingerprint":"0x1234abcd…", "pipeline":"FDE+Rec"}`
//!   — cache/store lookup only, never computes.
//! * `{"cmd":"stats"}` — cache, store, and request counters.
//! * `{"cmd":"metrics"}` — the runtime observability registry
//!   ([`fetch_obs::Registry`]): a Prometheus-style `text` exposition
//!   plus a structured `metrics` JSON object (counters as numbers,
//!   histograms as `{count,sum,max,p50,p95,p99}`).
//! * `{"cmd":"subscribe"}` — switch this connection to the telemetry
//!   stream (one JSON event line per request and per layer).
//! * `{"cmd":"shutdown"}` — reply, then stop the daemon.
//!
//! ## Replies
//!
//! `{"ok":true, …}` or `{"ok":false,"code":"…","error":"…"}` — every
//! failure carries a machine-readable [`ErrorCode`]
//! (`bad_request` / `too_large` / `busy` / `not_found` / `internal`)
//! alongside the human-readable message, so clients can tell load
//! shedding from malformed input without string matching. Every reply
//! the daemon writes also carries a monotonic `req_id` (stamped by
//! [`Reply::to_line_with`]) which the telemetry events of the same
//! request echo, so subscribers can correlate layer events with the
//! originating request. Analysis replies carry the content fingerprint
//! (hex string — it does not fit a JSON double), the canonical pipeline
//! id, the answer `source`
//! (`"cold"` / `"cache"` / `"store"` / `"coalesced"` / `"delta"`), the
//! request wall time, and a `result` object whose rendering is
//! deterministic: a warm answer is byte-identical to the cold answer
//! that seeded it (asserted by the end-to-end smoke test). The
//! `req_id`/`wall_us` envelope fields differ per request by design —
//! byte-identity guarantees are about `result`, never the envelope.
//!
//! ## Input bounds
//!
//! A request line is capped at [`MAX_LINE_BYTES`] and an inline
//! `bytes_hex` image at [`MAX_INLINE_BYTES`] decoded bytes; an
//! over-limit request is answered with a structured `too_large` error
//! before the payload is materialized, never by an allocation or a
//! silent truncation.

use crate::json::{obj, Json};
use fetch_core::{CacheStats, DetectionResult, LayerTrace, Pipeline, Tool};
use std::path::PathBuf;
use std::sync::Arc;

/// Maximum accepted request-line length, in bytes. An inline hex image
/// doubles its byte size on the wire, so the line cap leaves headroom
/// over [`MAX_INLINE_BYTES`] for the JSON framing around it.
pub const MAX_LINE_BYTES: usize = 16 << 20;

/// Maximum accepted inline ELF image (`bytes_hex`, decoded bytes).
pub const MAX_INLINE_BYTES: usize = 4 << 20;

/// Machine-readable failure class of an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed (bad JSON, unknown command/field,
    /// unparsable pipeline, unloadable ELF).
    BadRequest,
    /// The request exceeded [`MAX_LINE_BYTES`] or [`MAX_INLINE_BYTES`].
    TooLarge,
    /// The daemon shed this request under load (its pending queue was
    /// full); retrying later is expected to succeed.
    Busy,
    /// A query for a key with no cached or stored answer.
    NotFound,
    /// A daemon-side failure (store I/O, injected faults on the answer
    /// path).
    Internal,
}

impl ErrorCode {
    /// The wire token of the `code` field.
    pub fn token(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Busy => "busy",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire token back (the client side).
    pub fn from_token(token: &str) -> Option<ErrorCode> {
        Some(match token {
            "bad_request" => ErrorCode::BadRequest,
            "too_large" => ErrorCode::TooLarge,
            "busy" => ErrorCode::Busy,
            "not_found" => ErrorCode::NotFound,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A rejected request: the structured code plus the human-readable
/// message the daemon echoes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Failure class.
    pub code: ErrorCode,
    /// What was wrong, naming the field/limit involved.
    pub message: String,
}

impl RequestError {
    /// A `bad_request` error.
    pub fn bad(message: impl Into<String>) -> RequestError {
        RequestError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }

    /// A `too_large` error.
    pub fn too_large(message: impl Into<String>) -> RequestError {
        RequestError {
            code: ErrorCode::TooLarge,
            message: message.into(),
        }
    }
}

impl From<RequestError> for Reply {
    fn from(e: RequestError) -> Reply {
        Reply::Error {
            code: e.code,
            message: e.message,
        }
    }
}

/// The binary payload of an analyze request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeInput {
    /// Read the ELF image from a filesystem path (daemon-side).
    Path(PathBuf),
    /// The raw ELF image, submitted inline.
    Bytes(Vec<u8>),
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze a binary under a pipeline (cache → store → cold).
    Analyze {
        /// Where the ELF image comes from.
        input: AnalyzeInput,
        /// The strategy stack to run.
        pipeline: Pipeline,
    },
    /// Analyze a new version of a previously-analyzed binary through
    /// the delta ladder (digest diff → verbatim reuse / warm recompute
    /// / cold fallback). Result-identical to [`Request::Analyze`].
    Reanalyze {
        /// Fingerprint of the previous version (from its analyze
        /// reply) — the entry to delta against.
        prev_fingerprint: u64,
        /// Where the new ELF image comes from.
        input: AnalyzeInput,
        /// The strategy stack to run.
        pipeline: Pipeline,
    },
    /// Look up a previously-computed answer; never computes.
    Query {
        /// Content fingerprint (from an earlier analyze reply).
        fingerprint: u64,
        /// Canonical pipeline id ([`Pipeline::id`]).
        pipeline_id: String,
    },
    /// Report cache/store/request statistics.
    Stats,
    /// Report the runtime observability registry (text exposition +
    /// JSON form).
    Metrics,
    /// Switch this connection to the telemetry event stream.
    Subscribe,
    /// Stop the daemon after replying.
    Shutdown,
}

/// Where an analysis answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Computed on this request.
    Cold,
    /// Served from the in-memory bounded cache.
    CacheHit,
    /// Served from the persistent result store (and promoted into the
    /// cache).
    StoreHit,
    /// This request joined an in-flight compute for the same key and
    /// received the leader's answer (exactly one cold compute ran for
    /// the whole group).
    Coalesced,
    /// A `reanalyze` answered from the delta ladder's reuse tiers: the
    /// previous version's result was returned verbatim because the
    /// digest diff proved it sound.
    Delta,
}

impl ServeSource {
    /// The wire token (`"cold"` / `"cache"` / `"store"` /
    /// `"coalesced"` / `"delta"`).
    pub fn token(self) -> &'static str {
        match self {
            ServeSource::Cold => "cold",
            ServeSource::CacheHit => "cache",
            ServeSource::StoreHit => "store",
            ServeSource::Coalesced => "coalesced",
            ServeSource::Delta => "delta",
        }
    }
}

/// A successful analysis (or query) answer.
#[derive(Debug, Clone)]
pub struct AnalyzeReply {
    /// Monotonic request ID (echoed by this request's telemetry
    /// events; 0 on client-constructed replies).
    pub req_id: u64,
    /// Content fingerprint of the analyzed image.
    pub fingerprint: u64,
    /// Canonical pipeline id the answer is keyed under.
    pub pipeline_id: String,
    /// Where the answer came from.
    pub source: ServeSource,
    /// Wall time of handling this request, in microseconds.
    pub wall_us: f64,
    /// The detection result (shared with the cache — not copied).
    pub result: Arc<DetectionResult>,
}

/// Persistent-store statistics for the `stats` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Result files resident in the store directory.
    pub entries: usize,
    /// Total bytes of those files.
    pub disk_bytes: u64,
    /// Orphaned temp files reaped by the recovery/compaction sweep.
    pub recovered_temps: u64,
    /// Invalid entries moved to `quarantine/` by the sweep.
    pub quarantined: u64,
    /// Entries removed by age/size GC.
    pub gc_removed: u64,
    /// Bytes freed by age/size GC.
    pub gc_bytes_freed: u64,
}

/// Per-command and per-source request counters of one daemon lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounters {
    /// Every answer-path request (`analyze` + `reanalyze` + `query` +
    /// shed connections). Reconciles exactly:
    /// `requests_total == cache_hits + store_hits + delta_hits + cold
    /// + coalesced + errors + shed_busy`.
    pub requests_total: u64,
    /// Answer-path requests that ended in an error reply (bad input,
    /// unreadable path, not-found query, injected compute fault, …).
    pub errors: u64,
    /// `analyze` requests handled.
    pub analyze: u64,
    /// `reanalyze` requests handled.
    pub reanalyze: u64,
    /// `query` requests handled.
    pub query: u64,
    /// Answers computed cold.
    pub cold: u64,
    /// Answers served from the in-memory cache.
    pub cache_hits: u64,
    /// Answers served from the persistent store.
    pub store_hits: u64,
    /// Store entries that failed to load (corrupt/unreadable; the
    /// answer was recomputed cold and the entry rewritten).
    pub store_errors: u64,
    /// Answers received by joining another request's in-flight compute.
    pub coalesced: u64,
    /// Requests shed with a `busy` error (pending queue full).
    pub shed_busy: u64,
    /// Requests rejected with a `too_large` error.
    pub rejected_too_large: u64,
    /// Directory-queue requests moved to the `failed/` quarantine.
    pub queue_quarantined: u64,
}

/// Outcome counters of the `reanalyze` delta ladder, one daemon
/// lifetime (the `stats` reply's `delta` block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Reanalyzes answered verbatim from the previous result (ladder
    /// tiers 1–2: unchanged image, or a local semantically-equal text
    /// patch under a delta-safe pipeline).
    pub delta_hits: u64,
    /// Total text buckets whose reuse the digest diffs proved, summed
    /// over all reanalyzes (whichever tier ran).
    pub sections_reused: u64,
    /// Reanalyzes that fell back to a (decode-warm) full recompute —
    /// the change was local but not provably answer-preserving.
    pub fallback_cold: u64,
    /// Reanalyzes that ran plain cold: non-local change, or no usable
    /// predecessor (unknown fingerprint / digest-less entry).
    pub digest_mismatch: u64,
}

/// The full `stats` answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReply {
    /// Bounded-cache counters and footprint.
    pub cache: CacheStats,
    /// Store footprint, when a store is configured.
    pub store: Option<StoreStats>,
    /// Request counters.
    pub requests: RequestCounters,
    /// Delta-ladder outcome counters of the `reanalyze` path.
    pub delta: DeltaCounters,
    /// Faults fired by the armed [`crate::FaultPlan`] (0 when no plan
    /// is armed) — chaos runs assert on this to prove injection armed.
    pub faults_injected: u64,
}

/// The `metrics` answer: the same registry snapshot in both forms.
#[derive(Debug, Clone)]
pub struct MetricsReply {
    /// Prometheus-style text exposition ([`fetch_obs::render_text`]).
    pub text: String,
    /// Structured form: metric name → number (counter/gauge) or
    /// `{count,sum,max,p50,p95,p99}` object (histogram).
    pub metrics: Json,
}

/// A reply to one request.
#[derive(Debug, Clone)]
pub enum Reply {
    /// An analysis or query answer.
    Analyze(AnalyzeReply),
    /// Statistics.
    Stats(StatsReply),
    /// The runtime observability registry.
    Metrics(MetricsReply),
    /// The connection is now a telemetry subscriber.
    Subscribed,
    /// The daemon acknowledges shutdown.
    Shutdown,
    /// The request failed; the code classifies it, the message says
    /// why.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Shorthand for an error reply.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply::Error {
            code,
            message: message.into(),
        }
    }
}

/// Renders a `u64` identifier as the protocol's hex-string form.
pub fn hex_u64(v: u64) -> String {
    format!("{v:#x}")
}

/// Parses the protocol's hex-string identifier form (`0x` optional).
pub fn parse_hex_u64(s: &str) -> Option<u64> {
    let digits = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| Some(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

/// Renders bytes as lowercase hex (the `bytes_hex` request form).
/// Nibble-table lookup: whole ELF images travel through here, so the
/// encoder must not allocate per byte.
pub fn encode_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Parses one request line, enforcing [`MAX_LINE_BYTES`] and
/// [`MAX_INLINE_BYTES`].
///
/// # Errors
///
/// A [`RequestError`] naming the malformed field (code `bad_request`)
/// or the exceeded limit (code `too_large`) — the daemon echoes it back
/// as a structured error reply and keeps serving.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(RequestError::too_large(format!(
            "request line is {} bytes; the limit is {MAX_LINE_BYTES}",
            line.len()
        )));
    }
    let json = Json::parse(line.trim()).map_err(|e| RequestError::bad(e.to_string()))?;
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad("missing \"cmd\" field"))?;
    match cmd {
        "analyze" => {
            let input = request_input(&json, "analyze")?;
            let pipeline = request_pipeline(&json)?;
            Ok(Request::Analyze { input, pipeline })
        }
        "reanalyze" => {
            let prev_fingerprint = json
                .get("prev_fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_hex_u64)
                .ok_or_else(|| {
                    RequestError::bad("reanalyze needs a hex-string \"prev_fingerprint\"")
                })?;
            let input = request_input(&json, "reanalyze")?;
            let pipeline = request_pipeline(&json)?;
            Ok(Request::Reanalyze {
                prev_fingerprint,
                input,
                pipeline,
            })
        }
        "query" => {
            let fingerprint = json
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_hex_u64)
                .ok_or_else(|| RequestError::bad("query needs a hex-string \"fingerprint\""))?;
            let pipeline_id = request_pipeline(&json)?.id();
            Ok(Request::Query {
                fingerprint,
                pipeline_id,
            })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "subscribe" => Ok(Request::Subscribe),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::bad(format!(
            "unknown cmd {other:?} \
             (known: analyze, reanalyze, query, stats, metrics, subscribe, shutdown)"
        ))),
    }
}

/// Resolves the request's binary payload (`path` or `bytes_hex`, not
/// both), enforcing [`MAX_INLINE_BYTES`] on inline images. Shared by
/// `analyze` and `reanalyze`.
fn request_input(json: &Json, cmd: &str) -> Result<AnalyzeInput, RequestError> {
    match (
        json.get("path").and_then(Json::as_str),
        json.get("bytes_hex").and_then(Json::as_str),
    ) {
        (Some(_), Some(_)) => Err(RequestError::bad(format!(
            "{cmd} takes \"path\" or \"bytes_hex\", not both"
        ))),
        (Some(path), None) => Ok(AnalyzeInput::Path(PathBuf::from(path))),
        (None, Some(hex)) => {
            // Check the (cheap) encoded length before decoding, so an
            // oversized image never allocates.
            if hex.len() > MAX_INLINE_BYTES * 2 {
                return Err(RequestError::too_large(format!(
                    "inline image is {} bytes; the limit is {MAX_INLINE_BYTES}",
                    hex.len() / 2
                )));
            }
            Ok(AnalyzeInput::Bytes(decode_hex(hex).ok_or_else(|| {
                RequestError::bad("\"bytes_hex\" is not valid hex")
            })?))
        }
        (None, None) => Err(RequestError::bad(format!(
            "{cmd} needs \"path\" or \"bytes_hex\""
        ))),
    }
}

/// Resolves the request's strategy stack: `pipeline` spec, `tool` name,
/// or the FETCH default.
fn request_pipeline(json: &Json) -> Result<Pipeline, RequestError> {
    match (
        json.get("pipeline").and_then(Json::as_str),
        json.get("tool").and_then(Json::as_str),
    ) {
        (Some(_), Some(_)) => Err(RequestError::bad("give \"pipeline\" or \"tool\", not both")),
        (Some(spec), None) => {
            Pipeline::parse(spec).map_err(|e| RequestError::bad(format!("bad pipeline: {e}")))
        }
        (None, Some(tool)) => Tool::from_name(tool)
            .map(Pipeline::for_tool)
            .ok_or_else(|| RequestError::bad(format!("unknown tool {tool:?}"))),
        (None, None) => Ok(Pipeline::fetch()),
    }
}

fn push_input(pairs: &mut Vec<(String, Json)>, input: &AnalyzeInput) {
    match input {
        AnalyzeInput::Path(p) => pairs.push(("path".into(), Json::str(p.display().to_string()))),
        AnalyzeInput::Bytes(b) => pairs.push(("bytes_hex".into(), Json::str(encode_hex(b)))),
    }
}

impl Request {
    /// Renders the request as one protocol line (the client side).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Analyze { input, pipeline } => {
                let mut pairs = vec![
                    ("cmd".to_string(), Json::str("analyze")),
                    ("pipeline".to_string(), Json::str(pipeline.id())),
                ];
                push_input(&mut pairs, input);
                Json::Obj(pairs.into_iter().collect())
            }
            Request::Reanalyze {
                prev_fingerprint,
                input,
                pipeline,
            } => {
                let mut pairs = vec![
                    ("cmd".to_string(), Json::str("reanalyze")),
                    (
                        "prev_fingerprint".to_string(),
                        Json::str(hex_u64(*prev_fingerprint)),
                    ),
                    ("pipeline".to_string(), Json::str(pipeline.id())),
                ];
                push_input(&mut pairs, input);
                Json::Obj(pairs.into_iter().collect())
            }
            Request::Query {
                fingerprint,
                pipeline_id,
            } => obj([
                ("cmd", Json::str("query")),
                ("fingerprint", Json::str(hex_u64(*fingerprint))),
                ("pipeline", Json::str(pipeline_id.clone())),
            ]),
            Request::Stats => obj([("cmd", Json::str("stats"))]),
            Request::Metrics => obj([("cmd", Json::str("metrics"))]),
            Request::Subscribe => obj([("cmd", Json::str("subscribe"))]),
            Request::Shutdown => obj([("cmd", Json::str("shutdown"))]),
        };
        json.to_string()
    }
}

/// The deterministic `result` object of an analysis reply: starts (hex
/// address, provenance token) in address order, layer names, and the
/// start count. Timing and decode-work fields are deliberately
/// *excluded* — they differ between a cold run and a replayed one, and
/// this object must render byte-identically for both (telemetry events
/// carry the timing).
pub fn result_json(result: &DetectionResult) -> Json {
    let starts: Vec<Json> = result
        .starts
        .iter()
        .map(|(addr, prov)| Json::Arr(vec![Json::str(hex_u64(*addr)), Json::str(prov.to_string())]))
        .collect();
    let layers: Vec<Json> = result.layers.iter().map(|l| Json::str(*l)).collect();
    obj([
        ("start_count", Json::int(result.starts.len() as u64)),
        ("starts", Json::Arr(starts)),
        ("layers", Json::Arr(layers)),
    ])
}

fn cache_stats_json(stats: &CacheStats) -> Json {
    obj([
        ("hits", Json::int(stats.hits)),
        ("misses", Json::int(stats.misses)),
        ("evictions", Json::int(stats.evictions)),
        ("coalesced", Json::int(stats.coalesced)),
        ("entries", Json::int(stats.entries as u64)),
        ("bytes", Json::int(stats.bytes as u64)),
    ])
}

impl Reply {
    /// Renders the reply as one protocol line (no `req_id` — the
    /// client-side and test form; the daemon uses
    /// [`Reply::to_line_with`]).
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Renders the reply as one protocol line with the monotonic
    /// `req_id` stamped into the envelope — every reply the daemon
    /// writes goes through here.
    pub fn to_line_with(&self, req_id: u64) -> String {
        let mut json = self.to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("req_id".to_string(), Json::int(req_id));
        }
        json.to_string()
    }

    fn to_json(&self) -> Json {
        match self {
            Reply::Analyze(a) => obj([
                ("ok", Json::Bool(true)),
                ("fingerprint", Json::str(hex_u64(a.fingerprint))),
                ("pipeline", Json::str(a.pipeline_id.clone())),
                ("source", Json::str(a.source.token())),
                ("wall_us", Json::Num(a.wall_us)),
                ("result", result_json(&a.result)),
            ]),
            Reply::Stats(s) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("cache".to_string(), cache_stats_json(&s.cache)),
                    (
                        "requests".to_string(),
                        obj([
                            ("requests_total", Json::int(s.requests.requests_total)),
                            ("errors", Json::int(s.requests.errors)),
                            ("analyze", Json::int(s.requests.analyze)),
                            ("reanalyze", Json::int(s.requests.reanalyze)),
                            ("query", Json::int(s.requests.query)),
                            ("cold", Json::int(s.requests.cold)),
                            ("cache_hits", Json::int(s.requests.cache_hits)),
                            ("store_hits", Json::int(s.requests.store_hits)),
                            ("store_errors", Json::int(s.requests.store_errors)),
                            ("coalesced", Json::int(s.requests.coalesced)),
                            ("shed_busy", Json::int(s.requests.shed_busy)),
                            (
                                "rejected_too_large",
                                Json::int(s.requests.rejected_too_large),
                            ),
                            ("queue_quarantined", Json::int(s.requests.queue_quarantined)),
                        ]),
                    ),
                    (
                        "delta".to_string(),
                        obj([
                            ("delta_hits", Json::int(s.delta.delta_hits)),
                            ("sections_reused", Json::int(s.delta.sections_reused)),
                            ("fallback_cold", Json::int(s.delta.fallback_cold)),
                            ("digest_mismatch", Json::int(s.delta.digest_mismatch)),
                        ]),
                    ),
                    ("faults_injected".to_string(), Json::int(s.faults_injected)),
                ];
                if let Some(store) = &s.store {
                    pairs.push((
                        "store".to_string(),
                        obj([
                            ("entries", Json::int(store.entries as u64)),
                            ("disk_bytes", Json::int(store.disk_bytes)),
                            ("recovered_temps", Json::int(store.recovered_temps)),
                            ("quarantined", Json::int(store.quarantined)),
                            ("gc_removed", Json::int(store.gc_removed)),
                            ("gc_bytes_freed", Json::int(store.gc_bytes_freed)),
                        ]),
                    ));
                }
                Json::Obj(pairs.into_iter().collect())
            }
            Reply::Subscribed => obj([("ok", Json::Bool(true)), ("subscribed", Json::Bool(true))]),
            Reply::Shutdown => obj([("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))]),
            Reply::Metrics(m) => obj([
                ("ok", Json::Bool(true)),
                ("metrics", m.metrics.clone()),
                ("text", Json::str(m.text.clone())),
            ]),
            Reply::Error { code, message } => obj([
                ("ok", Json::Bool(false)),
                ("code", Json::str(code.token())),
                ("error", Json::str(message.clone())),
            ]),
        }
    }
}

/// Renders the telemetry event stream of one handled request: a
/// `request` event (source, wall time), then one `layer` event per
/// [`LayerTrace`] — per-layer wall time, start delta sizes, and
/// decode-cache work. Warm answers replay the trace persisted with the
/// result, so subscribers see the per-layer telemetry either way.
/// Every event carries the reply's `req_id`, so a subscriber can
/// correlate layer events with the originating request.
pub fn telemetry_events(reply: &AnalyzeReply) -> Vec<String> {
    let mut events = Vec::with_capacity(1 + reply.result.trace.len());
    events.push(
        obj([
            ("event", Json::str("request")),
            ("req_id", Json::int(reply.req_id)),
            ("fingerprint", Json::str(hex_u64(reply.fingerprint))),
            ("pipeline", Json::str(reply.pipeline_id.clone())),
            ("source", Json::str(reply.source.token())),
            ("wall_us", Json::Num(reply.wall_us)),
            ("start_count", Json::int(reply.result.starts.len() as u64)),
        ])
        .to_string(),
    );
    for (index, t) in reply.result.trace.iter().enumerate() {
        events.push(layer_event(reply, index, t));
    }
    events
}

fn layer_event(reply: &AnalyzeReply, index: usize, t: &LayerTrace) -> String {
    obj([
        ("event", Json::str("layer")),
        ("req_id", Json::int(reply.req_id)),
        ("fingerprint", Json::str(hex_u64(reply.fingerprint))),
        ("pipeline", Json::str(reply.pipeline_id.clone())),
        ("index", Json::int(index as u64)),
        ("layer", Json::str(t.name)),
        ("wall_us", Json::Num(t.wall_us())),
        ("starts_added", Json::int(t.added.len() as u64)),
        ("starts_removed", Json::int(t.removed.len() as u64)),
        ("starts_after", Json::int(t.starts_after as u64)),
        ("decode_hits", Json::int(t.decode_hits)),
        ("decode_misses", Json::int(t.decode_misses)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = [
            Request::Analyze {
                input: AnalyzeInput::Path(PathBuf::from("/tmp/a.elf")),
                pipeline: Pipeline::fetch(),
            },
            Request::Analyze {
                input: AnalyzeInput::Bytes(vec![0x7f, b'E', b'L', b'F']),
                pipeline: Pipeline::parse("FDE+Rec").unwrap(),
            },
            Request::Reanalyze {
                prev_fingerprint: 0xdead_beef_cafe,
                input: AnalyzeInput::Path(PathBuf::from("/tmp/a-v2.elf")),
                pipeline: Pipeline::fetch(),
            },
            Request::Reanalyze {
                prev_fingerprint: 7,
                input: AnalyzeInput::Bytes(vec![0x7f, b'E', b'L', b'F']),
                pipeline: Pipeline::parse("FDE+Rec").unwrap(),
            },
            Request::Query {
                fingerprint: u64::MAX - 3,
                pipeline_id: "FDE+Rec+Xref".into(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Subscribe,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_line();
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn tool_and_default_pipelines_resolve() {
        let req = parse_request(r#"{"cmd":"analyze","path":"/x","tool":"ghidra"}"#).unwrap();
        match req {
            Request::Analyze { pipeline, .. } => {
                assert_eq!(pipeline, Pipeline::for_tool(Tool::Ghidra))
            }
            other => panic!("{other:?}"),
        }
        let req = parse_request(r#"{"cmd":"analyze","path":"/x"}"#).unwrap();
        match req {
            Request::Analyze { pipeline, .. } => assert_eq!(pipeline, Pipeline::fetch()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("{}", "cmd"),
            (r#"{"cmd":"warp"}"#, "unknown cmd"),
            (r#"{"cmd":"analyze"}"#, "path"),
            (
                r#"{"cmd":"analyze","path":"a","bytes_hex":"00"}"#,
                "not both",
            ),
            (
                r#"{"cmd":"analyze","path":"a","pipeline":"FDE+Nope"}"#,
                "Nope",
            ),
            (
                r#"{"cmd":"analyze","path":"a","pipeline":"FDE+FDE"}"#,
                "duplicate",
            ),
            (
                r#"{"cmd":"analyze","path":"a","tool":"objdump"}"#,
                "objdump",
            ),
            (r#"{"cmd":"query","pipeline":"FDE"}"#, "fingerprint"),
            (r#"{"cmd":"analyze","bytes_hex":"0g"}"#, "hex"),
            (r#"{"cmd":"reanalyze","path":"/x"}"#, "prev_fingerprint"),
            (
                r#"{"cmd":"reanalyze","prev_fingerprint":"0x1"}"#,
                "reanalyze needs",
            ),
            (
                r#"{"cmd":"reanalyze","prev_fingerprint":"0x1","path":"a","bytes_hex":"00"}"#,
                "not both",
            ),
            ("not json", "JSON"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(err.message.contains(needle), "{line} → {}", err.message);
        }
    }

    #[test]
    fn size_caps_reject_at_the_boundary_with_too_large() {
        // Inline image exactly at the cap parses; one byte over is a
        // structured too_large. Build the hex payloads once (8 MiB of
        // text each) and splice them into an analyze request.
        let at_cap = "00".repeat(MAX_INLINE_BYTES);
        let over = "00".repeat(MAX_INLINE_BYTES + 1);
        let line_at = format!(r#"{{"cmd":"analyze","bytes_hex":"{at_cap}"}}"#);
        assert!(
            line_at.len() <= MAX_LINE_BYTES,
            "an at-cap image must fit the line cap"
        );
        match parse_request(&line_at).unwrap() {
            Request::Analyze {
                input: AnalyzeInput::Bytes(bytes),
                ..
            } => assert_eq!(bytes.len(), MAX_INLINE_BYTES),
            other => panic!("{other:?}"),
        }
        let err =
            parse_request(&format!(r#"{{"cmd":"analyze","bytes_hex":"{over}"}}"#)).unwrap_err();
        assert_eq!(err.code, ErrorCode::TooLarge);
        assert!(err.message.contains("inline image"), "{}", err.message);

        // The line cap itself: at the boundary the (padded) request
        // still parses; one byte over is rejected by length alone.
        let pad = MAX_LINE_BYTES - r#"{"cmd":"stats","pad":""}"#.len();
        let line = format!(r#"{{"cmd":"stats","pad":"{}"}}"#, "x".repeat(pad));
        assert_eq!(line.len(), MAX_LINE_BYTES);
        assert_eq!(parse_request(&line).unwrap(), Request::Stats);
        let line = format!(r#"{{"cmd":"stats","pad":"{}"}}"#, "x".repeat(pad + 1));
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code, ErrorCode::TooLarge);
        assert!(err.message.contains("request line"), "{}", err.message);
    }

    #[test]
    fn error_replies_carry_their_code_on_the_wire() {
        let line = Reply::error(ErrorCode::Busy, "pending queue full").to_line();
        assert!(line.contains(r#""code":"busy""#), "{line}");
        assert!(line.contains(r#""ok":false"#), "{line}");
        assert!(line.contains("pending queue full"), "{line}");
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::TooLarge,
            ErrorCode::Busy,
            ErrorCode::NotFound,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_token(code.token()), Some(code));
        }
        assert_eq!(ErrorCode::from_token("nope"), None);
    }

    #[test]
    fn replies_stamp_req_id_into_every_envelope() {
        let tagged = Reply::error(ErrorCode::Busy, "full").to_line_with(41);
        assert!(tagged.contains(r#""req_id":41"#), "{tagged}");
        let tagged = Reply::Shutdown.to_line_with(42);
        assert!(tagged.contains(r#""req_id":42"#), "{tagged}");
        let tagged = Reply::Metrics(MetricsReply {
            text: "# TYPE x counter\nx 1\n".into(),
            metrics: obj([("x", Json::int(1))]),
        })
        .to_line_with(43);
        assert!(tagged.contains(r#""req_id":43"#), "{tagged}");
        assert!(tagged.contains(r#""metrics":{"x":1}"#), "{tagged}");
        // On the wire the newlines are JSON-escaped (`\n` two-char).
        assert!(
            tagged.contains(r##""text":"# TYPE x counter\nx 1\n""##),
            "{tagged}"
        );
        // The untagged form stays req_id-free (client-constructed).
        assert!(!Reply::Shutdown.to_line().contains("req_id"));
    }

    #[test]
    fn hex_helpers_round_trip() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex_u64(&hex_u64(v)), Some(v));
        }
        assert_eq!(parse_hex_u64("1234"), Some(0x1234));
        assert_eq!(parse_hex_u64(""), None);
        assert_eq!(parse_hex_u64("0x"), None);
        assert_eq!(parse_hex_u64("zz"), None);
        assert_eq!(decode_hex("7f454c46"), Some(vec![0x7f, 0x45, 0x4c, 0x46]));
        assert_eq!(decode_hex("7f4"), None);
        assert_eq!(encode_hex(&[0x7f, 0x45]), "7f45");
    }
}
