//! The line-delimited JSON serve protocol: one request per line in, one
//! reply per line out, plus a telemetry event stream for subscribers.
//!
//! ## Requests
//!
//! Every request is a JSON object with a `cmd` field:
//!
//! * `{"cmd":"analyze", "path":"/bin/x"}` — analyze the ELF at a path.
//!   Alternatives/extras: `"bytes_hex":"7f454c46…"` submits the image
//!   inline; `"pipeline":"FDE+Rec+Xref"` picks a strategy stack
//!   ([`Pipeline::parse`]); `"tool":"GHIDRA"` picks a Table III tool
//!   model ([`Tool::from_name`]). Default stack:
//!   [`Pipeline::fetch`].
//! * `{"cmd":"query", "fingerprint":"0x1234abcd…", "pipeline":"FDE+Rec"}`
//!   — cache/store lookup only, never computes.
//! * `{"cmd":"stats"}` — cache, store, and request counters.
//! * `{"cmd":"subscribe"}` — switch this connection to the telemetry
//!   stream (one JSON event line per request and per layer).
//! * `{"cmd":"shutdown"}` — reply, then stop the daemon.
//!
//! ## Replies
//!
//! `{"ok":true, …}` or `{"ok":false,"error":"…"}`. Analysis replies
//! carry the content fingerprint (hex string — it does not fit a JSON
//! double), the canonical pipeline id, the answer `source`
//! (`"cold"` / `"cache"` / `"store"`), the request wall time, and a
//! `result` object whose rendering is deterministic: a warm answer is
//! byte-identical to the cold answer that seeded it (asserted by the
//! end-to-end smoke test).

use crate::json::{obj, Json};
use fetch_core::{CacheStats, DetectionResult, LayerTrace, Pipeline, Tool};
use std::path::PathBuf;
use std::sync::Arc;

/// The binary payload of an analyze request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeInput {
    /// Read the ELF image from a filesystem path (daemon-side).
    Path(PathBuf),
    /// The raw ELF image, submitted inline.
    Bytes(Vec<u8>),
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze a binary under a pipeline (cache → store → cold).
    Analyze {
        /// Where the ELF image comes from.
        input: AnalyzeInput,
        /// The strategy stack to run.
        pipeline: Pipeline,
    },
    /// Look up a previously-computed answer; never computes.
    Query {
        /// Content fingerprint (from an earlier analyze reply).
        fingerprint: u64,
        /// Canonical pipeline id ([`Pipeline::id`]).
        pipeline_id: String,
    },
    /// Report cache/store/request statistics.
    Stats,
    /// Switch this connection to the telemetry event stream.
    Subscribe,
    /// Stop the daemon after replying.
    Shutdown,
}

/// Where an analysis answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Computed on this request.
    Cold,
    /// Served from the in-memory bounded cache.
    CacheHit,
    /// Served from the persistent result store (and promoted into the
    /// cache).
    StoreHit,
}

impl ServeSource {
    /// The wire token (`"cold"` / `"cache"` / `"store"`).
    pub fn token(self) -> &'static str {
        match self {
            ServeSource::Cold => "cold",
            ServeSource::CacheHit => "cache",
            ServeSource::StoreHit => "store",
        }
    }
}

/// A successful analysis (or query) answer.
#[derive(Debug, Clone)]
pub struct AnalyzeReply {
    /// Content fingerprint of the analyzed image.
    pub fingerprint: u64,
    /// Canonical pipeline id the answer is keyed under.
    pub pipeline_id: String,
    /// Where the answer came from.
    pub source: ServeSource,
    /// Wall time of handling this request, in microseconds.
    pub wall_us: f64,
    /// The detection result (shared with the cache — not copied).
    pub result: Arc<DetectionResult>,
}

/// Persistent-store statistics for the `stats` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Result files resident in the store directory.
    pub entries: usize,
    /// Total bytes of those files.
    pub disk_bytes: u64,
}

/// Per-command and per-source request counters of one daemon lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounters {
    /// `analyze` requests handled.
    pub analyze: u64,
    /// `query` requests handled.
    pub query: u64,
    /// Answers computed cold.
    pub cold: u64,
    /// Answers served from the in-memory cache.
    pub cache_hits: u64,
    /// Answers served from the persistent store.
    pub store_hits: u64,
    /// Store entries that failed to load (corrupt/unreadable; the
    /// answer was recomputed cold and the entry rewritten).
    pub store_errors: u64,
}

/// The full `stats` answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReply {
    /// Bounded-cache counters and footprint.
    pub cache: CacheStats,
    /// Store footprint, when a store is configured.
    pub store: Option<StoreStats>,
    /// Request counters.
    pub requests: RequestCounters,
}

/// A reply to one request.
#[derive(Debug, Clone)]
pub enum Reply {
    /// An analysis or query answer.
    Analyze(AnalyzeReply),
    /// Statistics.
    Stats(StatsReply),
    /// The connection is now a telemetry subscriber.
    Subscribed,
    /// The daemon acknowledges shutdown.
    Shutdown,
    /// The request failed; the message says why.
    Error(String),
}

/// Renders a `u64` identifier as the protocol's hex-string form.
pub fn hex_u64(v: u64) -> String {
    format!("{v:#x}")
}

/// Parses the protocol's hex-string identifier form (`0x` optional).
pub fn parse_hex_u64(s: &str) -> Option<u64> {
    let digits = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| Some(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

/// Renders bytes as lowercase hex (the `bytes_hex` request form).
/// Nibble-table lookup: whole ELF images travel through here, so the
/// encoder must not allocate per byte.
pub fn encode_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message naming the malformed field — the daemon
/// echoes it back as an error reply and keeps serving.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing \"cmd\" field")?;
    match cmd {
        "analyze" => {
            let input = match (
                json.get("path").and_then(Json::as_str),
                json.get("bytes_hex").and_then(Json::as_str),
            ) {
                (Some(_), Some(_)) => {
                    return Err("analyze takes \"path\" or \"bytes_hex\", not both".into())
                }
                (Some(path), None) => AnalyzeInput::Path(PathBuf::from(path)),
                (None, Some(hex)) => {
                    AnalyzeInput::Bytes(decode_hex(hex).ok_or("\"bytes_hex\" is not valid hex")?)
                }
                (None, None) => return Err("analyze needs \"path\" or \"bytes_hex\"".into()),
            };
            let pipeline = request_pipeline(&json)?;
            Ok(Request::Analyze { input, pipeline })
        }
        "query" => {
            let fingerprint = json
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_hex_u64)
                .ok_or("query needs a hex-string \"fingerprint\"")?;
            let pipeline_id = request_pipeline(&json)?.id();
            Ok(Request::Query {
                fingerprint,
                pipeline_id,
            })
        }
        "stats" => Ok(Request::Stats),
        "subscribe" => Ok(Request::Subscribe),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown cmd {other:?} (known: analyze, query, stats, subscribe, shutdown)"
        )),
    }
}

/// Resolves the request's strategy stack: `pipeline` spec, `tool` name,
/// or the FETCH default.
fn request_pipeline(json: &Json) -> Result<Pipeline, String> {
    match (
        json.get("pipeline").and_then(Json::as_str),
        json.get("tool").and_then(Json::as_str),
    ) {
        (Some(_), Some(_)) => Err("give \"pipeline\" or \"tool\", not both".into()),
        (Some(spec), None) => Pipeline::parse(spec).map_err(|e| format!("bad pipeline: {e}")),
        (None, Some(tool)) => Tool::from_name(tool)
            .map(Pipeline::for_tool)
            .ok_or_else(|| format!("unknown tool {tool:?}")),
        (None, None) => Ok(Pipeline::fetch()),
    }
}

impl Request {
    /// Renders the request as one protocol line (the client side).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Analyze { input, pipeline } => {
                let mut pairs = vec![
                    ("cmd".to_string(), Json::str("analyze")),
                    ("pipeline".to_string(), Json::str(pipeline.id())),
                ];
                match input {
                    AnalyzeInput::Path(p) => {
                        pairs.push(("path".into(), Json::str(p.display().to_string())))
                    }
                    AnalyzeInput::Bytes(b) => {
                        pairs.push(("bytes_hex".into(), Json::str(encode_hex(b))))
                    }
                }
                Json::Obj(pairs.into_iter().collect())
            }
            Request::Query {
                fingerprint,
                pipeline_id,
            } => obj([
                ("cmd", Json::str("query")),
                ("fingerprint", Json::str(hex_u64(*fingerprint))),
                ("pipeline", Json::str(pipeline_id.clone())),
            ]),
            Request::Stats => obj([("cmd", Json::str("stats"))]),
            Request::Subscribe => obj([("cmd", Json::str("subscribe"))]),
            Request::Shutdown => obj([("cmd", Json::str("shutdown"))]),
        };
        json.to_string()
    }
}

/// The deterministic `result` object of an analysis reply: starts (hex
/// address, provenance token) in address order, layer names, and the
/// start count. Timing and decode-work fields are deliberately
/// *excluded* — they differ between a cold run and a replayed one, and
/// this object must render byte-identically for both (telemetry events
/// carry the timing).
pub fn result_json(result: &DetectionResult) -> Json {
    let starts: Vec<Json> = result
        .starts
        .iter()
        .map(|(addr, prov)| Json::Arr(vec![Json::str(hex_u64(*addr)), Json::str(prov.to_string())]))
        .collect();
    let layers: Vec<Json> = result.layers.iter().map(|l| Json::str(*l)).collect();
    obj([
        ("start_count", Json::int(result.starts.len() as u64)),
        ("starts", Json::Arr(starts)),
        ("layers", Json::Arr(layers)),
    ])
}

fn cache_stats_json(stats: &CacheStats) -> Json {
    obj([
        ("hits", Json::int(stats.hits)),
        ("misses", Json::int(stats.misses)),
        ("evictions", Json::int(stats.evictions)),
        ("entries", Json::int(stats.entries as u64)),
        ("bytes", Json::int(stats.bytes as u64)),
    ])
}

impl Reply {
    /// Renders the reply as one protocol line.
    pub fn to_line(&self) -> String {
        let json = match self {
            Reply::Analyze(a) => obj([
                ("ok", Json::Bool(true)),
                ("fingerprint", Json::str(hex_u64(a.fingerprint))),
                ("pipeline", Json::str(a.pipeline_id.clone())),
                ("source", Json::str(a.source.token())),
                ("wall_us", Json::Num(a.wall_us)),
                ("result", result_json(&a.result)),
            ]),
            Reply::Stats(s) => {
                let mut pairs = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("cache".to_string(), cache_stats_json(&s.cache)),
                    (
                        "requests".to_string(),
                        obj([
                            ("analyze", Json::int(s.requests.analyze)),
                            ("query", Json::int(s.requests.query)),
                            ("cold", Json::int(s.requests.cold)),
                            ("cache_hits", Json::int(s.requests.cache_hits)),
                            ("store_hits", Json::int(s.requests.store_hits)),
                            ("store_errors", Json::int(s.requests.store_errors)),
                        ]),
                    ),
                ];
                if let Some(store) = &s.store {
                    pairs.push((
                        "store".to_string(),
                        obj([
                            ("entries", Json::int(store.entries as u64)),
                            ("disk_bytes", Json::int(store.disk_bytes)),
                        ]),
                    ));
                }
                Json::Obj(pairs.into_iter().collect())
            }
            Reply::Subscribed => obj([("ok", Json::Bool(true)), ("subscribed", Json::Bool(true))]),
            Reply::Shutdown => obj([("ok", Json::Bool(true)), ("shutdown", Json::Bool(true))]),
            Reply::Error(message) => obj([
                ("ok", Json::Bool(false)),
                ("error", Json::str(message.clone())),
            ]),
        };
        json.to_string()
    }
}

/// Renders the telemetry event stream of one handled request: a
/// `request` event (source, wall time), then one `layer` event per
/// [`LayerTrace`] — per-layer wall time, start delta sizes, and
/// decode-cache work. Warm answers replay the trace persisted with the
/// result, so subscribers see the per-layer telemetry either way.
pub fn telemetry_events(reply: &AnalyzeReply) -> Vec<String> {
    let mut events = Vec::with_capacity(1 + reply.result.trace.len());
    events.push(
        obj([
            ("event", Json::str("request")),
            ("fingerprint", Json::str(hex_u64(reply.fingerprint))),
            ("pipeline", Json::str(reply.pipeline_id.clone())),
            ("source", Json::str(reply.source.token())),
            ("wall_us", Json::Num(reply.wall_us)),
            ("start_count", Json::int(reply.result.starts.len() as u64)),
        ])
        .to_string(),
    );
    for (index, t) in reply.result.trace.iter().enumerate() {
        events.push(layer_event(reply, index, t));
    }
    events
}

fn layer_event(reply: &AnalyzeReply, index: usize, t: &LayerTrace) -> String {
    obj([
        ("event", Json::str("layer")),
        ("fingerprint", Json::str(hex_u64(reply.fingerprint))),
        ("pipeline", Json::str(reply.pipeline_id.clone())),
        ("index", Json::int(index as u64)),
        ("layer", Json::str(t.name)),
        ("wall_us", Json::Num(t.wall_us())),
        ("starts_added", Json::int(t.added.len() as u64)),
        ("starts_removed", Json::int(t.removed.len() as u64)),
        ("starts_after", Json::int(t.starts_after as u64)),
        ("decode_hits", Json::int(t.decode_hits)),
        ("decode_misses", Json::int(t.decode_misses)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = [
            Request::Analyze {
                input: AnalyzeInput::Path(PathBuf::from("/tmp/a.elf")),
                pipeline: Pipeline::fetch(),
            },
            Request::Analyze {
                input: AnalyzeInput::Bytes(vec![0x7f, b'E', b'L', b'F']),
                pipeline: Pipeline::parse("FDE+Rec").unwrap(),
            },
            Request::Query {
                fingerprint: u64::MAX - 3,
                pipeline_id: "FDE+Rec+Xref".into(),
            },
            Request::Stats,
            Request::Subscribe,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_line();
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn tool_and_default_pipelines_resolve() {
        let req = parse_request(r#"{"cmd":"analyze","path":"/x","tool":"ghidra"}"#).unwrap();
        match req {
            Request::Analyze { pipeline, .. } => {
                assert_eq!(pipeline, Pipeline::for_tool(Tool::Ghidra))
            }
            other => panic!("{other:?}"),
        }
        let req = parse_request(r#"{"cmd":"analyze","path":"/x"}"#).unwrap();
        match req {
            Request::Analyze { pipeline, .. } => assert_eq!(pipeline, Pipeline::fetch()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("{}", "cmd"),
            (r#"{"cmd":"warp"}"#, "unknown cmd"),
            (r#"{"cmd":"analyze"}"#, "path"),
            (
                r#"{"cmd":"analyze","path":"a","bytes_hex":"00"}"#,
                "not both",
            ),
            (
                r#"{"cmd":"analyze","path":"a","pipeline":"FDE+Nope"}"#,
                "Nope",
            ),
            (
                r#"{"cmd":"analyze","path":"a","pipeline":"FDE+FDE"}"#,
                "duplicate",
            ),
            (
                r#"{"cmd":"analyze","path":"a","tool":"objdump"}"#,
                "objdump",
            ),
            (r#"{"cmd":"query","pipeline":"FDE"}"#, "fingerprint"),
            (r#"{"cmd":"analyze","bytes_hex":"0g"}"#, "hex"),
            ("not json", "JSON"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn hex_helpers_round_trip() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex_u64(&hex_u64(v)), Some(v));
        }
        assert_eq!(parse_hex_u64("1234"), Some(0x1234));
        assert_eq!(parse_hex_u64(""), None);
        assert_eq!(parse_hex_u64("0x"), None);
        assert_eq!(parse_hex_u64("zz"), None);
        assert_eq!(decode_hex("7f454c46"), Some(vec![0x7f, 0x45, 0x4c, 0x46]));
        assert_eq!(decode_hex("7f4"), None);
        assert_eq!(encode_hex(&[0x7f, 0x45]), "7f45");
    }
}
