//! # fetch-serve
//!
//! The long-lived analysis service of the reproduction: a daemon that
//! accepts binaries, answers function-start queries from a **bounded**
//! serving cache backed by a **persistent result store**, and streams
//! per-layer trace telemetry to subscribers — the deployment mode the
//! source paper (Pang et al., DSN 2021) motivates for downstream
//! binary-analysis consumers, where the same detector runs over huge
//! corpora and repeat traffic dominates.
//!
//! ## Architecture
//!
//! ```text
//!   socket ─┐                        ┌─ bounded AnalysisCache (LRU)
//!   queue  ─┼─ protocol ─ service ───┼─ ResultStore (versioned files)
//!   stdio  ─┘     │                  └─ cold compute (RecEngine)
//!                 └─ telemetry hub → subscribers
//! ```
//!
//! * [`protocol`] — the line-delimited JSON wire format: requests
//!   (`analyze`, `query`, `stats`, `subscribe`, `shutdown`), replies,
//!   and telemetry events. Deterministic rendering: a warm answer's
//!   `result` object is byte-identical to the cold one.
//! * [`service`] — [`AnalysisService`], the transport-agnostic core.
//!   Answer order: bounded cache → persistent store (promoting hits
//!   into the cache) → cold compute (persisting the new result).
//! * [`store`] — [`ResultStore`]: one atomic, versioned, checksummed
//!   file per `(content fingerprint, pipeline id)`, holding the full
//!   [`fetch_core::DetectionResult`] *including its trace*, via
//!   [`fetch_core::serialize_result`]. A restarted daemon answers warm;
//!   a corrupted file is rejected and healed, never misread.
//! * [`server`] — the transports: Unix-socket accept loop, directory
//!   queue (`in/*.json` → `out/*.json`), and stdio.
//! * [`json`] — the minimal dependency-free JSON tree under all of it.
//!
//! ## Example
//!
//! In-process use (the transports are optional — harnesses drive the
//! service directly; `fetch-bench`'s `perf_snapshot` publishes the
//! cold / cache-hit / store-hit latencies as the `serve` group):
//!
//! ```
//! use fetch_serve::protocol::{AnalyzeInput, Reply, Request, ServeSource};
//! use fetch_serve::service::{AnalysisService, ServeConfig};
//! use fetch_core::Pipeline;
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(1));
//! let elf = fetch_binary::write_elf(&case.binary);
//! let mut service = AnalysisService::new(&ServeConfig::default()).unwrap();
//! let request = Request::Analyze {
//!     input: AnalyzeInput::Bytes(elf),
//!     pipeline: Pipeline::fetch(),
//! };
//! let (cold, warm) = match (service.handle(request.clone()), service.handle(request)) {
//!     (Reply::Analyze(c), Reply::Analyze(w)) => (c, w),
//!     other => panic!("{other:?}"),
//! };
//! assert_eq!(cold.source, ServeSource::Cold);
//! assert_eq!(warm.source, ServeSource::CacheHit);
//! assert_eq!(*cold.result, *warm.result);
//! ```
//!
//! Daemon use: `fetch-serve daemon --socket /tmp/fetch.sock --store
//! /var/cache/fetch --cache-capacity 4096`, then `fetch-serve client
//! --socket /tmp/fetch.sock --analyze ./a.out`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;

pub use protocol::{AnalyzeReply, Reply, Request, ServeSource};
pub use server::{serve, serve_io, ServeSummary, ServerOptions};
pub use service::{AnalysisService, ServeConfig, TelemetryHub};
pub use store::{ResultStore, StoreError};
