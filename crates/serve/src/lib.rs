//! # fetch-serve
//!
//! The long-lived analysis service of the reproduction: a concurrent,
//! fault-tolerant daemon that accepts binaries, answers function-start
//! queries from a **bounded** serving cache backed by a **persistent,
//! crash-safe result store**, and streams per-layer trace telemetry to
//! subscribers — the deployment mode the source paper (Pang et al.,
//! DSN 2021) motivates for downstream binary-analysis consumers, where
//! the same detector runs over huge corpora and repeat traffic
//! dominates.
//!
//! ## Architecture
//!
//! ```text
//!   socket ──▶ worker pool ─┐            ┌─ bounded AnalysisCache (LRU,
//!   queue  ──▶ accept loop ─┼─ service ──┤    request coalescing)
//!   stdio  ─────────────────┘     │      ├─ ResultStore (crash-safe,
//!                                 │      │    recovery sweep + GC)
//!            FaultPlan ───────────┤      └─ cold compute (engine pool)
//!            telemetry hub ◀──────┘
//! ```
//!
//! * [`protocol`] — the line-delimited JSON wire format: requests
//!   (`analyze`, `reanalyze`, `query`, `stats`, `subscribe`,
//!   `shutdown`), replies, and telemetry events. Deterministic
//!   rendering: a warm answer's `result` object is byte-identical to
//!   the cold one. Every failure is a *structured* error
//!   (`bad_request` / `too_large` / `busy` / `not_found` / `internal`),
//!   and request lines / inline images are hard-capped
//!   ([`protocol::MAX_LINE_BYTES`], [`protocol::MAX_INLINE_BYTES`]).
//! * [`service`] — [`AnalysisService`], the transport-agnostic core.
//!   `Sync`: one instance serves every worker. Answer order: bounded
//!   cache → persistent store (promoting hits into the cache) →
//!   *coalesced* cold compute — concurrent requests for one uncached
//!   key elect a single leader and share its answer, so N identical
//!   requests cost exactly one compute. `reanalyze` answers a *new
//!   version* of a known binary through the delta ladder
//!   ([`fetch_core::run_delta`]): verbatim reuse when the persisted
//!   [`fetch_core::ImageDigest`] proves the patch answer-preserving
//!   (source `"delta"`, `stats.delta` counters), decode-warm or cold
//!   otherwise — always byte-identical to a cold `analyze`.
//! * [`store`] — [`ResultStore`]: one atomic, versioned, checksummed
//!   file per `(content fingerprint, pipeline id)`, holding the full
//!   [`fetch_core::DetectionResult`] *including its trace* and the
//!   image's [`fetch_core::ImageDigest`], via
//!   [`fetch_core::serialize_result_with_digest`]. Opening runs a
//!   recovery sweep (orphaned temps reaped, invalid entries
//!   quarantined); a [`store::GcPolicy`] bounds the store by entries /
//!   bytes / age. A corrupted file is rejected and healed, never
//!   misread; pre-digest entries load digest-less and heal on the next
//!   warm analyze.
//! * [`server`] — the transports: a Unix-socket accept loop feeding a
//!   bounded worker pool with per-connection deadlines and `busy` load
//!   shedding, a directory queue (`in/*.json` → `out/*.json`, bad files
//!   quarantined to `failed/`), and stdio.
//! * [`fault`] — [`FaultPlan`]: deterministic fault injection at named
//!   sites in the store and the transports, driven by the
//!   `FETCH_FAULT_PLAN` env var or `--fault-plan`, so tests and chaos
//!   CI runs exercise the same binary they ship.
//! * [`json`] — the minimal dependency-free JSON tree under all of it.
//!
//! ## The answer path under failure
//!
//! Every failure mode has a defined, observable outcome — never a hang,
//! a panic, or a wrong answer:
//!
//! | failure | outcome |
//! |---|---|
//! | store entry corrupt/truncated | rejected by checksum, recomputed cold, overwritten (`store_errors`); the startup sweep quarantines it |
//! | store write fails | answer still served; warmth degraded (logged) |
//! | crash mid store-write | temp file reaped by the next startup sweep; no live key ever refers to a partial file |
//! | cold compute fails (leader) | waiters wake and elect a new leader; the failed request gets a structured `internal` error |
//! | pending queue full | connection shed with structured `busy` (`shed_busy`) |
//! | request over size caps | structured `too_large` (`rejected_too_large`) |
//! | queue file malformed/unreadable | one grace poll, then moved to `failed/` with an error reply (`queue_quarantined`) |
//! | queue reply write fails | input kept; retried next poll (handling is idempotent through the cache) |
//! | client stalls or goes silent | connection dropped at the read/write deadline |
//!
//! ## Knobs
//!
//! | knob | flag | default |
//! |---|---|---|
//! | worker threads | `--jobs` | 4 |
//! | pending-connection bound | `--queue-depth` | 64 |
//! | read/write deadline | `--io-timeout-ms` | 30 000 |
//! | cache entries / bytes | `--cache-capacity` / `--cache-bytes` | unbounded |
//! | store GC: entries / bytes / age | `--store-max-entries` / `--store-max-bytes` / `--store-max-age-secs` | unbounded |
//! | fault plan | `--fault-plan` / `FETCH_FAULT_PLAN` | empty |
//! | log level | `--log-level` | `info` |
//!
//! ## Observability
//!
//! The daemon carries a full runtime-observability layer built on
//! [`fetch_obs`] (note the naming split: `fetch-obs` is *runtime*
//! telemetry — counters, latency histograms, spans, logging — while
//! the `fetch-metrics` crate is the paper's *accuracy* metrics,
//! precision/recall against ground truth; they share nothing):
//!
//! * **Registry-backed counters.** Every counter the `stats` reply
//!   reports is an `Arc<AtomicU64>` registered into one
//!   [`fetch_obs::Registry`] — the `metrics` verb and the `stats` verb
//!   read the *same atomics*, so the two can never drift (asserted
//!   exactly, under concurrent fault-armed load, by the
//!   `obs_reconciliation` property test and the `serve_load` harness).
//!   The partition identity holds by construction:
//!   `fetch_requests_total == cache_hits + store_hits + delta_hits +
//!   cold + coalesced + errors + shed_busy`.
//! * **Latency histograms.** Log-bucketed ([`fetch_obs::Histogram`])
//!   per-source request latency (`fetch_request_us{source="…"}`, one
//!   observation per answer-path request), pending-queue wait,
//!   reply-write, coalescing leader/waiter walls, store save/load, and
//!   per-layer pipeline walls (`fetch_layer_wall_us{layer="…"}`,
//!   recorded on fresh computes only — replayed traces are not
//!   re-counted).
//! * **The `metrics` verb.** `{"cmd":"metrics"}` returns both a
//!   Prometheus-style text exposition (`text`) and the same snapshot as
//!   structured JSON (`metrics`). Gauges (cache/store residency) are
//!   refreshed at exposition time. Every [`FaultPlan`] site appears as
//!   `fetch_fault_fired_total{site="…"}` — zeros included, so a chaos
//!   run can assert where its plan landed.
//! * **Request IDs.** Every reply envelope carries a per-daemon
//!   monotonic `req_id` (stamped at the transport; `result` bytes are
//!   unaffected), and telemetry `request`/`layer` events carry the same
//!   id — one grep correlates a reply with its event stream and any
//!   log lines it produced.
//! * **Structured logging.** [`fetch_obs::logmsg`] replaces ad-hoc
//!   stderr prints: `level seconds req_id message`, gated by
//!   `--log-level` (`off`..`trace`).
//!
//! `perf_snapshot`'s `obs` group prices the layer itself: the
//! instrumented answer path must hold the same 10 ms large-corpus
//! budget as the bare pipeline, with the histogram-record and
//! exposition micro-costs published alongside.
//!
//! ## Example
//!
//! In-process use (the transports are optional — harnesses drive the
//! service directly; `fetch-bench`'s `perf_snapshot` publishes the
//! cold / cache-hit / store-hit latencies and the concurrency sweep as
//! the `serve` group):
//!
//! ```
//! use fetch_serve::protocol::{AnalyzeInput, Reply, Request, ServeSource};
//! use fetch_serve::service::{AnalysisService, ServeConfig};
//! use fetch_core::Pipeline;
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(1));
//! let elf = fetch_binary::write_elf(&case.binary);
//! let service = AnalysisService::new(&ServeConfig::default()).unwrap();
//! let request = Request::Analyze {
//!     input: AnalyzeInput::Bytes(elf),
//!     pipeline: Pipeline::fetch(),
//! };
//! let (cold, warm) = match (service.handle(request.clone()), service.handle(request)) {
//!     (Reply::Analyze(c), Reply::Analyze(w)) => (c, w),
//!     other => panic!("{other:?}"),
//! };
//! assert_eq!(cold.source, ServeSource::Cold);
//! assert_eq!(warm.source, ServeSource::CacheHit);
//! assert_eq!(*cold.result, *warm.result);
//! ```
//!
//! Daemon use: `fetch-serve daemon --socket /tmp/fetch.sock --store
//! /var/cache/fetch --cache-capacity 4096 --jobs 8`, then `fetch-serve
//! client --socket /tmp/fetch.sock --analyze ./a.out`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;

pub use fault::{FaultKind, FaultPlan};
pub use protocol::{
    AnalyzeReply, DeltaCounters, ErrorCode, MetricsReply, Reply, Request, ServeSource,
};
pub use server::{serve, serve_io, ServeSummary, ServerOptions};
pub use service::{AnalysisService, ServeConfig, TelemetryHub};
pub use store::{GcPolicy, ResultStore, StoreError, StoreLifecycle};
