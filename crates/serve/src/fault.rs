//! Deterministic fault injection for the serving stack: a [`FaultPlan`]
//! names *sites* (fixed instrumentation points in the store and the
//! transports) and arms each with a [`FaultKind`] — an I/O error, a
//! short (torn) write, a single-byte corruption, or a stall-then-resume
//! — optionally bounded to a firing count.
//!
//! The plan is data, not code: tests, the chaos CI step, and manual
//! runs all drive the *same binary* via the `FETCH_FAULT_PLAN`
//! environment variable or the daemon's `--fault-plan` flag. An empty
//! plan (the default) is a no-op with one atomic load per site, so the
//! instrumentation stays compiled into production paths.
//!
//! ## Spec grammar
//!
//! ```text
//! plan  := rule ("," rule)*
//! rule  := site "=" kind ["#" count]          count omitted = unlimited
//! kind  := "io" | "short" | "corrupt" | "stall:" millis
//! ```
//!
//! e.g. `store.save=short#1,store.load=corrupt#2,conn.read=stall:50`.
//!
//! ## Sites
//!
//! | site            | where it fires                                       |
//! |-----------------|------------------------------------------------------|
//! | `store.save`    | persisting a result ([`crate::ResultStore::save`])    |
//! | `store.load`    | loading a result ([`crate::ResultStore::load`])       |
//! | `queue.reply`   | writing a directory-queue reply file                 |
//! | `conn.read`     | reading a request line off a socket/stdio transport  |
//! | `conn.write`    | writing a reply line to a socket/stdio transport     |
//! | `service.compute` | just before a cold compute (stall widens the      |
//! |                 | coalescing window; io makes the compute fail)        |
//!
//! What each kind means is site-local: a `short` on `store.save`
//! persists a truncated entry (the crash-mid-write shape the recovery
//! sweep must heal); a `corrupt` on `store.load` flips one byte of the
//! file image in memory (the checksum must reject it); `stall` sleeps
//! and then proceeds at every site. Sites ignore kinds that cannot
//! apply to them (a `short` on `conn.read` behaves like `io`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an armed fault does when it fires (see the [module docs](self)
/// for per-site semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected [`std::io::Error`].
    Io,
    /// Only a prefix of the payload is written (torn write) or read.
    Short,
    /// One byte of the payload is flipped in memory.
    Corrupt,
    /// The operation sleeps for the given time, then proceeds normally.
    Stall(Duration),
}

/// One armed rule: a site, a kind, and how many firings remain.
#[derive(Debug)]
struct FaultRule {
    site: String,
    kind: FaultKind,
    /// Remaining firings; `u64::MAX` means unlimited.
    remaining: AtomicU64,
}

/// A set of armed fault rules (see the [module docs](self)). The empty
/// plan never fires; [`FaultPlan::fire`] is the single entry point the
/// instrumented sites call.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// `Arc`-backed so the daemon can register the very same atomic
    /// into its metric registry (`fetch_faults_injected_total`).
    fired: Arc<AtomicU64>,
    /// Per-site firing counters, indexed like [`FaultPlan::SITES`] —
    /// surfaced by the daemon's `metrics` exposition so a chaos run can
    /// see *where* the plan landed, not just that it did.
    fired_by_site: [Arc<AtomicU64>; 6],
}

impl FaultPlan {
    /// The site name for store writes.
    pub const STORE_SAVE: &'static str = "store.save";
    /// The site name for store reads.
    pub const STORE_LOAD: &'static str = "store.load";
    /// The site name for directory-queue reply writes.
    pub const QUEUE_REPLY: &'static str = "queue.reply";
    /// The site name for transport request reads.
    pub const CONN_READ: &'static str = "conn.read";
    /// The site name for transport reply writes.
    pub const CONN_WRITE: &'static str = "conn.write";
    /// The site name armed just before a cold compute.
    pub const COMPUTE: &'static str = "service.compute";

    /// Every instrumented site, for spec validation and docs.
    pub const SITES: [&'static str; 6] = [
        Self::STORE_SAVE,
        Self::STORE_LOAD,
        Self::QUEUE_REPLY,
        Self::CONN_READ,
        Self::CONN_WRITE,
        Self::COMPUTE,
    ];

    /// Parses a plan spec (see the [module docs](self) for the
    /// grammar). The empty string is the empty plan.
    ///
    /// # Errors
    ///
    /// A message naming the malformed rule — unknown sites and kinds
    /// are rejected, not ignored, so a typo cannot silently disarm a
    /// chaos run.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let (site, rest) = rule
                .split_once('=')
                .ok_or_else(|| format!("fault rule {rule:?} needs site=kind"))?;
            let site = site.trim();
            if !Self::SITES.contains(&site) {
                return Err(format!(
                    "unknown fault site {site:?} (known: {})",
                    Self::SITES.join(", ")
                ));
            }
            let (kind_text, count) = match rest.split_once('#') {
                Some((k, n)) => {
                    let n: u64 = n.trim().parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        format!("fault count in {rule:?} must be a positive integer")
                    })?;
                    (k.trim(), n)
                }
                None => (rest.trim(), u64::MAX),
            };
            let kind = match kind_text {
                "io" => FaultKind::Io,
                "short" => FaultKind::Short,
                "corrupt" => FaultKind::Corrupt,
                _ => match kind_text.strip_prefix("stall:") {
                    Some(ms) => {
                        let ms: u64 = ms
                            .parse()
                            .map_err(|_| format!("stall millis in {rule:?} must be an integer"))?;
                        FaultKind::Stall(Duration::from_millis(ms))
                    }
                    None => {
                        return Err(format!(
                            "unknown fault kind {kind_text:?} in {rule:?} \
                             (known: io, short, corrupt, stall:<ms>)"
                        ))
                    }
                },
            };
            rules.push(FaultRule {
                site: site.to_string(),
                kind,
                remaining: AtomicU64::new(count),
            });
        }
        Ok(FaultPlan {
            rules,
            ..FaultPlan::default()
        })
    }

    /// Builds the plan from the `FETCH_FAULT_PLAN` environment variable
    /// (unset or empty = the empty plan).
    ///
    /// # Errors
    ///
    /// The [`FaultPlan::parse`] error for a malformed spec — callers
    /// should fail startup loudly rather than run an unfaulted binary a
    /// chaos harness believes is faulted.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("FETCH_FAULT_PLAN") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether no rule is armed (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Fires the first armed rule for `site`, if any. Decrements the
    /// rule's budget; a [`FaultKind::Stall`] sleeps *here* and returns
    /// `None` (the site proceeds normally afterwards — stall-then-
    /// resume), so call sites only ever handle `Io`/`Short`/`Corrupt`.
    pub fn fire(&self, site: &str) -> Option<FaultKind> {
        if self.rules.is_empty() {
            return None;
        }
        for rule in self.rules.iter().filter(|r| r.site == site) {
            // Claim one firing; skip rules whose budget ran out.
            let claimed = rule
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    if n == 0 {
                        None
                    } else if n == u64::MAX {
                        Some(u64::MAX)
                    } else {
                        Some(n - 1)
                    }
                })
                .is_ok();
            if !claimed {
                continue;
            }
            self.fired.fetch_add(1, Ordering::Relaxed);
            if let Some(idx) = Self::SITES.iter().position(|s| *s == site) {
                self.fired_by_site[idx].fetch_add(1, Ordering::Relaxed);
            }
            if let FaultKind::Stall(wait) = rule.kind {
                std::thread::sleep(wait);
                return None;
            }
            return Some(rule.kind);
        }
        None
    }

    /// Total faults fired so far (stalls included) — surfaced by the
    /// daemon's `stats` reply so a chaos run can prove the plan armed.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Per-site firing counts, in [`FaultPlan::SITES`] order — always
    /// all six sites (zeros included), so the `metrics` exposition
    /// lists every instrumented site whether or not it fired.
    pub fn fired_by_site(&self) -> [(&'static str, u64); 6] {
        let mut out = [("", 0u64); 6];
        for (i, site) in Self::SITES.iter().enumerate() {
            out[i] = (site, self.fired_by_site[i].load(Ordering::Relaxed));
        }
        out
    }

    /// The shared atomic behind [`FaultPlan::fired`], for registry
    /// backing (the exposition reads the plan's own counter).
    pub fn fired_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.fired)
    }

    /// The shared atomics behind the per-site counters, in
    /// [`FaultPlan::SITES`] order, for registry backing.
    pub fn site_counter_handles(&self) -> [(&'static str, Arc<AtomicU64>); 6] {
        let mut i = 0;
        Self::SITES.map(|site| {
            let pair = (site, Arc::clone(&self.fired_by_site[i]));
            i += 1;
            pair
        })
    }

    /// The injected error every `Io` firing surfaces: stable text, so
    /// operators and tests can tell injected failures from real ones.
    pub fn injected_error(site: &str) -> std::io::Error {
        std::io::Error::other(format!("injected fault at {site}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_counts_and_rejects_garbage() {
        let plan = FaultPlan::parse("store.save=short#1, store.load=corrupt#2").unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.fire(FaultPlan::STORE_SAVE), Some(FaultKind::Short));
        assert_eq!(plan.fire(FaultPlan::STORE_SAVE), None, "budget of 1 spent");
        assert_eq!(plan.fire(FaultPlan::STORE_LOAD), Some(FaultKind::Corrupt));
        assert_eq!(plan.fire(FaultPlan::STORE_LOAD), Some(FaultKind::Corrupt));
        assert_eq!(plan.fire(FaultPlan::STORE_LOAD), None);
        assert_eq!(plan.fired(), 3);
        let by_site = plan.fired_by_site();
        assert_eq!(by_site[0], (FaultPlan::STORE_SAVE, 1));
        assert_eq!(by_site[1], (FaultPlan::STORE_LOAD, 2));
        assert_eq!(
            by_site[2],
            (FaultPlan::QUEUE_REPLY, 0),
            "unfired sites listed"
        );

        assert!(FaultPlan::parse("").unwrap().is_empty());
        for bad in [
            "store.save",
            "nowhere=io",
            "store.save=explode",
            "store.save=io#0",
            "store.save=io#x",
            "conn.read=stall:soon",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unlimited_rules_keep_firing_and_stalls_resume() {
        let plan = FaultPlan::parse("conn.write=io,conn.read=stall:1").unwrap();
        for _ in 0..10 {
            assert_eq!(plan.fire(FaultPlan::CONN_WRITE), Some(FaultKind::Io));
        }
        let t = std::time::Instant::now();
        assert_eq!(
            plan.fire(FaultPlan::CONN_READ),
            None,
            "stall returns None: the site resumes"
        );
        assert!(t.elapsed() >= Duration::from_millis(1));
        assert_eq!(plan.fire(FaultPlan::QUEUE_REPLY), None, "unarmed site");
    }
}
