//! The persistent result store: `(content fingerprint, pipeline id)` →
//! a serialized [`DetectionResult`] on disk, so a restarted daemon
//! answers warm.
//!
//! Each entry is one file in the store directory, named
//! `<fingerprint:016x>-<fnv(pipeline id):016x>.fres` and containing a
//! store header (magic, version, the *full* fingerprint and pipeline id
//! — the hash in the filename is only a rendezvous, never trusted)
//! followed by the core wire encoding of the result
//! ([`fetch_core::serialize_result`]: itself versioned and
//! checksummed). Writes go through a temp file + atomic rename, so a
//! crashed daemon never leaves a half-written entry under a live key;
//! loads verify header, key match, and checksum, so a truncated or
//! bit-flipped file is a [`StoreError`], never a wrong answer.
//!
//! ## Lifecycle
//!
//! Opening a store runs a **recovery sweep** ([`ResultStore::compact`]):
//! orphaned temp files (a crash between write and rename) are reaped,
//! and entries that fail validation — truncated, bit-flipped, or
//! foreign — are moved to a `quarantine/` subdirectory and counted,
//! never silently deleted and never served. After the sweep, every
//! resident entry is known-loadable.
//!
//! A [`GcPolicy`] bounds the store by entry count, total bytes, and/or
//! entry age. The policy is enforced after each save (cheap counter
//! check; a full sweep only when a bound is exceeded) and during
//! [`ResultStore::compact`]: the oldest entries (by modification time)
//! are removed until the store fits. Eviction only ever drops persisted
//! warmth — a later request recomputes the identical answer.
//!
//! Writes are serialized behind an internal lock and temp names carry a
//! per-process counter, so concurrent workers of one daemon never race
//! on the same temp file. All fault-injection sites of the store
//! ([`FaultPlan::STORE_SAVE`], [`FaultPlan::STORE_LOAD`]) live in this
//! module; an armed plan can force I/O errors, torn writes, silent
//! corruption, and stalls to prove the recovery machinery works.

use crate::fault::{FaultKind, FaultPlan};
use fetch_core::{
    deserialize_result_full, serialize_result_with_digest, DetectionResult, ImageDigest,
    SerialError,
};
use fetch_obs::{logmsg, Histogram, LogLevel};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Magic bytes opening every store file.
pub const STORE_MAGIC: [u8; 4] = *b"FSTO";
/// Current store-file version ([`ResultStore::load`] rejects others).
pub const STORE_VERSION: u16 = 1;
/// Store-file extension.
pub const STORE_EXT: &str = "fres";
/// Subdirectory quarantined entries are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// A failed store operation.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (with context).
    Io(io::Error),
    /// The file's store header is not this format/version.
    BadHeader(&'static str),
    /// The file's embedded key disagrees with the requested one
    /// (filename-hash collision or a misplaced file).
    KeyMismatch,
    /// The embedded result encoding is corrupt.
    Malformed(SerialError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadHeader(what) => write!(f, "bad store file header: {what}"),
            StoreError::KeyMismatch => write!(f, "store file key mismatch"),
            StoreError::Malformed(e) => write!(f, "corrupt stored result: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// FNV-1a over the pipeline id, for the filename rendezvous only (the
/// full id inside the file is what is verified).
fn id_hash(pipeline_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pipeline_id.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Age/size bounds of a [`ResultStore`]. The default is unbounded —
/// nothing is ever garbage-collected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Maximum resident entries (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Maximum total entry bytes on disk (`None` = unbounded).
    pub max_bytes: Option<u64>,
    /// Maximum entry age since last write (`None` = unbounded).
    pub max_age: Option<Duration>,
}

impl GcPolicy {
    /// Whether any bound is configured.
    pub fn is_bounded(&self) -> bool {
        self.max_entries.is_some() || self.max_bytes.is_some() || self.max_age.is_some()
    }

    fn over(&self, entries: usize, bytes: u64) -> bool {
        self.max_entries.is_some_and(|m| entries > m) || self.max_bytes.is_some_and(|m| bytes > m)
    }
}

/// Monotone lifecycle counters of one [`ResultStore`] instance,
/// surfaced through the daemon's `stats` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreLifecycle {
    /// Orphaned temp files reaped (startup recovery + compaction).
    pub recovered_temps: u64,
    /// Entries that failed validation and were moved to `quarantine/`.
    pub quarantined: u64,
    /// Entries removed by age/size GC.
    pub gc_removed: u64,
    /// Bytes freed by age/size GC.
    pub gc_bytes_freed: u64,
}

/// The on-disk result store (see the [module docs](self)).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    gc: GcPolicy,
    faults: Arc<FaultPlan>,
    /// Serializes writers: concurrent workers persist one at a time
    /// (writes are short; the answer path never blocks on this lock).
    write_lock: Mutex<()>,
    /// Per-process temp-name counter (pid alone is not unique across
    /// the worker pool).
    tmp_seq: AtomicU64,
    /// Approximate residency, maintained across saves so the GC check
    /// after each save is counter-only (a sweep rescans exactly).
    entries_approx: AtomicU64,
    bytes_approx: AtomicU64,
    recovered_temps: AtomicU64,
    quarantined: AtomicU64,
    gc_removed: AtomicU64,
    gc_bytes_freed: AtomicU64,
    /// Save/load latency histograms, bound by the daemon via
    /// [`ResultStore::bind_obs`] (`None` outside a daemon — the store
    /// then times nothing).
    save_us: Option<Arc<Histogram>>,
    load_us: Option<Arc<Histogram>>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir` with no GC
    /// bounds and no fault plan, running the recovery sweep.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        ResultStore::open_with(dir, GcPolicy::default(), Arc::new(FaultPlan::default()))
    }

    /// Opens (creating if needed) the store rooted at `dir`, runs the
    /// startup recovery sweep ([`ResultStore::compact`]: orphaned temps
    /// reaped, invalid entries quarantined, GC bounds applied), and
    /// arms the given fault plan on every subsequent store operation.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        gc: GcPolicy,
        faults: Arc<FaultPlan>,
    ) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = ResultStore {
            dir,
            gc,
            faults,
            write_lock: Mutex::new(()),
            tmp_seq: AtomicU64::new(0),
            entries_approx: AtomicU64::new(0),
            bytes_approx: AtomicU64::new(0),
            recovered_temps: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
            gc_bytes_freed: AtomicU64::new(0),
            save_us: None,
            load_us: None,
        };
        store.compact()?;
        Ok(store)
    }

    /// Binds save/load latency histograms (microseconds per operation,
    /// failures included — a failed save still cost its wall time).
    /// The daemon calls this once at startup with histograms from its
    /// metric registry; an unbound store records nothing.
    pub fn bind_obs(&mut self, save_us: Arc<Histogram>, load_us: Arc<Histogram>) {
        self.save_us = Some(save_us);
        self.load_us = Some(load_us);
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured GC policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc
    }

    /// The lifecycle counters of this store instance.
    pub fn lifecycle(&self) -> StoreLifecycle {
        StoreLifecycle {
            recovered_temps: self.recovered_temps.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            gc_removed: self.gc_removed.load(Ordering::Relaxed),
            gc_bytes_freed: self.gc_bytes_freed.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, fingerprint: u64, pipeline_id: &str) -> PathBuf {
        self.dir.join(format!(
            "{fingerprint:016x}-{:016x}.{STORE_EXT}",
            id_hash(pipeline_id)
        ))
    }

    fn is_entry(path: &Path) -> bool {
        path.extension().and_then(|e| e.to_str()) == Some(STORE_EXT)
    }

    fn is_temp(path: &Path) -> bool {
        path.extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.starts_with("tmp"))
    }

    /// Persists `result` under `(fingerprint, pipeline_id)`, atomically
    /// replacing any previous entry for the key. Writers are serialized
    /// behind the store's write lock; the save also triggers the GC
    /// check, so a bounded store never grows past its policy.
    ///
    /// # Errors
    ///
    /// I/O failures (injected ones included), or
    /// [`StoreError::Malformed`] when the result uses an
    /// out-of-vocabulary layer name (it could never be loaded back).
    pub fn save(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: &DetectionResult,
    ) -> Result<(), StoreError> {
        self.save_with_digest(fingerprint, pipeline_id, result, None)
    }

    /// [`ResultStore::save`], also persisting the [`ImageDigest`] the
    /// result was computed against (inside the same checksummed blob —
    /// the store header is unchanged), so a later `reanalyze` of a new
    /// version of the same binary can delta against this entry.
    /// Re-saving an existing key with a digest *heals* a pre-digest
    /// entry in place.
    pub fn save_with_digest(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: &DetectionResult,
        digest: Option<&ImageDigest>,
    ) -> Result<(), StoreError> {
        let t0 = Instant::now();
        let out = self.save_with_digest_inner(fingerprint, pipeline_id, result, digest);
        if let Some(h) = &self.save_us {
            h.record(t0.elapsed().as_micros() as u64);
        }
        out
    }

    fn save_with_digest_inner(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: &DetectionResult,
        digest: Option<&ImageDigest>,
    ) -> Result<(), StoreError> {
        let blob = serialize_result_with_digest(result, digest).map_err(StoreError::Malformed)?;
        let mut file = Vec::with_capacity(blob.len() + 32);
        file.extend_from_slice(&STORE_MAGIC);
        file.extend_from_slice(&STORE_VERSION.to_le_bytes());
        file.extend_from_slice(&fingerprint.to_le_bytes());
        let id_len: u16 = pipeline_id
            .len()
            .try_into()
            .map_err(|_| StoreError::BadHeader("pipeline id too long"))?;
        file.extend_from_slice(&id_len.to_le_bytes());
        file.extend_from_slice(pipeline_id.as_bytes());
        file.extend_from_slice(&blob);

        match self.faults.fire(FaultPlan::STORE_SAVE) {
            Some(FaultKind::Io) => {
                return Err(FaultPlan::injected_error(FaultPlan::STORE_SAVE).into())
            }
            // Torn write: only a prefix reaches disk, but the rename
            // still lands — the crash-mid-write shape. Load rejects it;
            // the recovery sweep quarantines it.
            Some(FaultKind::Short) => file.truncate(file.len() / 2),
            // Silent media corruption: one payload byte flips on the
            // way out. The serialized checksum catches it on load.
            Some(FaultKind::Corrupt) => {
                let mid = file.len() / 2;
                file[mid] ^= 0x01;
            }
            Some(FaultKind::Stall(_)) | None => {}
        }

        let path = self.path_for(fingerprint, pipeline_id);
        let tmp = path.with_extension(format!(
            "tmp{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let _writing = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
            let previous = fs::metadata(&path).map(|m| m.len()).ok();
            fs::write(&tmp, &file)?;
            if let Err(e) = fs::rename(&tmp, &path) {
                let _ = fs::remove_file(&tmp);
                return Err(e.into());
            }
            match previous {
                Some(old) => {
                    self.bytes_approx.fetch_sub(old, Ordering::Relaxed);
                }
                None => {
                    self.entries_approx.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.bytes_approx
                .fetch_add(file.len() as u64, Ordering::Relaxed);
        }
        self.maybe_gc()?;
        Ok(())
    }

    /// Loads the entry for `(fingerprint, pipeline_id)`.
    ///
    /// `Ok(None)` when the key has no entry; an error when an entry
    /// exists but is unreadable, mismatched, or corrupt — the caller
    /// decides whether to recompute (the daemon does, then overwrites
    /// the bad entry).
    pub fn load(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Result<Option<DetectionResult>, StoreError> {
        Ok(self
            .load_full(fingerprint, pipeline_id)?
            .map(|(result, _)| result))
    }

    /// [`ResultStore::load`], also returning the persisted
    /// [`ImageDigest`] when the entry has one. Entries written before
    /// digests existed (blob format v1, or a v2 save without a digest)
    /// load with `digest = None`; the serving layer heals them by
    /// re-saving with a digest on its next analyze of that image.
    pub fn load_full(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Result<Option<(DetectionResult, Option<ImageDigest>)>, StoreError> {
        let t0 = Instant::now();
        let out = self.load_full_inner(fingerprint, pipeline_id);
        if let Some(h) = &self.load_us {
            h.record(t0.elapsed().as_micros() as u64);
        }
        out
    }

    fn load_full_inner(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Result<Option<(DetectionResult, Option<ImageDigest>)>, StoreError> {
        let path = self.path_for(fingerprint, pipeline_id);
        let mut bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match self.faults.fire(FaultPlan::STORE_LOAD) {
            Some(FaultKind::Io) => {
                return Err(FaultPlan::injected_error(FaultPlan::STORE_LOAD).into())
            }
            Some(FaultKind::Short) => {
                let keep = bytes.len() / 2;
                bytes.truncate(keep);
            }
            Some(FaultKind::Corrupt) => {
                let mid = bytes.len() / 2;
                if let Some(b) = bytes.get_mut(mid) {
                    *b ^= 0x01;
                }
            }
            Some(FaultKind::Stall(_)) | None => {}
        }
        Self::decode(&bytes, fingerprint, pipeline_id).map(Some)
    }

    /// Verifies and decodes one entry image against its expected key.
    fn decode(
        bytes: &[u8],
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Result<(DetectionResult, Option<ImageDigest>), StoreError> {
        let min = STORE_MAGIC.len() + 2 + 8 + 2;
        if bytes.len() < min {
            return Err(StoreError::BadHeader("file shorter than header"));
        }
        if bytes[..4] != STORE_MAGIC {
            return Err(StoreError::BadHeader("bad magic"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2"));
        if version != STORE_VERSION {
            return Err(StoreError::BadHeader("unsupported version"));
        }
        let stored_fp = u64::from_le_bytes(bytes[6..14].try_into().expect("8"));
        let id_len = u16::from_le_bytes(bytes[14..16].try_into().expect("2")) as usize;
        let id_end = 16 + id_len;
        if bytes.len() < id_end {
            return Err(StoreError::BadHeader("file shorter than its pipeline id"));
        }
        let stored_id = std::str::from_utf8(&bytes[16..id_end])
            .map_err(|_| StoreError::BadHeader("non-UTF-8 pipeline id"))?;
        if stored_fp != fingerprint || stored_id != pipeline_id {
            return Err(StoreError::KeyMismatch);
        }
        deserialize_result_full(&bytes[id_end..]).map_err(StoreError::Malformed)
    }

    /// Validates an entry file in place (header, embedded key sanity,
    /// payload checksum) without an expected key: the embedded key only
    /// has to be self-consistent with the *filename* rendezvous.
    fn validate_file(path: &Path) -> Result<(), StoreError> {
        let bytes = fs::read(path)?;
        let min = STORE_MAGIC.len() + 2 + 8 + 2;
        if bytes.len() < min {
            return Err(StoreError::BadHeader("file shorter than header"));
        }
        let stored_fp = u64::from_le_bytes(bytes[6..14].try_into().expect("8"));
        let id_len = u16::from_le_bytes(bytes[14..16].try_into().expect("2")) as usize;
        let id_end = 16 + id_len;
        if bytes.len() < id_end {
            return Err(StoreError::BadHeader("file shorter than its pipeline id"));
        }
        let stored_id = std::str::from_utf8(&bytes[16..id_end])
            .map_err(|_| StoreError::BadHeader("non-UTF-8 pipeline id"))?
            .to_string();
        Self::decode(&bytes, stored_fp, &stored_id).map(|_| ())
    }

    /// The compaction sweep: reaps orphaned temp files, quarantines
    /// entries that fail validation (moved to `quarantine/`, counted,
    /// never silently deleted), rebuilds the exact residency counters,
    /// and applies the GC policy. Runs at open (the startup recovery
    /// sweep) and whenever a save pushes the store over a GC bound.
    pub fn compact(&self) -> io::Result<()> {
        let _writing = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                continue;
            }
            if Self::is_temp(&path) {
                // A crash between temp write and rename: never adopted
                // (the writer died before publishing), always reaped.
                fs::remove_file(&path)?;
                self.recovered_temps.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if !Self::is_entry(&path) {
                continue;
            }
            if let Err(e) = Self::validate_file(&path) {
                self.quarantine(&path, &e)?;
                continue;
            }
            let meta = entry.metadata()?;
            entries.push((
                path,
                meta.len(),
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            ));
        }
        self.apply_gc(&mut entries)?;
        self.entries_approx
            .store(entries.len() as u64, Ordering::Relaxed);
        self.bytes_approx.store(
            entries.iter().map(|(_, len, _)| *len).sum(),
            Ordering::Relaxed,
        );
        Ok(())
    }

    /// Moves a failed entry into `quarantine/` (falling back to
    /// deletion only if the move itself fails — the entry must never
    /// stay where it could be served).
    fn quarantine(&self, path: &Path, why: &StoreError) -> io::Result<()> {
        let qdir = self.dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir)?;
        let name = path.file_name().expect("entry file has a name");
        let target = qdir.join(name);
        if fs::rename(path, &target).is_err() {
            fs::remove_file(path)?;
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        logmsg!(
            LogLevel::Warn,
            0,
            "fetch-serve: quarantined store entry {} ({why})",
            name.to_string_lossy()
        );
        Ok(())
    }

    /// Counter-only GC check after a save; sweeps only when a bound is
    /// exceeded (age bounds sweep on every check — they cannot be
    /// tracked by counters alone, so they are only enforced when some
    /// bound is configured).
    fn maybe_gc(&self) -> Result<(), StoreError> {
        if !self.gc.is_bounded() {
            return Ok(());
        }
        let entries = self.entries_approx.load(Ordering::Relaxed) as usize;
        let bytes = self.bytes_approx.load(Ordering::Relaxed);
        if self.gc.over(entries, bytes) || self.gc.max_age.is_some() {
            self.gc_sweep()?;
        }
        Ok(())
    }

    /// Scans entries and removes the oldest until the store fits the
    /// policy (age bound first, then size bounds oldest-first).
    fn gc_sweep(&self) -> Result<(), StoreError> {
        let _writing = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() || !Self::is_entry(&path) {
                continue;
            }
            let meta = entry.metadata()?;
            entries.push((
                path,
                meta.len(),
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            ));
        }
        self.apply_gc(&mut entries)?;
        self.entries_approx
            .store(entries.len() as u64, Ordering::Relaxed);
        self.bytes_approx.store(
            entries.iter().map(|(_, len, _)| *len).sum(),
            Ordering::Relaxed,
        );
        Ok(())
    }

    /// Applies the GC policy to a scanned entry list, removing files
    /// and truncating the list to the survivors (oldest evicted first).
    fn apply_gc(&self, entries: &mut Vec<(PathBuf, u64, SystemTime)>) -> io::Result<()> {
        if !self.gc.is_bounded() {
            return Ok(());
        }
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        let now = SystemTime::now();
        let mut keep = Vec::with_capacity(entries.len());
        for (path, len, mtime) in entries.drain(..) {
            let expired = self.gc.max_age.is_some_and(|max| {
                now.duration_since(mtime)
                    .map(|age| age > max)
                    .unwrap_or(false)
            });
            if expired {
                self.gc_remove(&path, len)?;
            } else {
                keep.push((path, len, mtime));
            }
        }
        let mut total: u64 = keep.iter().map(|(_, len, _)| *len).sum();
        let mut first_kept = 0usize;
        while first_kept < keep.len() && self.gc.over(keep.len() - first_kept, total) {
            let (path, len, _) = &keep[first_kept];
            self.gc_remove(path, *len)?;
            total -= *len;
            first_kept += 1;
        }
        keep.drain(..first_kept);
        *entries = keep;
        Ok(())
    }

    fn gc_remove(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::remove_file(path)?;
        self.gc_removed.fetch_add(1, Ordering::Relaxed);
        self.gc_bytes_freed.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the key has a (syntactically present, not validated)
    /// entry.
    pub fn contains(&self, fingerprint: u64, pipeline_id: &str) -> bool {
        self.path_for(fingerprint, pipeline_id).exists()
    }

    /// Entry count and total disk bytes (by directory scan), plus the
    /// lifecycle counters of this instance.
    pub fn stats(&self) -> io::Result<crate::protocol::StoreStats> {
        let mut entries = 0usize;
        let mut disk_bytes = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_dir() && Self::is_entry(&path) {
                entries += 1;
                disk_bytes += entry.metadata()?.len();
            }
        }
        let lifecycle = self.lifecycle();
        Ok(crate::protocol::StoreStats {
            entries,
            disk_bytes,
            recovered_temps: lifecycle.recovered_temps,
            quarantined: lifecycle.quarantined,
            gc_removed: lifecycle.gc_removed,
            gc_bytes_freed: lifecycle.gc_bytes_freed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_core::{content_fingerprint, Pipeline};
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_and_persists_across_instances() {
        let dir = scratch_dir("roundtrip");
        let case = synthesize(&SynthConfig::small(51));
        let pipeline = Pipeline::fetch();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);

        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(fp, &pipeline.id()));
        assert!(store.load(fp, &pipeline.id()).unwrap().is_none());
        store.save(fp, &pipeline.id(), &result).unwrap();
        assert!(store.contains(fp, &pipeline.id()));

        // A second instance over the same directory — the restart shape.
        let restarted = ResultStore::open(&dir).unwrap();
        let loaded = restarted.load(fp, &pipeline.id()).unwrap().unwrap();
        assert_eq!(loaded, result);
        let stats = restarted.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.disk_bytes > 0);
        assert_eq!(stats.quarantined, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_rejected() {
        let dir = scratch_dir("corrupt");
        let case = synthesize(&SynthConfig::small(52));
        let pipeline = Pipeline::parse("FDE+Rec").unwrap();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);
        let store = ResultStore::open(&dir).unwrap();
        store.save(fp, &pipeline.id(), &result).unwrap();
        let path = store.path_for(fp, &pipeline.id());

        // Truncation: drop the tail.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::Malformed(_))
        ));

        // Bit flip in the payload.
        let mut flipped = full.clone();
        let mid = flipped.len() - 20;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load(fp, &pipeline.id()).is_err());

        // Wrong key inside a well-formed file: flip the stored
        // fingerprint bytes.
        let mut wrong_key = full.clone();
        wrong_key[6] ^= 0xff;
        fs::write(&path, &wrong_key).unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::KeyMismatch)
        ));

        // Not a store file at all.
        fs::write(&path, b"junkjunkjunkjunkjunkjunk").unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::BadHeader(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_sweep_reaps_temps_and_quarantines_truncated_entries() {
        let dir = scratch_dir("recovery");
        let case = synthesize(&SynthConfig::small(53));
        let pipeline = Pipeline::fetch();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);
        {
            let store = ResultStore::open(&dir).unwrap();
            store.save(fp, &pipeline.id(), &result).unwrap();
        }
        // Simulate a crash: an orphaned temp file and a truncated entry.
        let entry = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| ResultStore::is_entry(p))
            .expect("one persisted entry");
        let full = fs::read(&entry).unwrap();
        fs::write(entry.with_extension("tmp999-0"), b"orphan").unwrap();
        let torn = dir.join(format!(
            "{:016x}-{:016x}.{STORE_EXT}",
            0xdead_u64, 0xbeef_u64
        ));
        fs::write(&torn, &full[..full.len() / 3]).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.recovered_temps, 1, "orphan temp reaped");
        assert_eq!(stats.quarantined, 1, "truncated entry quarantined");
        assert_eq!(stats.entries, 1, "the valid entry survives");
        assert!(
            dir.join(QUARANTINE_DIR)
                .join(torn.file_name().unwrap())
                .exists(),
            "quarantined, not silently deleted"
        );
        // The surviving entry still loads.
        assert!(store.load(fp, &pipeline.id()).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_bounds_entry_count_oldest_first() {
        let dir = scratch_dir("gc");
        let pipeline = Pipeline::parse("FDE").unwrap();
        let gc = GcPolicy {
            max_entries: Some(2),
            ..GcPolicy::default()
        };
        let store = ResultStore::open_with(&dir, gc, Arc::new(FaultPlan::default())).unwrap();
        let mut fps = Vec::new();
        for seed in 55u64..59 {
            let case = synthesize(&SynthConfig::small(seed));
            let fp = content_fingerprint(&case.binary);
            store
                .save(fp, &pipeline.id(), &pipeline.run(&case.binary))
                .unwrap();
            fps.push(fp);
            // mtime resolution can be coarse; order by distinct writes.
            std::thread::sleep(Duration::from_millis(15));
        }
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 2, "GC must hold the entry bound");
        assert_eq!(stats.gc_removed, 2);
        assert!(stats.gc_bytes_freed > 0);
        assert!(!store.contains(fps[0], &pipeline.id()), "oldest evicted");
        assert!(store.contains(fps[3], &pipeline.id()), "newest kept");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The serial-blob checksum (FNV-1a, domain `"serial1v"`),
    /// replicated so the test below can forge a pre-digest (v1) blob.
    /// Drifts loudly: if core changes its checksum this test fails.
    fn serial_checksum(payload: &[u8]) -> u64 {
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x7365_7269_616c_3176; // "serial1v"
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(PRIME);
        };
        mix(&mut h, payload.len() as u64);
        let mut chunks = payload.chunks_exact(8);
        for c in &mut chunks {
            mix(&mut h, u64::from_le_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            mix(&mut h, b as u64);
        }
        h
    }

    #[test]
    fn digests_persist_and_v1_entries_load_digestless_then_heal() {
        use fetch_core::{ImageDigest, RESULT_VERSION_V1};
        let dir = scratch_dir("digest");
        let case = synthesize(&SynthConfig::small(57));
        let pipeline = Pipeline::fetch();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);
        let digest = ImageDigest::compute(&case.binary, fp);

        let store = ResultStore::open(&dir).unwrap();
        store
            .save_with_digest(fp, &pipeline.id(), &result, Some(&digest))
            .unwrap();
        let (back, d) = store.load_full(fp, &pipeline.id()).unwrap().unwrap();
        assert_eq!(back, result);
        assert_eq!(d.as_ref(), Some(&digest));
        // The digest-blind accessor still works on a digest-ful entry.
        assert_eq!(store.load(fp, &pipeline.id()).unwrap().unwrap(), result);

        // Rewrite the entry's blob as a pre-digest v1 encoding — the
        // shape of an entry persisted before digests (and the v3 scan
        // counters) existed. The forged blob's checksum is re-derived
        // locally so a drift in core's checksum fails here loudly.
        let path = store.path_for(fp, &pipeline.id());
        let file = fs::read(&path).unwrap();
        let id_len = u16::from_le_bytes(file[14..16].try_into().unwrap()) as usize;
        let blob_at = 16 + id_len;
        let v1 = fetch_core::serialize_result_legacy(&result, RESULT_VERSION_V1).unwrap();
        let sum = serial_checksum(&v1[..v1.len() - 8]).to_le_bytes();
        assert_eq!(v1[v1.len() - 8..], sum, "core checksum drifted");
        let mut forged = file[..blob_at].to_vec();
        forged.extend_from_slice(&v1);
        fs::write(&path, &forged).unwrap();

        // A restart's recovery sweep must keep the v1 entry...
        let restarted = ResultStore::open(&dir).unwrap();
        assert_eq!(restarted.stats().unwrap().quarantined, 0);
        // ...and it loads with no digest.
        let (old, od) = restarted.load_full(fp, &pipeline.id()).unwrap().unwrap();
        assert_eq!(old, result);
        assert!(od.is_none(), "pre-digest entries read as digest-less");

        // Healing: a re-save with the digest upgrades the entry.
        restarted
            .save_with_digest(fp, &pipeline.id(), &result, Some(&digest))
            .unwrap();
        let (_, healed) = restarted.load_full(fp, &pipeline.id()).unwrap().unwrap();
        assert_eq!(healed.as_ref(), Some(&digest));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_store_faults_error_or_heal_never_misread() {
        let dir = scratch_dir("faults");
        let case = synthesize(&SynthConfig::small(56));
        let pipeline = Pipeline::fetch();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);
        let plan = Arc::new(
            FaultPlan::parse("store.save=io#1,store.save=short#1,store.load=corrupt#1").unwrap(),
        );
        let store = ResultStore::open_with(&dir, GcPolicy::default(), plan.clone()).unwrap();

        // Firing 1: the save errors out loudly.
        assert!(matches!(
            store.save(fp, &pipeline.id(), &result),
            Err(StoreError::Io(_))
        ));
        // Firing 2: a torn write persists a truncated entry.
        store.save(fp, &pipeline.id(), &result).unwrap();
        // Firing 3: the armed corrupt flip lands on top of the torn
        // entry — rejected either way.
        assert!(store.load(fp, &pipeline.id()).is_err());
        // With the plan spent, the truncation alone is still caught by
        // validation — rejected, never misread.
        assert!(store.load(fp, &pipeline.id()).is_err());
        // A clean save heals it and the same key loads cleanly.
        store.save(fp, &pipeline.id(), &result).unwrap();
        assert_eq!(store.load(fp, &pipeline.id()).unwrap().unwrap(), result);
        assert_eq!(plan.fired(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
