//! The persistent result store: `(content fingerprint, pipeline id)` →
//! a serialized [`DetectionResult`] on disk, so a restarted daemon
//! answers warm.
//!
//! Each entry is one file in the store directory, named
//! `<fingerprint:016x>-<fnv(pipeline id):016x>.fres` and containing a
//! store header (magic, version, the *full* fingerprint and pipeline id
//! — the hash in the filename is only a rendezvous, never trusted)
//! followed by the core wire encoding of the result
//! ([`fetch_core::serialize_result`]: itself versioned and
//! checksummed). Writes go through a temp file + atomic rename, so a
//! crashed daemon never leaves a half-written entry under a live key;
//! loads verify header, key match, and checksum, so a truncated or
//! bit-flipped file is a [`StoreError`], never a wrong answer.

use fetch_core::{deserialize_result, serialize_result, DetectionResult, SerialError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every store file.
pub const STORE_MAGIC: [u8; 4] = *b"FSTO";
/// Current store-file version ([`ResultStore::load`] rejects others).
pub const STORE_VERSION: u16 = 1;
/// Store-file extension.
pub const STORE_EXT: &str = "fres";

/// A failed store operation.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (with context).
    Io(io::Error),
    /// The file's store header is not this format/version.
    BadHeader(&'static str),
    /// The file's embedded key disagrees with the requested one
    /// (filename-hash collision or a misplaced file).
    KeyMismatch,
    /// The embedded result encoding is corrupt.
    Malformed(SerialError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadHeader(what) => write!(f, "bad store file header: {what}"),
            StoreError::KeyMismatch => write!(f, "store file key mismatch"),
            StoreError::Malformed(e) => write!(f, "corrupt stored result: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// FNV-1a over the pipeline id, for the filename rendezvous only (the
/// full id inside the file is what is verified).
fn id_hash(pipeline_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pipeline_id.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The on-disk result store (see the [module docs](self)).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fingerprint: u64, pipeline_id: &str) -> PathBuf {
        self.dir.join(format!(
            "{fingerprint:016x}-{:016x}.{STORE_EXT}",
            id_hash(pipeline_id)
        ))
    }

    /// Persists `result` under `(fingerprint, pipeline_id)`, atomically
    /// replacing any previous entry for the key.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Malformed`] when the result uses
    /// an out-of-vocabulary layer name (it could never be loaded back).
    pub fn save(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: &DetectionResult,
    ) -> Result<(), StoreError> {
        let blob = serialize_result(result).map_err(StoreError::Malformed)?;
        let mut file = Vec::with_capacity(blob.len() + 32);
        file.extend_from_slice(&STORE_MAGIC);
        file.extend_from_slice(&STORE_VERSION.to_le_bytes());
        file.extend_from_slice(&fingerprint.to_le_bytes());
        let id_len: u16 = pipeline_id
            .len()
            .try_into()
            .map_err(|_| StoreError::BadHeader("pipeline id too long"))?;
        file.extend_from_slice(&id_len.to_le_bytes());
        file.extend_from_slice(pipeline_id.as_bytes());
        file.extend_from_slice(&blob);

        let path = self.path_for(fingerprint, pipeline_id);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, &file)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Loads the entry for `(fingerprint, pipeline_id)`.
    ///
    /// `Ok(None)` when the key has no entry; an error when an entry
    /// exists but is unreadable, mismatched, or corrupt — the caller
    /// decides whether to recompute (the daemon does, then overwrites
    /// the bad entry).
    pub fn load(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Result<Option<DetectionResult>, StoreError> {
        let path = self.path_for(fingerprint, pipeline_id);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let min = STORE_MAGIC.len() + 2 + 8 + 2;
        if bytes.len() < min {
            return Err(StoreError::BadHeader("file shorter than header"));
        }
        if bytes[..4] != STORE_MAGIC {
            return Err(StoreError::BadHeader("bad magic"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2"));
        if version != STORE_VERSION {
            return Err(StoreError::BadHeader("unsupported version"));
        }
        let stored_fp = u64::from_le_bytes(bytes[6..14].try_into().expect("8"));
        let id_len = u16::from_le_bytes(bytes[14..16].try_into().expect("2")) as usize;
        let id_end = 16 + id_len;
        if bytes.len() < id_end {
            return Err(StoreError::BadHeader("file shorter than its pipeline id"));
        }
        let stored_id = std::str::from_utf8(&bytes[16..id_end])
            .map_err(|_| StoreError::BadHeader("non-UTF-8 pipeline id"))?;
        if stored_fp != fingerprint || stored_id != pipeline_id {
            return Err(StoreError::KeyMismatch);
        }
        deserialize_result(&bytes[id_end..])
            .map(Some)
            .map_err(StoreError::Malformed)
    }

    /// Whether the key has a (syntactically present, not validated)
    /// entry.
    pub fn contains(&self, fingerprint: u64, pipeline_id: &str) -> bool {
        self.path_for(fingerprint, pipeline_id).exists()
    }

    /// Entry count and total disk bytes, by directory scan.
    pub fn stats(&self) -> io::Result<crate::protocol::StoreStats> {
        let mut entries = 0usize;
        let mut disk_bytes = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(STORE_EXT) {
                entries += 1;
                disk_bytes += entry.metadata()?.len();
            }
        }
        Ok(crate::protocol::StoreStats {
            entries,
            disk_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_core::{content_fingerprint, Pipeline};
    use fetch_synth::{synthesize, SynthConfig};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fetch-serve-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_and_persists_across_instances() {
        let dir = scratch_dir("roundtrip");
        let case = synthesize(&SynthConfig::small(51));
        let pipeline = Pipeline::fetch();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);

        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(fp, &pipeline.id()));
        assert!(store.load(fp, &pipeline.id()).unwrap().is_none());
        store.save(fp, &pipeline.id(), &result).unwrap();
        assert!(store.contains(fp, &pipeline.id()));

        // A second instance over the same directory — the restart shape.
        let restarted = ResultStore::open(&dir).unwrap();
        let loaded = restarted.load(fp, &pipeline.id()).unwrap().unwrap();
        assert_eq!(loaded, result);
        let stats = restarted.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.disk_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_rejected() {
        let dir = scratch_dir("corrupt");
        let case = synthesize(&SynthConfig::small(52));
        let pipeline = Pipeline::parse("FDE+Rec").unwrap();
        let result = pipeline.run(&case.binary);
        let fp = content_fingerprint(&case.binary);
        let store = ResultStore::open(&dir).unwrap();
        store.save(fp, &pipeline.id(), &result).unwrap();
        let path = store.path_for(fp, &pipeline.id());

        // Truncation: drop the tail.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::Malformed(_))
        ));

        // Bit flip in the payload.
        let mut flipped = full.clone();
        let mid = flipped.len() - 20;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load(fp, &pipeline.id()).is_err());

        // Wrong key inside a well-formed file: flip the stored
        // fingerprint bytes.
        let mut wrong_key = full.clone();
        wrong_key[6] ^= 0xff;
        fs::write(&path, &wrong_key).unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::KeyMismatch)
        ));

        // Not a store file at all.
        fs::write(&path, b"junkjunkjunkjunkjunkjunk").unwrap();
        assert!(matches!(
            store.load(fp, &pipeline.id()),
            Err(StoreError::BadHeader(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
