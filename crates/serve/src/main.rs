//! The `fetch-serve` binary: daemon and client modes over the
//! `fetch_serve` library.
//!
//! ```text
//! fetch-serve daemon [--socket PATH] [--queue DIR] [--stdio]
//!                    [--store DIR] [--cache-capacity N] [--cache-bytes B]
//!                    [--jobs N] [--intra-jobs N] [--queue-depth N]
//!                    [--io-timeout-ms M]
//!                    [--store-max-entries N] [--store-max-bytes B]
//!                    [--store-max-age-secs S] [--fault-plan SPEC]
//! fetch-serve client --socket PATH
//!                    (--analyze FILE [--pipeline SPEC | --tool NAME]
//!                     | --query FP [--pipeline SPEC]
//!                     | --stats | --subscribe | --shutdown | --json LINE)
//! ```
//!
//! The daemon serves until a `shutdown` request arrives. The client
//! sends one request line and prints the reply line (`--subscribe`
//! keeps printing telemetry events until the daemon goes away) — small
//! enough for shell scripting, no client library needed.
//!
//! `--fault-plan` (or the `FETCH_FAULT_PLAN` env var; the flag wins)
//! arms deterministic fault injection — see [`fetch_serve::fault`] for
//! the spec grammar. A malformed plan fails startup loudly: a chaos
//! harness must never silently run an unfaulted binary.
//!
//! `--log-level LEVEL` (off, error, warn, info, debug, trace; default
//! `info`) sets the daemon's structured stderr log level — lines are
//! `level seconds req_id message`, with `-` for messages outside any
//! request.

use fetch_core::{Pipeline, Tool};
use fetch_obs::{logmsg, LogLevel};
use fetch_serve::fault::FaultPlan;
use fetch_serve::protocol::{parse_hex_u64, AnalyzeInput, Request};
use fetch_serve::server::{serve, serve_io, ServerOptions};
use fetch_serve::service::{AnalysisService, ServeConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  fetch-serve daemon [--socket PATH] [--queue DIR] [--stdio] \
         [--store DIR]\n                     [--cache-capacity N] [--cache-bytes B] [--poll-ms M]\n                     \
         [--jobs N] [--intra-jobs N] [--queue-depth N] [--io-timeout-ms M]\n                     \
         [--store-max-entries N] [--store-max-bytes B] [--store-max-age-secs S]\n                     \
         [--fault-plan SPEC] [--log-level LEVEL]\n  \
         fetch-serve client --socket PATH (--analyze FILE [--pipeline SPEC | --tool NAME]\n                     \
         | --query FP [--pipeline SPEC] | --stats | --metrics | --subscribe | --shutdown | --json LINE)"
    );
    exit(2)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("daemon") => daemon(&args[2..]),
        Some("client") => client(&args[2..]),
        _ => usage(),
    }
}

/// Pulls the value following a flag out of an argument list.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => fail(format_args!("{flag} takes a value")),
    }
}

fn daemon(args: &[String]) {
    let mut opts = ServerOptions::default();
    let mut config = ServeConfig::default();
    let mut stdio = false;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => opts.socket = Some(PathBuf::from(flag_value(args, &mut i, "--socket"))),
            "--queue" => opts.queue = Some(PathBuf::from(flag_value(args, &mut i, "--queue"))),
            "--store" => {
                config.store_dir = Some(PathBuf::from(flag_value(args, &mut i, "--store")))
            }
            "--stdio" => stdio = true,
            "--cache-capacity" => {
                // Zero would evict every entry on arrival — reject it
                // (matching the bench parser) instead of silently
                // serving everything cold.
                let n: usize = flag_value(args, &mut i, "--cache-capacity")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--cache-capacity takes a positive entry count"));
                config.cache_capacity.max_entries = Some(n);
            }
            "--cache-bytes" => {
                let n: usize = flag_value(args, &mut i, "--cache-bytes")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--cache-bytes takes a positive byte count"));
                config.cache_capacity.max_bytes = Some(n);
            }
            "--poll-ms" => {
                let ms: u64 = flag_value(args, &mut i, "--poll-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--poll-ms takes milliseconds"));
                opts.poll = Some(std::time::Duration::from_millis(ms));
            }
            "--jobs" => {
                let n: usize = flag_value(args, &mut i, "--jobs")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--jobs takes a positive worker count"));
                opts.jobs = Some(n);
            }
            "--intra-jobs" => {
                let n: usize = flag_value(args, &mut i, "--intra-jobs")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--intra-jobs takes a positive worker count"));
                config.intra_jobs = n;
            }
            "--queue-depth" => {
                let n: usize = flag_value(args, &mut i, "--queue-depth")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--queue-depth takes a positive bound"));
                opts.queue_depth = Some(n);
            }
            "--io-timeout-ms" => {
                let ms: u64 = flag_value(args, &mut i, "--io-timeout-ms")
                    .parse()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .unwrap_or_else(|| fail("--io-timeout-ms takes positive milliseconds"));
                opts.io_timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--store-max-entries" => {
                let n: usize = flag_value(args, &mut i, "--store-max-entries")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--store-max-entries takes a positive count"));
                config.store_gc.max_entries = Some(n);
            }
            "--store-max-bytes" => {
                let n: u64 = flag_value(args, &mut i, "--store-max-bytes")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| fail("--store-max-bytes takes a positive byte count"));
                config.store_gc.max_bytes = Some(n);
            }
            "--store-max-age-secs" => {
                let s: u64 = flag_value(args, &mut i, "--store-max-age-secs")
                    .parse()
                    .ok()
                    .filter(|s| *s > 0)
                    .unwrap_or_else(|| fail("--store-max-age-secs takes positive seconds"));
                config.store_gc.max_age = Some(std::time::Duration::from_secs(s));
            }
            "--fault-plan" => {
                let spec = flag_value(args, &mut i, "--fault-plan");
                fault_plan =
                    Some(FaultPlan::parse(spec).unwrap_or_else(|e| fail(format_args!("{e}"))));
            }
            "--log-level" => {
                let level: LogLevel = flag_value(args, &mut i, "--log-level")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("{e}")));
                fetch_obs::set_log_level(level);
            }
            other => fail(format_args!("unknown daemon flag {other:?}")),
        }
        i += 1;
    }
    // The flag wins over FETCH_FAULT_PLAN; a malformed env spec fails
    // startup loudly either way.
    config.faults = std::sync::Arc::new(match fault_plan {
        Some(plan) => plan,
        None => FaultPlan::from_env().unwrap_or_else(|e| fail(format_args!("{e}"))),
    });
    let service = match AnalysisService::new(&config) {
        Ok(service) => service,
        Err(e) => fail(format_args!("cannot start service: {e}")),
    };
    if stdio {
        let stdin = std::io::stdin();
        let mut out = StdoutSink;
        if let Err(e) = serve_io(&service, stdin.lock(), &mut out) {
            fail(format_args!("stdio transport failed: {e}"));
        }
        return;
    }
    match serve(&service, &opts) {
        Ok(summary) => logmsg!(
            LogLevel::Info,
            0,
            "fetch-serve: shut down after {} connections ({} shed), {} queue files ({} quarantined)",
            summary.connections,
            summary.shed,
            summary.queue_files,
            summary.queue_quarantined
        ),
        Err(e) => fail(format_args!("serve loop failed: {e}")),
    }
}

/// A cloneable stdout writer (the stdio transport hands clones to the
/// telemetry hub).
#[derive(Clone)]
struct StdoutSink;

impl Write for StdoutSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::stdout().write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stdout().flush()
    }
}

fn client(args: &[String]) {
    let mut socket: Option<PathBuf> = None;
    let mut request: Option<String> = None;
    let mut analyze: Option<PathBuf> = None;
    let mut query: Option<u64> = None;
    let mut pipeline: Option<Pipeline> = None;
    let mut subscribe = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => socket = Some(PathBuf::from(flag_value(args, &mut i, "--socket"))),
            "--analyze" => analyze = Some(PathBuf::from(flag_value(args, &mut i, "--analyze"))),
            "--query" => {
                let fp = flag_value(args, &mut i, "--query");
                query = Some(
                    parse_hex_u64(fp).unwrap_or_else(|| fail("--query takes a hex fingerprint")),
                );
            }
            "--pipeline" => {
                let spec = flag_value(args, &mut i, "--pipeline");
                pipeline =
                    Some(Pipeline::parse(spec).unwrap_or_else(|e| fail(format_args!("{e}"))));
            }
            "--tool" => {
                let name = flag_value(args, &mut i, "--tool");
                let tool = Tool::from_name(name)
                    .unwrap_or_else(|| fail(format_args!("unknown tool {name:?}")));
                pipeline = Some(Pipeline::for_tool(tool));
            }
            "--stats" => request = Some(Request::Stats.to_line()),
            "--metrics" => request = Some(Request::Metrics.to_line()),
            "--shutdown" => request = Some(Request::Shutdown.to_line()),
            "--subscribe" => subscribe = true,
            "--json" => request = Some(flag_value(args, &mut i, "--json").to_string()),
            other => fail(format_args!("unknown client flag {other:?}")),
        }
        i += 1;
    }
    let line = if subscribe {
        Request::Subscribe.to_line()
    } else if let Some(path) = analyze {
        Request::Analyze {
            input: AnalyzeInput::Path(path),
            pipeline: pipeline.unwrap_or_else(Pipeline::fetch),
        }
        .to_line()
    } else if let Some(fingerprint) = query {
        Request::Query {
            fingerprint,
            pipeline_id: pipeline.unwrap_or_else(Pipeline::fetch).id(),
        }
        .to_line()
    } else {
        match request {
            Some(line) => line,
            None => usage(),
        }
    };
    let socket = socket.unwrap_or_else(|| fail("client needs --socket PATH"));
    run_client(&socket, &line, subscribe);
}

#[cfg(unix)]
fn run_client(socket: &std::path::Path, line: &str, keep_reading: bool) {
    use std::io::{BufRead, BufReader};
    let stream = std::os::unix::net::UnixStream::connect(socket)
        .unwrap_or_else(|e| fail(format_args!("cannot connect to {}: {e}", socket.display())));
    let mut writer = stream
        .try_clone()
        .unwrap_or_else(|e| fail(format_args!("{e}")));
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .unwrap_or_else(|e| fail(format_args!("send failed: {e}")));
    let reader = BufReader::new(stream);
    for reply in reader.lines() {
        match reply {
            Ok(reply) => println!("{reply}"),
            Err(e) => fail(format_args!("read failed: {e}")),
        }
        if !keep_reading {
            break;
        }
    }
}

#[cfg(not(unix))]
fn run_client(_socket: &std::path::Path, _line: &str, _keep_reading: bool) {
    fail("the client requires Unix-domain sockets on this platform")
}
