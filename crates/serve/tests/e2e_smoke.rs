//! End-to-end smoke test of the daemon, over the real socket transport:
//! start `fetch-serve`, submit a corpus binary twice, subscribe to
//! telemetry, shut down cleanly, restart over the same store directory,
//! and assert the second and post-restart answers are cache/store hits
//! whose rendered `result` objects are **byte-identical** to the cold
//! one. This is the CI smoke step for the serving subsystem.

#![cfg(unix)]

use fetch_binary::write_elf;
use fetch_core::CacheCapacity;
use fetch_core::Pipeline;
use fetch_serve::json::Json;
use fetch_serve::protocol::{parse_hex_u64, AnalyzeInput, Request};
use fetch_serve::server::{serve, ServerOptions};
use fetch_serve::service::{AnalysisService, ServeConfig};
use fetch_serve::ServeSummary;
use fetch_synth::{synthesize, SynthConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fetch-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a daemon thread on `socket`, waits until it accepts.
fn start_daemon(
    socket: PathBuf,
    config: ServeConfig,
) -> std::thread::JoinHandle<std::io::Result<ServeSummary>> {
    let handle = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let service = AnalysisService::new(&config)?;
            serve(
                &service,
                &ServerOptions {
                    socket: Some(socket),
                    poll: Some(Duration::from_millis(2)),
                    ..ServerOptions::default()
                },
            )
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if UnixStream::connect(&socket).is_ok() {
            return handle;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon did not start listening on {}", socket.display());
}

/// One request, one reply, over a fresh connection.
fn roundtrip(socket: &Path, request: &Request) -> Json {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .write_all(format!("{}\n", request.to_line()).as_bytes())
        .expect("send");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    Json::parse(&reply).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
}

fn expect_source(reply: &Json, source: &str) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    assert_eq!(
        reply.get("source").and_then(Json::as_str),
        Some(source),
        "{reply}"
    );
}

/// The deterministic payload of an analysis reply.
fn result_text(reply: &Json) -> String {
    reply.get("result").expect("result object").to_string()
}

#[test]
fn daemon_serves_cache_and_store_hits_byte_identical_across_restart() {
    let dir = scratch_dir("restart");
    let store_dir = dir.join("store");
    let socket = dir.join("fetch.sock");

    // A corpus binary, submitted by path like a production client would.
    let mut cfg = SynthConfig::small(901);
    cfg.n_funcs = 40;
    let case = synthesize(&cfg);
    let elf = write_elf(&case.binary);
    let elf_path = dir.join("sample.elf");
    std::fs::write(&elf_path, &elf).unwrap();

    let config = ServeConfig {
        store_dir: Some(store_dir.clone()),
        cache_capacity: CacheCapacity::entries(64),
        ..ServeConfig::default()
    };
    let analyze = Request::Analyze {
        input: AnalyzeInput::Path(elf_path.clone()),
        pipeline: Pipeline::fetch(),
    };

    // ---- First daemon lifetime: cold, then cache hit. ----
    let daemon = start_daemon(socket.clone(), config.clone());

    // A telemetry subscriber registered before any work.
    let mut sub = UnixStream::connect(&socket).unwrap();
    sub.write_all(format!("{}\n", Request::Subscribe.to_line()).as_bytes())
        .unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut sub_reader = BufReader::new(sub);
    let mut line = String::new();
    sub_reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"subscribed\":true"), "{line}");

    let cold = roundtrip(&socket, &analyze);
    expect_source(&cold, "cold");
    let cold_result = result_text(&cold);
    let fingerprint = cold
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(parse_hex_u64)
        .expect("fingerprint");

    let cached = roundtrip(&socket, &analyze);
    expect_source(&cached, "cache");
    assert_eq!(
        result_text(&cached),
        cold_result,
        "cache hit must render the byte-identical result"
    );

    // Query by fingerprint answers warm too.
    let queried = roundtrip(
        &socket,
        &Request::Query {
            fingerprint,
            pipeline_id: Pipeline::fetch().id(),
        },
    );
    expect_source(&queried, "cache");
    assert_eq!(result_text(&queried), cold_result);

    // Telemetry: the subscriber saw a request event per answer plus one
    // layer event per pipeline layer, warm or cold.
    let expected_events = 3 * (1 + Pipeline::fetch().len());
    let mut events = Vec::new();
    for _ in 0..expected_events {
        let mut event = String::new();
        sub_reader.read_line(&mut event).expect("telemetry event");
        events.push(event);
    }
    assert!(
        events[0].contains("\"event\":\"request\"") && events[0].contains("\"source\":\"cold\"")
    );
    assert!(events[1].contains("\"event\":\"layer\"") && events[1].contains("\"layer\":\"FDE\""));
    assert!(events[5].contains("\"source\":\"cache\""));

    // Stats expose the new cache counters.
    let stats = roundtrip(&socket, &Request::Stats);
    let cache_stats = stats.get("cache").expect("cache stats");
    assert_eq!(cache_stats.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache_stats.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache_stats.get("evictions").and_then(Json::as_u64), Some(0));
    assert_eq!(cache_stats.get("entries").and_then(Json::as_u64), Some(1));
    assert!(cache_stats.get("bytes").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        stats
            .get("store")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );

    // Clean shutdown.
    let bye = roundtrip(&socket, &Request::Shutdown);
    assert_eq!(bye.get("shutdown").and_then(Json::as_bool), Some(true));
    let summary = daemon.join().expect("daemon thread").expect("serve loop");
    assert!(summary.connections >= 5);
    assert!(!socket.exists(), "socket file removed on shutdown");

    // ---- Second daemon lifetime: same store, fresh cache. ----
    let daemon = start_daemon(socket.clone(), config);
    let restored = roundtrip(&socket, &analyze);
    expect_source(&restored, "store");
    assert_eq!(
        result_text(&restored),
        cold_result,
        "post-restart answer must be byte-identical to the cold run"
    );
    // Promotion into the cache: the next answer is a cache hit.
    let warm = roundtrip(&socket, &analyze);
    expect_source(&warm, "cache");
    assert_eq!(result_text(&warm), cold_result);
    let stats = roundtrip(&socket, &Request::Stats);
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("store_hits"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("cold"))
            .and_then(Json::as_u64),
        Some(0),
        "the restarted daemon never computed"
    );
    roundtrip(&socket, &Request::Shutdown);
    daemon.join().expect("daemon thread").expect("serve loop");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_rejects_malformed_requests_and_keeps_serving() {
    let dir = scratch_dir("errors");
    let socket = dir.join("fetch.sock");
    let daemon = start_daemon(socket.clone(), ServeConfig::default());

    // A malformed line gets an error reply on the same connection, and
    // the next request on that connection still works.
    let mut stream = UnixStream::connect(&socket).unwrap();
    stream.write_all(b"{\"cmd\":\"analyze\"}\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = Json::parse(&line).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(reply
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("path"));

    // Nonexistent path: still an error reply, not a dead daemon.
    stream
        .write_all(b"{\"cmd\":\"analyze\",\"path\":\"/nonexistent/x.elf\"}\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "{line}");

    // Garbage bytes inline: parse error surfaces as a reply.
    stream
        .write_all(b"{\"cmd\":\"analyze\",\"bytes_hex\":\"00010203\"}\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("not a loadable ELF"), "{line}");
    drop(reader);
    drop(stream);

    let bye = roundtrip(&socket, &Request::Shutdown);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    daemon.join().expect("daemon thread").expect("serve loop");
    std::fs::remove_dir_all(&dir).unwrap();
}
