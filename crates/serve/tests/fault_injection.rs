//! The chaos property of the serving subsystem: **any single injected
//! fault, at any site, in any transport, yields either a correct
//! byte-identical answer or a structured error / visible connection
//! drop — never a hang, a panic, or a wrong result** — and once the
//! fault budget is spent, service returns to normal, with the store's
//! startup recovery sweep healing whatever the fault left on disk.
//!
//! Two layers:
//! * a deterministic sweep over the full fault matrix (every
//!   [`FaultPlan`] site × every kind), each combo driven through the
//!   transport that owns the site (in-process for store/compute sites,
//!   the real Unix socket for `conn.*`, the directory queue for
//!   `queue.reply`);
//! * a property test over random *composite* plans (several sites,
//!   budgets > 1) against the in-process service across a restart.
//!
//! Every wait in here is deadline-bounded, so a hang shows up as a
//! test failure, not a stuck CI job.

#![cfg(unix)]

use fetch_binary::write_elf;
use fetch_core::Pipeline;
use fetch_serve::json::Json;
use fetch_serve::protocol::{result_json, AnalyzeInput, ErrorCode, Reply, Request};
use fetch_serve::server::{serve, ServerOptions};
use fetch_serve::service::{AnalysisService, ServeConfig};
use fetch_serve::FaultPlan;
use fetch_synth::{synthesize, SynthConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every fault kind's spec token (stalls kept short: they add latency,
/// not failures).
const KINDS: [&str; 4] = ["io", "short", "corrupt", "stall:10"];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fetch-serve-chaos-{}-{}",
        tag.replace(['.', '=', '#', ':'], "-"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The corpus binary every case analyzes, plus the fault-free reference
/// rendering its answer must match byte-for-byte.
fn reference() -> (Vec<u8>, String) {
    let case = synthesize(&SynthConfig::small(4242));
    let elf = write_elf(&case.binary);
    let service = AnalysisService::new(&ServeConfig::default()).unwrap();
    let reply = service.handle(Request::Analyze {
        input: AnalyzeInput::Bytes(elf.clone()),
        pipeline: Pipeline::fetch(),
    });
    match reply {
        Reply::Analyze(a) => (elf, result_json(&a.result).to_string()),
        other => panic!("reference run failed: {other:?}"),
    }
}

fn analyze_request(elf: &[u8]) -> Request {
    Request::Analyze {
        input: AnalyzeInput::Bytes(elf.to_vec()),
        pipeline: Pipeline::fetch(),
    }
}

/// The invariant on one in-process reply: correct and byte-identical,
/// or a structured error. Returns whether it was the correct answer.
fn check_reply(reply: &Reply, reference: &str, spec: &str) -> bool {
    match reply {
        Reply::Analyze(a) => {
            assert_eq!(
                result_json(&a.result).to_string(),
                reference,
                "spec {spec}: a successful answer must be byte-identical"
            );
            true
        }
        Reply::Error { code, message } => {
            assert!(
                !message.is_empty(),
                "spec {spec}: structured errors carry a message"
            );
            assert!(
                ErrorCode::from_token(code.token()).is_some(),
                "spec {spec}: error code must be a known wire token"
            );
            false
        }
        other => panic!("spec {spec}: unexpected reply {other:?}"),
    }
}

/// The invariant on one wire reply line (socket / queue transports).
fn check_wire_reply(line: &str, reference: &str, spec: &str) -> bool {
    let reply =
        Json::parse(line).unwrap_or_else(|e| panic!("spec {spec}: bad reply {line:?}: {e}"));
    match reply.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            let result = reply.get("result").expect("result object").to_string();
            assert_eq!(result, reference, "spec {spec}");
            true
        }
        Some(false) => {
            let code = reply.get("code").and_then(Json::as_str).unwrap_or("");
            assert!(
                ErrorCode::from_token(code).is_some(),
                "spec {spec}: unknown error code in {line:?}"
            );
            false
        }
        None => panic!("spec {spec}: reply without ok field: {line:?}"),
    }
}

/// Store/compute sites: drive the service in-process across two
/// lifetimes over one store directory — the restart is what proves the
/// recovery sweep heals whatever the fault persisted.
fn drive_in_process(spec: &str, elf: &[u8], reference: &str, dir: &Path) {
    let plan = Arc::new(FaultPlan::parse(spec).unwrap());
    let mut quarantined = 0;
    for lifetime in 0..2 {
        let service = AnalysisService::new(&ServeConfig {
            store_dir: Some(dir.join("store")),
            faults: plan.clone(),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut last_correct = false;
        for _ in 0..3 {
            last_correct = check_reply(&service.handle(analyze_request(elf)), reference, spec);
        }
        assert!(
            last_correct,
            "spec {spec} lifetime {lifetime}: once the budget is spent \
             every answer must be correct"
        );
        let stats = service.stats();
        assert_eq!(stats.requests.analyze, 3);
        quarantined = stats.store.expect("store stats").quarantined;
    }
    // A torn or corrupted persist is healed by the restart sweep.
    if spec == "store.save=short#1" || spec == "store.save=corrupt#1" {
        assert_eq!(
            quarantined, 1,
            "spec {spec}: the restart sweep must quarantine the bad entry"
        );
    }
    assert!(plan.fired() >= 1, "spec {spec} never armed its site");
}

fn wait_until(what: &str, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One request/reply over a fresh connection. `None` = the connection
/// was dropped (EOF or reset) — a *visible* failure, allowed under an
/// injected `conn.*` fault. A read past the deadline panics: that would
/// be a hang.
fn roundtrip(socket: &Path, line: &str) -> Option<String> {
    let stream = UnixStream::connect(socket).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
        return None; // dropped while writing
    }
    let mut reply = String::new();
    match BufReader::new(stream).read_line(&mut reply) {
        Ok(0) => None, // dropped before replying
        Ok(_) => Some(reply),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => None,
        Err(e) => panic!("read timed out or failed (a hang?): {e}"),
    }
}

/// `conn.*` sites: drive the real socket transport.
fn drive_socket(spec: &str, elf: &[u8], reference: &str, dir: &Path) {
    let socket = dir.join("fetch.sock");
    let plan = Arc::new(FaultPlan::parse(spec).unwrap());
    let service = AnalysisService::new(&ServeConfig {
        faults: plan.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            serve(
                &service,
                &ServerOptions {
                    socket: Some(socket.clone()),
                    poll: Some(Duration::from_millis(2)),
                    ..ServerOptions::default()
                },
            )
        });
        wait_until("daemon socket", || UnixStream::connect(&socket).is_ok());
        let request = analyze_request(elf).to_line();
        let mut last_correct = false;
        for _ in 0..4 {
            last_correct = match roundtrip(&socket, &request) {
                Some(line) => check_wire_reply(&line, reference, spec),
                None => false, // dropped: visible, never wrong
            };
        }
        assert!(
            last_correct,
            "spec {spec}: with the budget spent the transport must answer correctly"
        );
        for _ in 0..4 {
            if roundtrip(&socket, &Request::Shutdown.to_line()).is_some() {
                break;
            }
        }
        let summary = daemon.join().expect("daemon thread").expect("serve loop");
        assert!(summary.connections >= 5);
    });
    assert!(plan.fired() >= 1, "spec {spec} never armed its site");
}

/// `queue.reply`: drive the directory-queue transport. A failed reply
/// write must leave the input in place, so the next poll retries it and
/// the reply eventually lands — correct and byte-identical.
fn drive_queue(spec: &str, elf: &[u8], reference: &str, dir: &Path) {
    let elf_path = dir.join("sample.elf");
    std::fs::write(&elf_path, elf).unwrap();
    let queue = dir.join("q");
    let plan = Arc::new(FaultPlan::parse(spec).unwrap());
    let service = AnalysisService::new(&ServeConfig {
        faults: plan.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            serve(
                &service,
                &ServerOptions {
                    queue: Some(queue.clone()),
                    poll: Some(Duration::from_millis(2)),
                    ..ServerOptions::default()
                },
            )
        });
        wait_until("queue dirs", || queue.join("in").is_dir());
        let request = Request::Analyze {
            input: AnalyzeInput::Path(elf_path.clone()),
            pipeline: Pipeline::fetch(),
        };
        // Write-then-rename, like a well-behaved producer.
        let tmp = queue.join("00-a.tmp");
        std::fs::write(&tmp, format!("{}\n", request.to_line())).unwrap();
        std::fs::rename(&tmp, queue.join("in/00-a.json")).unwrap();
        let reply_path = queue.join("out/00-a.json");
        wait_until("queue reply", || reply_path.exists());
        let line = std::fs::read_to_string(&reply_path).unwrap();
        assert!(
            check_wire_reply(line.trim(), reference, spec),
            "spec {spec}: the retried queue reply must be the correct answer"
        );
        assert!(
            !queue.join("in/00-a.json").exists(),
            "spec {spec}: the input is consumed once the reply lands"
        );
        let tmp = queue.join("99-stop.tmp");
        std::fs::write(&tmp, format!("{}\n", Request::Shutdown.to_line())).unwrap();
        std::fs::rename(&tmp, queue.join("in/99-stop.json")).unwrap();
        let summary = daemon.join().expect("daemon thread").expect("serve loop");
        assert_eq!(summary.queue_quarantined, 0, "spec {spec}");
    });
    assert!(plan.fired() >= 1, "spec {spec} never armed its site");
}

/// The full matrix, deterministically: every site × every kind, one
/// firing each, through the transport that owns the site.
#[test]
fn every_single_fault_yields_a_correct_answer_or_a_structured_failure() {
    let (elf, reference) = reference();
    for site in FaultPlan::SITES {
        for kind in KINDS {
            let spec = format!("{site}={kind}#1");
            let dir = scratch_dir(&spec);
            match site {
                "conn.read" | "conn.write" => drive_socket(&spec, &elf, &reference, &dir),
                "queue.reply" => drive_queue(&spec, &elf, &reference, &dir),
                _ => drive_in_process(&spec, &elf, &reference, &dir),
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A random composite plan: several sites, budgets above one.
fn arb_plan() -> impl Strategy<Value = (String, u32)> {
    proptest::collection::vec((0usize..6, 0usize..4, 1u32..3), 1..4).prop_map(|entries| {
        let budget = entries.iter().map(|(_, _, c)| *c).sum();
        let spec = entries
            .iter()
            .map(|(s, k, c)| format!("{}={}#{}", FaultPlan::SITES[*s], KINDS[*k], c))
            .collect::<Vec<_>>()
            .join(",");
        (spec, budget)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random multi-fault plans against the in-process service across a
    /// restart: every reply is correct-and-identical or a structured
    /// error, and within `budget + 2` attempts per lifetime the answer
    /// is always correct (each compute firing can fail at most one
    /// request, and everything else degrades warmth, not answers).
    #[test]
    fn random_composite_fault_plans_never_corrupt_answers((spec, budget) in arb_plan()) {
        let (elf, reference) = reference();
        let dir = scratch_dir(&format!("prop-{budget}"));
        let plan = Arc::new(FaultPlan::parse(&spec).unwrap());
        for lifetime in 0..2 {
            let service = AnalysisService::new(&ServeConfig {
                store_dir: Some(dir.join("store")),
                faults: plan.clone(),
                ..ServeConfig::default()
            })
            .unwrap();
            let mut last_correct = false;
            for _ in 0..budget + 2 {
                last_correct =
                    check_reply(&service.handle(analyze_request(&elf)), &reference, &spec);
            }
            prop_assert!(
                last_correct,
                "spec {} lifetime {}: answers must recover within the fault budget",
                spec,
                lifetime
            );
            // The service stays fully observable under any plan.
            let stats = service.stats();
            prop_assert!(stats.requests.analyze >= u64::from(budget) + 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
