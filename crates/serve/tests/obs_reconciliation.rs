//! The observability reconciliation property: the `metrics` exposition
//! and the `stats` reply are **two reads of the same atomics**, so they
//! must agree *exactly* — under any worker width, any request mix, and
//! any fault plan — and every answer-path request must land in exactly
//! one outcome counter and exactly one `fetch_request_us{source="…"}`
//! histogram:
//!
//! ```text
//! requests_total == cache_hits + store_hits + delta_hits + cold
//!                 + coalesced + errors + shed_busy
//! sum(fetch_request_us{source=*}.count) == requests_total
//! ```
//!
//! A drift here means a path forgot (or double-) counted itself —
//! exactly the bug class ad-hoc mirrored counters breed.

use fetch_binary::write_elf;
use fetch_core::Pipeline;
use fetch_serve::json::Json;
use fetch_serve::protocol::{AnalyzeInput, Reply, Request};
use fetch_serve::service::{AnalysisService, ServeConfig};
use fetch_serve::FaultPlan;
use fetch_synth::{synthesize, SynthConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// One generated client action.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// `analyze` of corpus binary `idx`.
    Analyze(usize),
    /// `reanalyze` of binary `idx` against whatever fingerprint
    /// `prev_of` hashes to (frequently unknown — the cold tier).
    Reanalyze(usize, usize),
    /// `query` for the fingerprint of binary `idx` (may be unknown).
    Query(usize),
    /// `analyze` of garbage bytes — a structured error.
    BadAnalyze,
    /// A transport-level shed (`note_shed_busy`).
    Shed,
}

/// Corpus seeds: a tiny pool so concurrent ops collide on keys (that is
/// what exercises coalescing and cache/store hits).
const SEEDS: [u64; 3] = [401, 402, 403];

fn corpus() -> Vec<Vec<u8>> {
    SEEDS
        .iter()
        .map(|s| write_elf(&synthesize(&SynthConfig::small(*s)).binary))
        .collect()
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3).prop_map(Op::Analyze),
        ((0usize..3), (0usize..3)).prop_map(|(a, b)| Op::Reanalyze(a, b)),
        (0usize..3).prop_map(Op::Query),
        Just(Op::BadAnalyze),
        Just(Op::Shed),
    ]
}

/// Fault plans the matrix draws from — every site class represented,
/// including the empty plan.
const PLANS: [&str; 6] = [
    "",
    "store.save=io#2",
    "store.load=corrupt#2",
    "service.compute=io#1",
    "store.save=short#1,store.load=io#1",
    "service.compute=stall:5#2,store.save=io#1",
];

fn scratch_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fetch-serve-obsrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads `name` out of the metrics JSON as a plain counter value.
fn metric(json: &Json, name: &str) -> u64 {
    json.get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metric {name:?} missing from exposition: {json}"))
}

/// Sums the `count` field of every `fetch_request_us{…}` histogram.
fn request_histogram_total(json: &Json) -> u64 {
    let Json::Obj(map) = json else {
        panic!("metrics reply is not an object")
    };
    map.iter()
        .filter(|(name, _)| name.starts_with("fetch_request_us{"))
        .map(|(name, v)| {
            v.get("count")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("histogram {name:?} has no count"))
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random request mixes at random worker widths under random fault
    /// plans: `stats` and `metrics` reconcile exactly, the outcome
    /// counters partition `requests_total`, and the per-source latency
    /// histograms account for every request exactly once.
    #[test]
    fn metrics_and_stats_reconcile_exactly(
        ops in proptest::collection::vec(arb_op(), 12..40),
        workers in 1usize..5,
        plan_idx in 0usize..PLANS.len(),
    ) {
        let corpus = corpus();
        let dir = scratch_dir(plan_idx as u64 * 100 + workers as u64);
        let plan = Arc::new(FaultPlan::parse(PLANS[plan_idx]).unwrap());
        let service = AnalysisService::new(&ServeConfig {
            store_dir: Some(dir.join("store")),
            // A tiny cache forces evictions, so store hits happen too.
            cache_capacity: fetch_core::CacheCapacity::entries(2),
            faults: plan,
            ..ServeConfig::default()
        })
        .unwrap();

        // Pre-learn one fingerprint so some queries and reanalyzes hit.
        let known_fp = match service.handle(Request::Analyze {
            input: AnalyzeInput::Bytes(corpus[0].clone()),
            pipeline: Pipeline::fetch(),
        }) {
            Reply::Analyze(a) => a.fingerprint,
            // An armed compute fault may fail the warm-up; any later
            // query for this fingerprint then just counts as an error.
            _ => 0x1234_5678,
        };

        std::thread::scope(|scope| {
            for chunk in ops.chunks(ops.len().div_ceil(workers)) {
                let service = &service;
                let corpus = &corpus;
                scope.spawn(move || {
                    for op in chunk {
                        match op {
                            Op::Analyze(i) => {
                                service.handle(Request::Analyze {
                                    input: AnalyzeInput::Bytes(corpus[*i].clone()),
                                    pipeline: Pipeline::fetch(),
                                });
                            }
                            Op::Reanalyze(i, prev) => {
                                service.handle(Request::Reanalyze {
                                    prev_fingerprint: if *prev == 0 {
                                        known_fp
                                    } else {
                                        *prev as u64
                                    },
                                    input: AnalyzeInput::Bytes(corpus[*i].clone()),
                                    pipeline: Pipeline::fetch(),
                                });
                            }
                            Op::Query(i) => {
                                service.handle(Request::Query {
                                    fingerprint: if *i == 0 { known_fp } else { *i as u64 },
                                    pipeline_id: Pipeline::fetch().id(),
                                });
                            }
                            Op::BadAnalyze => {
                                service.handle(Request::Analyze {
                                    input: AnalyzeInput::Bytes(vec![0u8; 16]),
                                    pipeline: Pipeline::fetch(),
                                });
                            }
                            Op::Shed => service.note_shed_busy(),
                        }
                    }
                });
            }
        });

        let stats = service.stats();
        let r = &stats.requests;

        // The partition identity: every answer-path request lands in
        // exactly one outcome bucket.
        prop_assert_eq!(
            r.requests_total,
            r.cache_hits
                + r.store_hits
                + stats.delta.delta_hits
                + r.cold
                + r.coalesced
                + r.errors
                + r.shed_busy,
            "outcome counters must partition requests_total: {:?} delta={:?}",
            r,
            stats.delta
        );

        // The exposition reads the same atomics — equal by construction,
        // asserted anyway (a mirrored counter would drift here).
        let metrics = match service.handle(Request::Metrics) {
            Reply::Metrics(m) => m.metrics,
            other => panic!("metrics reply: {other:?}"),
        };
        prop_assert_eq!(metric(&metrics, "fetch_requests_total"), r.requests_total);
        prop_assert_eq!(metric(&metrics, "fetch_requests_errors_total"), r.errors);
        prop_assert_eq!(metric(&metrics, "fetch_requests_cold_total"), r.cold);
        prop_assert_eq!(metric(&metrics, "fetch_requests_cache_hits_total"), r.cache_hits);
        prop_assert_eq!(metric(&metrics, "fetch_requests_store_hits_total"), r.store_hits);
        prop_assert_eq!(metric(&metrics, "fetch_requests_coalesced_total"), r.coalesced);
        prop_assert_eq!(metric(&metrics, "fetch_requests_shed_busy_total"), r.shed_busy);
        prop_assert_eq!(metric(&metrics, "fetch_delta_hits_total"), stats.delta.delta_hits);
        prop_assert_eq!(metric(&metrics, "fetch_faults_injected_total"), stats.faults_injected);
        prop_assert_eq!(
            metric(&metrics, "fetch_cache_hits_total"),
            stats.cache.hits,
            "core cache counters are registry-backed too"
        );

        // Latency accounting: one histogram observation per request.
        prop_assert_eq!(
            request_histogram_total(&metrics),
            r.requests_total,
            "every request must be timed into exactly one source histogram"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
