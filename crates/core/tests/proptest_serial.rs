//! Property tests for the persistence wire format
//! ([`fetch_core::serialize_result`] / [`fetch_core::deserialize_result`]):
//! serialize→deserialize is the identity — including the timing/decode
//! telemetry that `PartialEq` ignores — and corrupted or truncated
//! encodings are always *rejected*, never misread into a plausible
//! result.

use fetch_core::{
    deserialize_result, serialize_result, DetectionResult, LayerSpec, Pipeline, KNOWN_LAYERS,
};
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (any::<u64>(), 10usize..50, 0.0f64..0.15, 0usize..6).prop_map(|(seed, n_funcs, split, asm)| {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = n_funcs;
        cfg.rates = FeatureRates {
            split_cold: split,
            asm_funcs: asm,
            ..FeatureRates::default()
        };
        cfg
    })
}

/// A random pipeline over the full vocabulary (duplicates allowed —
/// `Pipeline::new` is the permissive constructor, and persistence must
/// handle anything the executor can produce).
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    proptest::collection::vec(any::<u8>(), 1..6).prop_map(|picks| {
        let specs: Vec<LayerSpec> = picks
            .iter()
            .map(|&p| KNOWN_LAYERS[p as usize % KNOWN_LAYERS.len()].1)
            .collect();
        Pipeline::new(specs)
    })
}

/// Field-exact equality: `==` plus the instrumentation fields it
/// excludes by design.
fn identical_including_telemetry(a: &DetectionResult, b: &DetectionResult) -> bool {
    a == b
        && a.trace.len() == b.trace.len()
        && a.trace.iter().zip(&b.trace).all(|(x, y)| {
            x.wall_nanos == y.wall_nanos
                && x.decode_hits == y.decode_hits
                && x.decode_misses == y.decode_misses
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round trip: deserialize(serialize(r)) is field-identical to r,
    /// and re-serialization is byte-identical (the format is
    /// deterministic).
    #[test]
    fn round_trip_is_identity(cfg in arb_config(), pipeline in arb_pipeline()) {
        let case = synthesize(&cfg);
        let result = pipeline.run(&case.binary);
        let bytes = serialize_result(&result).expect("known-layer results serialize");
        let back = deserialize_result(&bytes).expect("own encoding loads");
        prop_assert!(
            identical_including_telemetry(&result, &back),
            "round trip lost information for pipeline {}", pipeline.id()
        );
        prop_assert_eq!(serialize_result(&back).unwrap(), bytes);
    }

    /// Any single-byte corruption and any strict truncation must be
    /// rejected with an error — never silently decoded.
    #[test]
    fn corruption_and_truncation_are_rejected(
        cfg in arb_config(),
        pipeline in arb_pipeline(),
        flip_pos in any::<u16>(),
        flip_bit in 0u32..8,
        cut in any::<u16>(),
    ) {
        let case = synthesize(&cfg);
        let result = pipeline.run(&case.binary);
        let bytes = serialize_result(&result).unwrap();

        let mut flipped = bytes.clone();
        let pos = flip_pos as usize % flipped.len();
        flipped[pos] ^= 1 << flip_bit;
        prop_assert!(
            deserialize_result(&flipped).is_err(),
            "bit flip at {pos} was not detected"
        );

        let len = cut as usize % bytes.len(); // strictly shorter
        prop_assert!(
            deserialize_result(&bytes[..len]).is_err(),
            "truncation to {len} bytes was not detected"
        );
    }
}
