//! Property tests on the FETCH detector: the paper's safety claims must
//! hold for arbitrary corpora, not just the calibrated seeds.

use fetch_core::{run_stack, FdeSeeds, Fetch, SafeRecursion};
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        25usize..70,
        0.0f64..0.15,
        0.0f64..0.12,
        0usize..12,
    )
        .prop_map(|(seed, n_funcs, split, rbp, asm)| {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = n_funcs;
            cfg.rates = FeatureRates {
                split_cold: split,
                rbp_frame: rbp,
                asm_funcs: asm,
                mislabeled_fdes: if asm > 4 { 1 } else { 0 },
                ..FeatureRates::default()
            };
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline safety claims, for arbitrary feature mixes:
    /// no unexplained false positives, no harmful false negatives.
    #[test]
    fn fetch_is_safe_on_arbitrary_corpora(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let result = Fetch::new().detect(&case.binary);
        let truth = case.truth.starts();
        let parts = case.truth.part_starts();
        let found = result.start_set();

        // Every false positive is a residual FDE part start (cold part of
        // an incomplete-CFI function) — never an invented address.
        for fp in found.difference(&truth) {
            prop_assert!(parts.contains(fp), "unexplained FP {fp:#x}");
        }

        // Every miss is harmless: tail-only or unreachable.
        for m in truth.difference(&found) {
            let f = case.truth.function_at(*m).unwrap();
            prop_assert!(
                matches!(
                    f.reach,
                    fetch_binary::Reach::TailCalled { .. } | fetch_binary::Reach::Unreachable
                ),
                "harmful miss {} ({:?})",
                f.name,
                f.reach
            );
        }
    }

    /// The repair layer is monotone on accuracy: it never *adds* false
    /// positives relative to the unrepaired pipeline.
    #[test]
    fn repair_never_adds_false_positives(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let truth = case.truth.starts();
        let without = Fetch { skip_repair: true, ..Fetch::new() }.detect(&case.binary);
        let with = Fetch::new().detect(&case.binary);
        let fp_without: Vec<u64> =
            without.start_set().difference(&truth).copied().collect();
        let fp_with: Vec<u64> = with.start_set().difference(&truth).copied().collect();
        for fp in &fp_with {
            prop_assert!(
                fp_without.contains(fp),
                "repair introduced new FP {fp:#x}"
            );
        }
        prop_assert!(fp_with.len() <= fp_without.len());
    }

    /// FDE + safe recursion never yields starts outside the FDE part set
    /// (plus deliberate mislabels): the §IV-C "no false positives" claim.
    #[test]
    fn fde_rec_adds_no_false_positives(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let r = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        let parts = case.truth.part_starts();
        for s in r.start_set() {
            let mislabel = case.truth.is_start(s + 1);
            prop_assert!(
                parts.contains(&s) || mislabel,
                "invented start {s:#x}"
            );
        }
    }
}
