//! Observational equivalence of the incremental detection substrate.
//!
//! [`DetectionState::new`] runs every recursion through the persistent
//! [`fetch_disasm::RecEngine`] (decode cache, seed-delta extension,
//! skipped fixpoint re-walks); [`DetectionState::new_reference`] re-runs
//! each recursion from scratch. For random corpora and random strategy
//! stacks the two must produce byte-identical [`DetectionResult`]s —
//! starts, provenance, and layer order.

use fetch_core::{
    run_stack, run_stack_cached, AlignmentSplit, CallFrameRepair, ControlFlowRepair,
    DetectionResult, DetectionState, EntrySeed, FdeSeeds, FunctionMerge, LinearScanStarts,
    PointerScan, PrologueMatch, SafeRecursion, SymbolSeeds, TailCallHeuristic, ThunkHeuristic,
    ToolStyle,
};
// `Strategy` names both a fetch-core trait and a proptest trait; keep the
// detection one under an alias so the proptest prelude wins the bare name.
use fetch_core::Strategy as DetectionLayer;
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        20usize..90,
        0.0f64..0.15,
        0usize..12,
        0.0f64..0.2,
        0usize..2,
    )
        .prop_map(|(seed, n_funcs, split, asm, data, mislabeled)| {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = n_funcs;
            cfg.rates = FeatureRates {
                split_cold: split,
                asm_funcs: asm,
                data_in_text: data,
                mislabeled_fdes: mislabeled,
                ..FeatureRates::default()
            };
            cfg
        })
}

/// All strategy layers, indexable so a random `Vec<u8>` becomes a stack.
fn layer_pool() -> Vec<Box<dyn DetectionLayer>> {
    vec![
        Box::new(FdeSeeds),
        Box::new(SymbolSeeds),
        Box::new(EntrySeed),
        Box::new(SafeRecursion::default()),
        Box::new(PointerScan),
        Box::new(CallFrameRepair::default()),
        Box::new(PrologueMatch {
            style: ToolStyle::Ghidra,
        }),
        Box::new(PrologueMatch {
            style: ToolStyle::Angr,
        }),
        Box::new(PrologueMatch {
            style: ToolStyle::Radare,
        }),
        Box::new(TailCallHeuristic {
            style: ToolStyle::Ghidra,
        }),
        Box::new(TailCallHeuristic {
            style: ToolStyle::Angr,
        }),
        Box::new(LinearScanStarts),
        Box::new(ControlFlowRepair),
        Box::new(FunctionMerge),
        Box::new(ThunkHeuristic),
        Box::new(AlignmentSplit),
    ]
}

fn run_layers(mut state: DetectionState<'_>, picks: &[u8]) -> DetectionResult {
    let pool = layer_pool();
    for &p in picks {
        state.apply_layer(pool[p as usize % pool.len()].as_ref());
    }
    // The CFI side-table is a pure function of the binary, memoized on
    // the state: however many repair layers ran, at most one miss, and
    // every further lookup must hit the cache.
    let repairs = picks
        .iter()
        .filter(|&&p| pool[p as usize % pool.len()].name() == "TcallFix")
        .count() as u64;
    let (hits, misses) = state.frame_table_stats();
    assert!(misses <= 1, "frame table evaluated {misses} times");
    assert_eq!(
        hits + misses,
        repairs,
        "every repair consults the frame table exactly once"
    );
    state.into_result()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stacks over random corpora: incremental == from-scratch.
    #[test]
    fn incremental_equals_reference(
        cfg in arb_config(),
        picks in proptest::collection::vec(any::<u8>(), 1..7),
    ) {
        let case = synthesize(&cfg);
        let incremental = run_layers(DetectionState::new(&case.binary), &picks);
        let reference = run_layers(DetectionState::new_reference(&case.binary), &picks);
        prop_assert_eq!(&incremental, &reference, "stack {:?} diverged", picks);
    }

    /// The paper's optimal pipeline, which exercises the seed-extension
    /// path (PointerScan) and the repair re-run path, in one stack.
    #[test]
    fn fetch_pipeline_equals_reference(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let stack: Vec<u8> = vec![0, 3, 4, 5]; // FDE, Rec, Xref, TcallFix
        let incremental = run_layers(DetectionState::new(&case.binary), &stack);
        let reference = run_layers(DetectionState::new_reference(&case.binary), &stack);
        prop_assert_eq!(&incremental, &reference);
    }

    /// One engine shared across two different tool models (random layer
    /// stacks) on the same binary — and then carried onto a *different*
    /// binary — must match fresh engines throughout. This is the
    /// soundness guard for the cross-tool decode-cache sharing the batch
    /// driver performs: cached decodes, seed deltas, and fixpoint state
    /// must never leak between stacks, and the engine's binary
    /// fingerprint must fully reset it between binaries.
    #[test]
    fn shared_engine_equals_fresh_engines(
        cfg_a in arb_config(),
        cfg_b in arb_config(),
        picks_a in proptest::collection::vec(any::<u8>(), 1..6),
        picks_b in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let case_a = synthesize(&cfg_a);
        let case_b = synthesize(&cfg_b);
        let pool = layer_pool();
        let refs = |picks: &[u8]| -> Vec<&dyn DetectionLayer> {
            picks
                .iter()
                .map(|&p| pool[p as usize % pool.len()].as_ref())
                .collect()
        };
        let (stack_a, stack_b) = (refs(&picks_a), refs(&picks_b));

        let mut engine = fetch_disasm::RecEngine::new();
        let shared_a = run_stack_cached(&case_a.binary, &stack_a, &mut engine);
        let shared_b = run_stack_cached(&case_a.binary, &stack_b, &mut engine);
        let shared_cross = run_stack_cached(&case_b.binary, &stack_a, &mut engine);

        prop_assert_eq!(&shared_a, &run_stack(&case_a.binary, &stack_a),
            "stack A leaked state from a fresh engine run");
        prop_assert_eq!(&shared_b, &run_stack(&case_a.binary, &stack_b),
            "stack B diverged after sharing stack A's engine");
        prop_assert_eq!(&shared_cross, &run_stack(&case_b.binary, &stack_a),
            "engine carried state across binaries");
    }
}
