//! Observational equivalence of the incremental detection substrate.
//!
//! [`DetectionState::new`] runs every recursion through the persistent
//! [`fetch_disasm::RecEngine`] (decode cache, seed-delta extension,
//! skipped fixpoint re-walks); [`DetectionState::new_reference`] re-runs
//! each recursion from scratch. For random corpora and random strategy
//! stacks the two must produce byte-identical [`DetectionResult`]s —
//! starts, provenance, and layer order.

use fetch_core::{
    AlignmentSplit, CallFrameRepair, ControlFlowRepair, DetectionResult, DetectionState, EntrySeed,
    FdeSeeds, FunctionMerge, LinearScanStarts, PointerScan, PrologueMatch, SafeRecursion,
    SymbolSeeds, TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
// `Strategy` names both a fetch-core trait and a proptest trait; keep the
// detection one under an alias so the proptest prelude wins the bare name.
use fetch_core::Strategy as DetectionLayer;
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        20usize..90,
        0.0f64..0.15,
        0usize..12,
        0.0f64..0.2,
        0usize..2,
    )
        .prop_map(|(seed, n_funcs, split, asm, data, mislabeled)| {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = n_funcs;
            cfg.rates = FeatureRates {
                split_cold: split,
                asm_funcs: asm,
                data_in_text: data,
                mislabeled_fdes: mislabeled,
                ..FeatureRates::default()
            };
            cfg
        })
}

/// All strategy layers, indexable so a random `Vec<u8>` becomes a stack.
fn layer_pool() -> Vec<Box<dyn DetectionLayer>> {
    vec![
        Box::new(FdeSeeds),
        Box::new(SymbolSeeds),
        Box::new(EntrySeed),
        Box::new(SafeRecursion::default()),
        Box::new(PointerScan),
        Box::new(CallFrameRepair::default()),
        Box::new(PrologueMatch {
            style: ToolStyle::Ghidra,
        }),
        Box::new(PrologueMatch {
            style: ToolStyle::Angr,
        }),
        Box::new(PrologueMatch {
            style: ToolStyle::Radare,
        }),
        Box::new(TailCallHeuristic {
            style: ToolStyle::Ghidra,
        }),
        Box::new(TailCallHeuristic {
            style: ToolStyle::Angr,
        }),
        Box::new(LinearScanStarts),
        Box::new(ControlFlowRepair),
        Box::new(FunctionMerge),
        Box::new(ThunkHeuristic),
        Box::new(AlignmentSplit),
    ]
}

fn run_layers(mut state: DetectionState<'_>, picks: &[u8]) -> DetectionResult {
    let pool = layer_pool();
    for &p in picks {
        let layer = &pool[p as usize % pool.len()];
        layer.apply(&mut state);
        state.layers.push(layer.name().to_string());
    }
    state.into_result()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stacks over random corpora: incremental == from-scratch.
    #[test]
    fn incremental_equals_reference(
        cfg in arb_config(),
        picks in proptest::collection::vec(any::<u8>(), 1..7),
    ) {
        let case = synthesize(&cfg);
        let incremental = run_layers(DetectionState::new(&case.binary), &picks);
        let reference = run_layers(DetectionState::new_reference(&case.binary), &picks);
        prop_assert_eq!(&incremental, &reference, "stack {:?} diverged", picks);
    }

    /// The paper's optimal pipeline, which exercises the seed-extension
    /// path (PointerScan) and the repair re-run path, in one stack.
    #[test]
    fn fetch_pipeline_equals_reference(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let stack: Vec<u8> = vec![0, 3, 4, 5]; // FDE, Rec, Xref, TcallFix
        let incremental = run_layers(DetectionState::new(&case.binary), &stack);
        let reference = run_layers(DetectionState::new_reference(&case.binary), &stack);
        prop_assert_eq!(&incremental, &reference);
    }
}
