//! Differential soundness of delta re-analysis: every tier of
//! [`run_delta`] must be **byte-identical** to a cold run of the same
//! pipeline on the new binary.
//!
//! Tiers 3–4 are (possibly decode-warm) full runs, whose equivalence
//! the incremental-recursion suite already pins; the load-bearing
//! claims here are the *verbatim-reuse* tiers:
//!
//! * tier 1 (*unchanged*): an identical resubmission returns the old
//!   result untouched, under **any** pipeline;
//! * tier 2 (*section reuse*): a semantically-masked text patch
//!   ([`PatchKind::Neutral`]) returns the old result untouched, under
//!   any [`Pipeline::delta_safe`] pipeline — i.e. the
//!   [`fetch_core::LayerSpec::delta_safe`] whitelist really is
//!   invariant under immediate masking.
//!
//! The suite drives random corpora × random patches (all three
//! [`PatchKind`]s) × random pipelines drawn from [`KNOWN_LAYERS`]
//! (including non-delta-safe, byte-scanning layers, which must demote
//! tier 2 to a recompute), with the engine both cold and pre-warmed on
//! the *old* version (the pooled-engine shape the serving layer uses,
//! exercising `RecEngine::rewarm_patched`).

use fetch_binary::{write_elf, Binary, ElfImage};
use fetch_core::{
    image_fingerprint, run_delta, DeltaClass, Fetch, ImageDigest, Pipeline, KNOWN_LAYERS,
};
use fetch_disasm::RecEngine;
use fetch_synth::{
    patch_function, synthesize, FeatureRates, FunctionPatch, PatchKind, SynthConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

fn digest_of(binary: &Binary) -> ImageDigest {
    let image = ElfImage::parse(write_elf(binary)).unwrap();
    ImageDigest::compute(binary, image_fingerprint(&image))
}

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (any::<u64>(), 20usize..70, 0.0f64..0.12, 0usize..8).prop_map(|(seed, n_funcs, split, asm)| {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = n_funcs;
        cfg.rates = FeatureRates {
            split_cold: split,
            asm_funcs: asm,
            ..FeatureRates::default()
        };
        cfg
    })
}

/// A random layer stack over the full spec registry — including the
/// byte-scanning layers the incremental suite's pool omits, because
/// *their* misclassification as delta-safe is exactly what this suite
/// exists to catch.
fn pipeline_from(picks: &[u8]) -> Pipeline {
    Pipeline::new(
        picks
            .iter()
            .map(|&p| KNOWN_LAYERS[p as usize % KNOWN_LAYERS.len()].1)
            .collect(),
    )
}

/// First verifiable patch of `kind` within a few seeds of `seed`; many
/// corpora have no eligible site for a given kind (no spare padding, no
/// rewritable immediate), and skipping those quietly keeps the case
/// budget honest instead of discarding whole proptest cases.
fn find_patch(case: &fetch_binary::TestCase, seed: u64, kind: PatchKind) -> Option<FunctionPatch> {
    (0..6).find_map(|i| patch_function(case, seed.wrapping_add(i), kind))
}

/// The core differential: `run_delta` from (old result, old digest) to
/// the patched binary must match a from-scratch cold run, and must land
/// on the tier the patch kind was designed to provoke.
fn check_patch(old: &Binary, patch: &FunctionPatch, pipeline: &Pipeline, warm_engine: bool) {
    let old_digest = digest_of(old);
    let mut engine = RecEngine::new();
    let prev = Arc::new(if warm_engine {
        // Leave the engine keyed warm to the *old* version, as a pooled
        // serving engine would be — tier 3 must rewarm, not misread.
        pipeline.run_with_engine(old, &mut engine)
    } else {
        pipeline.run(old)
    });
    let new_digest = digest_of(&patch.binary);
    let out = run_delta(
        pipeline,
        &prev,
        Some(&old_digest),
        &patch.binary,
        &new_digest,
        &mut engine,
    );
    let cold = pipeline.run(&patch.binary);
    prop_assert_eq!(
        &*out.result,
        &cold,
        "delta ({:?}, warm={}) diverged from cold under {:?} for {}",
        out.class,
        warm_engine,
        patch.kind,
        pipeline.id()
    );
    let expected = match patch.kind {
        PatchKind::Neutral if pipeline.delta_safe() => DeltaClass::SectionReuse,
        PatchKind::Neutral | PatchKind::Behavioral => DeltaClass::Recompute,
        PatchKind::Resize => DeltaClass::Cold,
    };
    prop_assert_eq!(
        out.class,
        expected,
        "patch {:?} under {} (delta_safe={})",
        patch.kind,
        pipeline.id(),
        pipeline.delta_safe()
    );
    if out.class.is_hit() {
        prop_assert!(Arc::ptr_eq(&out.result, &prev), "hit must be verbatim");
        prop_assert!(out.sections_reused > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora × all three patch kinds × random pipelines:
    /// delta == cold, on the designed tier, cold- and warm-engine.
    #[test]
    fn delta_equals_cold_for_random_patches(
        cfg in arb_config(),
        patch_seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u8>(), 1..5),
    ) {
        let case = synthesize(&cfg);
        let pipeline = pipeline_from(&picks);
        for kind in [PatchKind::Neutral, PatchKind::Behavioral, PatchKind::Resize] {
            let Some(patch) = find_patch(&case, patch_seed, kind) else {
                continue;
            };
            let warm = patch_seed % 2 == 0;
            check_patch(&case.binary, &patch, &pipeline, warm);
        }
    }

    /// An identical resubmission is tier 1 under *any* pipeline: the
    /// old `Arc` comes back untouched and every text bucket is reused.
    #[test]
    fn identical_resubmission_is_verbatim_under_any_pipeline(
        cfg in arb_config(),
        picks in proptest::collection::vec(any::<u8>(), 1..5),
    ) {
        let case = synthesize(&cfg);
        let pipeline = pipeline_from(&picks);
        let digest = digest_of(&case.binary);
        let prev = Arc::new(pipeline.run(&case.binary));
        let mut engine = RecEngine::new();
        let out = run_delta(&pipeline, &prev, Some(&digest), &case.binary, &digest, &mut engine);
        prop_assert_eq!(out.class, DeltaClass::Unchanged);
        prop_assert!(Arc::ptr_eq(&out.result, &prev));
        prop_assert_eq!(out.sections_reused, digest.text_bucket_count());
    }

    /// A predecessor stored before digests existed (`prev_digest:
    /// None`) drops to tier 4 and still matches cold — the
    /// backward-compat path a healed v1 store entry takes.
    #[test]
    fn missing_digest_falls_cold_and_matches(
        cfg in arb_config(),
        patch_seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u8>(), 1..4),
    ) {
        let case = synthesize(&cfg);
        let Some(patch) = find_patch(&case, patch_seed, PatchKind::Neutral) else {
            return;
        };
        let pipeline = pipeline_from(&picks);
        let prev = Arc::new(pipeline.run(&case.binary));
        let new_digest = digest_of(&patch.binary);
        let mut engine = RecEngine::new();
        let out = run_delta(&pipeline, &prev, None, &patch.binary, &new_digest, &mut engine);
        prop_assert_eq!(out.class, DeltaClass::Cold);
        prop_assert_eq!(out.sections_reused, 0);
        prop_assert_eq!(&*out.result, &pipeline.run(&patch.binary));
    }
}

/// A version chain through [`Fetch::detect_delta`] with one shared
/// (pooled) engine: v0 → neutral v1 → back to v0 → behavioral v2 →
/// resized v3. Each hop's answer must equal a fresh-engine cold
/// [`Fetch::detect_image`] of that version, and each hop's returned
/// digest is what the next hop deltas against — the exact contract the
/// serving layer's `reanalyze` path depends on.
#[test]
fn fetch_delta_chain_matches_cold_at_every_version() {
    let case = synthesize(&SynthConfig::small(11));
    let v1 = patch_function(&case, 7, PatchKind::Neutral).expect("neutral site");
    let v2 = patch_function(&case, 9, PatchKind::Behavioral).expect("behavioral site");
    let v3 = (0..32)
        .find_map(|s| patch_function(&case, s, PatchKind::Resize))
        .expect("resize site");

    let fetch = Fetch::new();
    let image_of = |b: &Binary| ElfImage::parse(write_elf(b)).unwrap();
    let cold_of = |b: &Binary| fetch.detect_image(&image_of(b), &mut RecEngine::new());

    let mut engine = RecEngine::new();
    let v0_image = image_of(&case.binary);
    let mut prev = Arc::new(fetch.detect_image(&v0_image, &mut engine));
    let mut prev_digest = ImageDigest::compute(&case.binary, image_fingerprint(&v0_image));

    let hops = [
        (&v1.binary, DeltaClass::SectionReuse),
        (&case.binary, DeltaClass::SectionReuse),
        (&v2.binary, DeltaClass::Recompute),
        (&v3.binary, DeltaClass::Cold),
    ];
    for (version, expected) in hops {
        let (out, digest) =
            fetch.detect_delta(&prev, Some(&prev_digest), &image_of(version), &mut engine);
        assert_eq!(out.class, expected, "wrong tier at {version:p}");
        assert_eq!(
            *out.result,
            cold_of(version),
            "hop {expected:?} diverged from cold"
        );
        prev = out.result;
        prev_digest = digest;
    }
}
