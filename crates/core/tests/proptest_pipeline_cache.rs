//! Property tests for the serving-layer [`AnalysisCache`]: a cache hit
//! is observationally identical to a cold run.
//!
//! Random corpora × random pipelines × random query interleavings, all
//! funneled through one shared cache and one shared engine (the
//! production shape: a worker's engine is warm with arbitrary prior
//! state, the cache is shared by everyone). Every answer must equal a
//! cold, cache-free, fresh-engine run of the same `(binary, pipeline)`
//! — and the cache's bookkeeping (hit/miss counts, entry count) must
//! add up exactly.

use fetch_core::{
    content_fingerprint, AnalysisCache, CacheCapacity, LayerSpec, Pipeline, KNOWN_LAYERS,
};
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (any::<u64>(), 15usize..60, 0.0f64..0.15, 0usize..8).prop_map(|(seed, n_funcs, split, asm)| {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = n_funcs;
        cfg.rates = FeatureRates {
            split_cold: split,
            asm_funcs: asm,
            ..FeatureRates::default()
        };
        cfg
    })
}

/// A random pipeline: 1–4 layers drawn from the full vocabulary.
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    proptest::collection::vec(any::<u8>(), 1..5).prop_map(|picks| {
        let specs: Vec<LayerSpec> = picks
            .iter()
            .map(|&p| KNOWN_LAYERS[p as usize % KNOWN_LAYERS.len()].1)
            .collect();
        Pipeline::new(specs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving guarantee: for any interleaving of (binary, pipeline)
    /// queries against one shared cache and one shared warm engine,
    /// every answer equals the cold cache-free run.
    #[test]
    fn cache_hits_equal_cold_runs(
        cfgs in proptest::collection::vec(arb_config(), 2..4),
        pipelines in proptest::collection::vec(arb_pipeline(), 2..4),
        queries in proptest::collection::vec((any::<u8>(), any::<u8>()), 4..14),
    ) {
        let cases: Vec<_> = cfgs.iter().map(synthesize).collect();
        let cache = AnalysisCache::new();
        let mut engine = fetch_disasm::RecEngine::new();

        let mut distinct: BTreeSet<(u64, String)> = BTreeSet::new();
        for (bi, pi) in &queries {
            let case = &cases[*bi as usize % cases.len()];
            let pipeline = &pipelines[*pi as usize % pipelines.len()];
            let fp = content_fingerprint(&case.binary);
            distinct.insert((fp, pipeline.id()));

            let served = cache.get_or_compute(fp, &pipeline.id(), || {
                pipeline.run_with_engine(&case.binary, &mut engine)
            });
            let cold = pipeline.run(&case.binary);
            prop_assert_eq!(
                &*served, &cold,
                "query (bin {}, pipeline {}) diverged through the cache",
                case.binary.name, pipeline.id()
            );
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, queries.len() as u64);
        prop_assert_eq!(stats.misses as usize, distinct.len());
        prop_assert_eq!(stats.entries, distinct.len());
        prop_assert_eq!(cache.len(), distinct.len());
    }

    /// The bounded-cache guarantee: under any entry/byte capacity and
    /// any query interleaving, every answer still equals the cold
    /// cache-free run, residency never exceeds either bound, and the
    /// books balance exactly (hits + misses = queries;
    /// insert attempts = misses; live entries = misses − evictions).
    #[test]
    fn bounded_cache_serves_cold_equal_results_within_capacity(
        cfgs in proptest::collection::vec(arb_config(), 2..4),
        pipelines in proptest::collection::vec(arb_pipeline(), 2..4),
        queries in proptest::collection::vec((any::<u8>(), any::<u8>()), 6..18),
        max_entries in 1usize..5,
        byte_bound in (any::<bool>(), 1usize..6),
    ) {
        // The shim has no `proptest::option::of`; derive Option here.
        let byte_divisor = byte_bound.0.then_some(byte_bound.1);
        let cases: Vec<_> = cfgs.iter().map(synthesize).collect();

        // Cold reference results, computed once, cache-free.
        let mut colds: Vec<Vec<_>> = Vec::new();
        for case in &cases {
            colds.push(pipelines.iter().map(|p| p.run(&case.binary)).collect());
        }

        // An optional byte bound scaled from a real result size, so it
        // actually bites for some draws and not others.
        let max_bytes = byte_divisor.map(|d| colds[0][0].approx_bytes() * 2 / d);
        let capacity = CacheCapacity { max_entries: Some(max_entries), max_bytes };
        let cache = AnalysisCache::with_capacity(capacity);
        let mut engine = fetch_disasm::RecEngine::new();

        for (bi, pi) in &queries {
            let (bi, pi) = (*bi as usize % cases.len(), *pi as usize % pipelines.len());
            let case = &cases[bi];
            let pipeline = &pipelines[pi];
            let fp = content_fingerprint(&case.binary);
            let served = cache.get_or_compute(fp, &pipeline.id(), || {
                pipeline.run_with_engine(&case.binary, &mut engine)
            });
            prop_assert_eq!(
                &*served, &colds[bi][pi],
                "bounded cache diverged from cold on (bin {}, pipeline {})",
                bi, pipeline.id()
            );

            let stats = cache.stats();
            prop_assert!(
                stats.entries <= max_entries,
                "entry capacity exceeded: {} > {max_entries}", stats.entries
            );
            if let Some(max_bytes) = max_bytes {
                prop_assert!(
                    stats.bytes <= max_bytes,
                    "byte capacity exceeded: {} > {max_bytes}", stats.bytes
                );
            }
            prop_assert_eq!(cache.len(), stats.entries);
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, queries.len() as u64);
        prop_assert_eq!(
            stats.entries as u64,
            stats.misses - stats.evictions,
            "every miss inserted exactly once; every eviction removed exactly once"
        );
    }

    /// Image-path serving: `detect_image_cached` equals the uncached
    /// image path and the owned-binary path, and repeated queries are
    /// all hits handing back the same entry.
    #[test]
    fn cached_image_detection_equals_cold(cfg in arb_config(), repeats in 1usize..4) {
        use fetch_binary::{write_elf, ElfImage};
        let case = synthesize(&cfg);
        let image = ElfImage::parse(write_elf(&case.binary)).unwrap();
        let fetch = fetch_core::Fetch::new();
        let cache = AnalysisCache::new();
        let mut engine = fetch_disasm::RecEngine::new();

        let first = fetch.detect_image_cached(&image, &mut engine, &cache);
        let cold = fetch.detect_image(&image, &mut engine);
        prop_assert_eq!(&*first, &cold, "cached image path diverged");
        for _ in 0..repeats {
            let again = fetch.detect_image_cached(&image, &mut engine, &cache);
            prop_assert!(
                std::sync::Arc::ptr_eq(&first, &again),
                "repeat query must be served from the cache"
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, repeats as u64);
    }
}
