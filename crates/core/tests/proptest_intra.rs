//! Observational equivalence of the intra-binary sharded walk.
//!
//! [`fetch_disasm::RecEngine::set_intra_jobs`] shards the initial
//! recursive walk across scoped workers (each over a private decode
//! cache view, merged back in deterministic seed order). For random
//! corpora, random strategy stacks, and every shard count, the
//! [`DetectionResult`] must be byte-identical to the serial walk's —
//! on a cold engine and on a warm one (where the decode cache already
//! holds the binary and the scout pass is pure overhead).

use fetch_core::{
    run_stack_cached, AlignmentSplit, CallFrameRepair, ControlFlowRepair, DetectionResult,
    EntrySeed, FdeSeeds, Fetch, FunctionMerge, LinearScanStarts, PointerScan, PrologueMatch,
    SafeRecursion, SymbolSeeds, TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
// `Strategy` names both a fetch-core trait and a proptest trait; keep the
// detection one under an alias so the proptest prelude wins the bare name.
use fetch_core::Strategy as DetectionLayer;
use fetch_disasm::RecEngine;
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        20usize..90,
        0.0f64..0.15,
        0usize..12,
        0.0f64..0.2,
        0usize..2,
    )
        .prop_map(|(seed, n_funcs, split, asm, data, mislabeled)| {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = n_funcs;
            cfg.rates = FeatureRates {
                split_cold: split,
                asm_funcs: asm,
                data_in_text: data,
                mislabeled_fdes: mislabeled,
                ..FeatureRates::default()
            };
            cfg
        })
}

/// All strategy layers, indexable so a random `Vec<u8>` becomes a stack.
fn layer_pool() -> Vec<Box<dyn DetectionLayer>> {
    vec![
        Box::new(FdeSeeds),
        Box::new(SymbolSeeds),
        Box::new(EntrySeed),
        Box::new(SafeRecursion::default()),
        Box::new(PointerScan),
        Box::new(CallFrameRepair::default()),
        Box::new(PrologueMatch {
            style: ToolStyle::Ghidra,
        }),
        Box::new(TailCallHeuristic {
            style: ToolStyle::Angr,
        }),
        Box::new(LinearScanStarts),
        Box::new(ControlFlowRepair),
        Box::new(FunctionMerge),
        Box::new(ThunkHeuristic),
        Box::new(AlignmentSplit),
    ]
}

fn run_with_jobs(
    binary: &fetch_binary::Binary,
    picks: &[u8],
    engine: &mut RecEngine,
    jobs: usize,
) -> DetectionResult {
    let pool = layer_pool();
    let stack: Vec<&dyn DetectionLayer> = picks
        .iter()
        .map(|&p| pool[p as usize % pool.len()].as_ref())
        .collect();
    engine.set_intra_jobs(jobs);
    run_stack_cached(binary, &stack, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stacks over random corpora: every shard count equals the
    /// serial walk, from a cold engine.
    #[test]
    fn sharded_equals_serial_cold(
        cfg in arb_config(),
        picks in proptest::collection::vec(any::<u8>(), 1..7),
    ) {
        let case = synthesize(&cfg);
        let serial = run_with_jobs(&case.binary, &picks, &mut RecEngine::new(), 1);
        for jobs in SHARD_COUNTS {
            let sharded = run_with_jobs(&case.binary, &picks, &mut RecEngine::new(), jobs);
            prop_assert_eq!(&sharded, &serial,
                "stack {:?} diverged at intra_jobs={}", picks, jobs);
        }
    }

    /// A warm engine (decode cache already holding the binary) must be
    /// equally invisible: the scout pass finds nothing to add, and the
    /// re-walk replays from cache.
    #[test]
    fn sharded_equals_serial_warm(
        cfg in arb_config(),
        picks in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let case = synthesize(&cfg);
        let serial = run_with_jobs(&case.binary, &picks, &mut RecEngine::new(), 1);
        for jobs in SHARD_COUNTS {
            let mut engine = RecEngine::new();
            // Warm the engine with a serial run, then shard on top.
            let first = run_with_jobs(&case.binary, &picks, &mut engine, 1);
            prop_assert_eq!(&first, &serial);
            let warm = run_with_jobs(&case.binary, &picks, &mut engine, jobs);
            prop_assert_eq!(&warm, &serial,
                "warm stack {:?} diverged at intra_jobs={}", picks, jobs);
        }
    }

    /// The paper's optimal pipeline through the `Fetch` front door: the
    /// `intra_jobs` knob is invisible end to end, including through the
    /// report-returning entry point.
    #[test]
    fn fetch_intra_jobs_equals_serial(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let serial = Fetch::new().detect(&case.binary);
        let (_, serial_report) = Fetch::new().detect_with_report(&case.binary);
        for jobs in SHARD_COUNTS {
            let fetch = Fetch { intra_jobs: jobs, ..Fetch::new() };
            prop_assert_eq!(&fetch.detect(&case.binary), &serial,
                "detect diverged at intra_jobs={}", jobs);
            let (result, report) = fetch.detect_with_report(&case.binary);
            prop_assert_eq!(&result, &serial);
            // RepairReport carries no PartialEq; its Debug form covers
            // every field.
            prop_assert_eq!(format!("{report:?}"), format!("{serial_report:?}"),
                "repair report diverged at intra_jobs={}", jobs);
        }
    }
}
