//! The serving-layer result cache: memoized [`DetectionResult`]s keyed
//! by `(binary content fingerprint, pipeline id)`, with optional
//! capacity bounds and size-aware LRU eviction.
//!
//! A production detection service answers the same query — the same
//! binary under the same pipeline — over and over. [`AnalysisCache`]
//! makes the repeat a lookup: results are stored as
//! `Arc<DetectionResult>` behind an internal mutex, so one cache is
//! shared by every worker of a batch sweep ([`BatchDriver::run_with_cache`]
//! in `fetch-bench`) and every cached entry is handed out without
//! copying. Entry points: [`crate::Fetch::detect_cached`],
//! [`crate::Fetch::detect_image_cached`],
//! `fetch_tools::run_tool_on_image_cached`, and the `fetch-serve`
//! daemon.
//!
//! Keys are 64-bit FNV-1a content fingerprints ([`content_fingerprint`]
//! over a materialized [`Binary`], [`image_fingerprint`] over a raw ELF
//! image — domain-separated so the two keyspaces cannot alias each
//! other) plus the pipeline's stable [`crate::Pipeline::id`]. The
//! fingerprint covers everything detection reads — entry point, section
//! kinds/addresses/bytes, symbols — and nothing it does not (display
//! name, build metadata), so renaming a binary still hits.
//!
//! ## Capacity and eviction
//!
//! A long-lived daemon cannot let the cache grow with the traffic, so
//! an [`AnalysisCache`] can be bounded ([`AnalysisCache::with_capacity`])
//! by entry count, by approximate resident bytes
//! ([`DetectionResult::approx_bytes`]), or both ([`CacheCapacity`]).
//! Whenever an insert pushes the cache over either bound, the
//! least-recently-used entries are evicted until it fits again (a single
//! entry larger than the byte bound is evicted immediately — the cache
//! never exceeds its capacity). Evictions only ever drop memoized
//! state, never answers: a later query for an evicted key recomputes and
//! gets the identical result (property-tested in
//! `tests/proptest_pipeline_cache.rs`). [`CacheStats`] reports the
//! eviction count and the live entry/byte footprint alongside
//! hits/misses.

use crate::state::DetectionResult;
use fetch_binary::{Binary, Section, SectionKind};
use fetch_x64::{decode, Op, Reg};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Domain tag mixed into [`content_fingerprint`] keys.
const DOMAIN_CONTENT: u64 = 0x636f_6e74_656e_7431; // "content1"
/// Domain tag mixed into [`image_fingerprint`] keys.
const DOMAIN_IMAGE: u64 = 0x696d_6167_6562_7566; // "imagebuf"
/// Domain tag of per-section / per-bucket raw fingerprints.
const DOMAIN_SECTION: u64 = 0x7365_6374_6275_6631; // "sectbuf1"
/// Domain tag of the immediate-masked semantic bucket sweep.
const DOMAIN_SEM: u64 = 0x7365_6d73_7765_6570; // "semsweep"
/// Domain tag of the symbol-table digest.
const DOMAIN_SYMBOLS: u64 = 0x7379_6d74_6162_6c31; // "symtabl1"

pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new(domain: u64) -> Fnv {
        Fnv(FNV_OFFSET ^ domain)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        // Length first, so concatenated fields cannot alias.
        self.u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// 64-bit content fingerprint of a materialized [`Binary`]: entry point,
/// sections (kind, address, bytes), and symbols (name, address, size) —
/// exactly the inputs detection reads. The display name and build
/// metadata are excluded on purpose: they never influence a
/// [`DetectionResult`].
pub fn content_fingerprint(binary: &Binary) -> u64 {
    let mut h = Fnv::new(DOMAIN_CONTENT);
    h.u64(binary.entry);
    h.u64(binary.sections.len() as u64);
    for s in &binary.sections {
        h.u64(s.kind as u64);
        h.u64(s.addr);
        h.bytes(&s.bytes);
    }
    h.u64(binary.symbols.len() as u64);
    for sym in &binary.symbols {
        h.bytes(sym.name.as_bytes());
        h.u64(sym.addr);
        h.u64(sym.size);
    }
    h.0
}

/// 64-bit fingerprint of a raw ELF image buffer — one linear pass, no
/// section walk, so image-path lookups ([`crate::Fetch::detect_image_cached`])
/// skip materialization entirely on a hit. Domain-separated from
/// [`content_fingerprint`]; the two key different entries for the same
/// underlying binary (a missed dedup opportunity, never a wrong answer).
pub fn image_fingerprint(image: &fetch_binary::ElfImage) -> u64 {
    let mut h = Fnv::new(DOMAIN_IMAGE);
    h.bytes(image.view().image());
    h.0
}

/// One FDE-range bucket of the `.text` section in an [`ImageDigest`]:
/// a half-open `[start, end)` address range carrying both an exact
/// content fingerprint and a semantic (immediate-masked) one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketDigest {
    /// First address of the bucket.
    pub start: u64,
    /// One past the last address of the bucket.
    pub end: u64,
    /// Whether the bucket is FDE-covered (`false`: a gap between FDE
    /// ranges — padding, data-in-text, or FDE-less code).
    pub covered: bool,
    /// Exact FNV-1a fingerprint of the bucket's bytes.
    pub raw: u64,
    /// Fingerprint of the bucket's *linear-sweep decode projection*
    /// with delta-maskable `mov reg, imm` immediates canonicalized
    /// (see the module docs of [`ImageDigest`]). Equals `raw` hashing
    /// for gap buckets: bytes without FDE structure get no semantic
    /// slack.
    pub sem: u64,
}

/// One section's record in an [`ImageDigest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDigest {
    /// Section kind.
    pub kind: SectionKind,
    /// Section base address.
    pub addr: u64,
    /// Section length in bytes.
    pub len: u64,
    /// Exact FNV-1a fingerprint of the section's bytes.
    pub raw: u64,
    /// FDE-range buckets partitioning the section (non-empty only for
    /// `.text`; buckets tile `[addr, addr + len)` exactly).
    pub buckets: Vec<BucketDigest>,
}

/// Structured identity of a binary image: the whole-image fingerprint
/// plus per-section, FDE-range-bucketed sub-fingerprints — the unit of
/// version-delta analysis ([`crate::run_delta`]).
///
/// Where [`image_fingerprint`] answers "is this the exact image I
/// analysed before?", an `ImageDigest` answers the CI/CD question: "the
/// image changed — *where*, and does the change matter?". `.text` is
/// partitioned into buckets along the binary's own FDE ranges (the
/// paper's stable region structure), each carrying an exact `raw`
/// fingerprint and a `sem` fingerprint of its linear-sweep decode
/// projection in which `mov reg, imm` immediates are masked when they
/// provably cannot influence detection (the register is not `rdi` — the
/// `error`-status slice reads `edi` — and the value does not fall in
/// any section's address span, so it can never be an address any xref,
/// pointer-scan, or jump-table consumer resolves). Two versions whose
/// buckets are geometry-identical and `sem`-equal yield identical
/// detection results under any delta-safe pipeline
/// ([`crate::Pipeline::delta_safe`]); versions differing only in
/// covered text buckets can replay through a rewarmed
/// [`fetch_disasm::RecEngine`] instead of a cold one.
///
/// Known residual risk, deliberately accepted (mirroring
/// `RecEngine::plan_extension`): the sweep projects each bucket at its
/// own phase, while a real walk may enter bytes at another phase. An
/// instruction straddling a bucket boundary is therefore hashed by its
/// raw bytes (no masking), and gap buckets use raw hashing outright;
/// the differential property suite (`fetch-core/tests/proptest_delta.rs`)
/// enforces the remaining tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageDigest {
    /// Whole-image fingerprint of the bytes the digest was computed
    /// from ([`image_fingerprint`] on the serve path,
    /// [`content_fingerprint`] when only a materialized [`Binary`]
    /// exists) — the cache key the digest travels with.
    pub image: u64,
    /// Entry point address.
    pub entry: u64,
    /// Fingerprint of the symbol table (names, addresses, sizes).
    pub symbols: u64,
    /// [`fetch_disasm::text_content_hash`] of the `.text` bytes — the
    /// hash a [`fetch_disasm::RecEngine`] fingerprints its decode cache
    /// with, so delta analysis can prove an engine is warm for exactly
    /// this version before rewarming it
    /// ([`fetch_disasm::RecEngine::rewarm_patched`]).
    pub text_hash: u64,
    /// Per-section records, in image section order.
    pub sections: Vec<SectionDigest>,
}

impl ImageDigest {
    /// Computes the digest of `binary`. `image` is the whole-image
    /// fingerprint the caller keys its caches with
    /// ([`image_fingerprint`] / [`content_fingerprint`]); it is carried,
    /// not recomputed, so the digest stays usable whichever keyspace the
    /// caller lives in.
    pub fn compute(binary: &Binary, image: u64) -> ImageDigest {
        let mut symbols = Fnv::new(DOMAIN_SYMBOLS);
        symbols.u64(binary.symbols.len() as u64);
        for sym in &binary.symbols {
            symbols.bytes(sym.name.as_bytes());
            symbols.u64(sym.addr);
            symbols.u64(sym.size);
        }
        let sections = binary
            .sections
            .iter()
            .map(|s| {
                let mut raw = Fnv::new(DOMAIN_SECTION);
                raw.bytes(&s.bytes);
                SectionDigest {
                    kind: s.kind,
                    addr: s.addr,
                    len: s.bytes.len() as u64,
                    raw: raw.finish(),
                    buckets: if s.kind == SectionKind::Text {
                        text_buckets(binary, s)
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect();
        ImageDigest {
            image,
            entry: binary.entry,
            symbols: symbols.finish(),
            text_hash: fetch_disasm::text_content_hash(&binary.text().bytes),
            sections,
        }
    }

    /// Whether the two digests describe analysis-identical content:
    /// every field *except* the whole-image fingerprint agrees. (Two
    /// images can differ in bytes detection never reads — header
    /// padding — and still be content-identical.)
    pub fn content_identical(&self, other: &ImageDigest) -> bool {
        self.entry == other.entry
            && self.symbols == other.symbols
            && self.text_hash == other.text_hash
            && self.sections == other.sections
    }

    /// Number of `.text` buckets.
    pub fn text_bucket_count(&self) -> usize {
        self.sections.iter().map(|s| s.buckets.len()).sum::<usize>()
    }
}

/// Classification of the change between two [`ImageDigest`]s — the
/// input to the delta ladder of [`crate::run_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigestDiff {
    /// Analysis-relevant content is identical (the raw images may still
    /// differ, e.g. in header bytes detection never reads).
    Identical {
        /// Total `.text` buckets, all reused.
        buckets: usize,
    },
    /// Only `.text` content changed, and the bucket geometry (FDE
    /// ranges, section shape) is identical — the change is *local*.
    LocalText {
        /// The changed half-open `[start, end)` bucket windows (raw or
        /// semantic fingerprint moved), ascending.
        windows: Vec<(u64, u64)>,
        /// Whether every bucket's *semantic* fingerprint is unchanged —
        /// when true, a delta-safe pipeline's result provably cannot
        /// move.
        sem_equal: bool,
        /// Buckets whose raw bytes did not change.
        reused: usize,
    },
    /// The diff is non-local (section added/removed/resized/moved,
    /// `.eh_frame` or another non-text section changed, symbols or
    /// entry changed): only a cold compute is sound.
    NonLocal {
        /// Human-readable reason, for telemetry.
        reason: &'static str,
    },
}

/// Diffs two digests into the delta classification. Symmetric in
/// structure but directed in meaning: `old` is the version a stored
/// result exists for, `new` is the version to answer.
pub fn diff_digests(old: &ImageDigest, new: &ImageDigest) -> DigestDiff {
    if old.content_identical(new) {
        return DigestDiff::Identical {
            buckets: new.text_bucket_count(),
        };
    }
    if old.entry != new.entry {
        return DigestDiff::NonLocal {
            reason: "entry point changed",
        };
    }
    if old.symbols != new.symbols {
        return DigestDiff::NonLocal {
            reason: "symbol table changed",
        };
    }
    if old.sections.len() != new.sections.len() {
        return DigestDiff::NonLocal {
            reason: "section added or removed",
        };
    }
    let mut windows = Vec::new();
    let mut sem_equal = true;
    let mut reused = 0usize;
    for (o, n) in old.sections.iter().zip(&new.sections) {
        if o.kind != n.kind || o.addr != n.addr || o.len != n.len {
            return DigestDiff::NonLocal {
                reason: "section shape changed",
            };
        }
        if o.kind != SectionKind::Text {
            if o.raw != n.raw {
                return DigestDiff::NonLocal {
                    reason: "non-text section content changed",
                };
            }
            continue;
        }
        if o.buckets.len() != n.buckets.len() {
            return DigestDiff::NonLocal {
                reason: "text bucket geometry changed",
            };
        }
        for (ob, nb) in o.buckets.iter().zip(&n.buckets) {
            if ob.start != nb.start || ob.end != nb.end || ob.covered != nb.covered {
                return DigestDiff::NonLocal {
                    reason: "text bucket geometry changed",
                };
            }
            if ob.raw == nb.raw {
                reused += 1;
            }
            if ob.raw != nb.raw || ob.sem != nb.sem {
                windows.push((nb.start, nb.end));
            }
            if ob.sem != nb.sem {
                sem_equal = false;
            }
        }
    }
    if windows.is_empty() {
        // Sections compare equal bucket-by-bucket yet the digests are
        // not content-identical — can only be a per-section raw drift
        // the buckets missed, which the tiling makes impossible; treat
        // defensively as non-local.
        return DigestDiff::NonLocal {
            reason: "digest mismatch outside text buckets",
        };
    }
    DigestDiff::LocalText {
        windows,
        sem_equal,
        reused,
    }
}

/// Partitions `.text` into FDE-range buckets: the binary's (merged,
/// clamped) FDE `[pc_begin, pc_end)` ranges as covered buckets, the
/// bytes between them as gap buckets — together tiling the section
/// exactly.
fn text_buckets(binary: &Binary, text: &Section) -> Vec<BucketDigest> {
    let text_end = text.end();
    let mut ranges: Vec<(u64, u64)> = match binary.eh_frame() {
        Ok(eh) => eh
            .fdes()
            .map(|fde| (fde.pc_begin.max(text.addr), fde.pc_end().min(text_end)))
            .filter(|(s, e)| s < e)
            .collect(),
        Err(_) => Vec::new(),
    };
    ranges.sort_unstable();
    // Merge overlapping (not merely adjacent) ranges so the partition
    // is well defined; adjacent FDEs stay separate buckets — that is
    // the granularity a one-function patch reuses.
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (s, e) in ranges {
        match merged.last_mut() {
            Some((_, le)) if s < *le => *le = (*le).max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut buckets = Vec::with_capacity(merged.len() * 2 + 1);
    let mut pos = text.addr;
    for (s, e) in merged {
        if pos < s {
            buckets.push(bucket_digest(binary, text, pos, s, false));
        }
        buckets.push(bucket_digest(binary, text, s, e, true));
        pos = e;
    }
    if pos < text_end {
        buckets.push(bucket_digest(binary, text, pos, text_end, false));
    }
    buckets
}

fn bucket_digest(
    binary: &Binary,
    text: &Section,
    start: u64,
    end: u64,
    covered: bool,
) -> BucketDigest {
    let lo = (start - text.addr) as usize;
    let hi = (end - text.addr) as usize;
    let bytes = &text.bytes[lo..hi];
    let mut raw = Fnv::new(DOMAIN_SECTION);
    raw.bytes(bytes);
    let raw = raw.finish();
    let sem = if covered {
        sem_fingerprint(binary, text, start, end)
    } else {
        // Gap bytes have no FDE structure to reason from: exact or
        // nothing.
        raw
    };
    BucketDigest {
        start,
        end,
        covered,
        raw,
        sem,
    }
}

/// Whether a `mov reg, imm` immediate could be an address some layer
/// resolves: any positive value inside a section span. (Non-positive
/// values are never emitted by `Inst::const_operands`, and the sole
/// value-sensitive non-address consumer — the `error`-status slice —
/// reads `edi` only, which the masking rule excludes by register.)
fn imm_is_address_like(binary: &Binary, imm: i32) -> bool {
    if imm <= 0 {
        return false;
    }
    let v = imm as u64;
    binary.sections.iter().any(|s| v >= s.addr && v < s.end())
}

/// The immediate-masked linear-sweep projection of a covered bucket:
/// hash each decoded instruction's offset, length, and operation, with
/// delta-maskable `MovRI` immediates replaced by a canonical token.
/// Undecodable bytes hash as (offset, raw byte) and advance one byte;
/// an instruction straddling the bucket end hashes its raw bytes
/// unmasked (cross-bucket bytes must stay exact — see the residual-risk
/// note on [`ImageDigest`]).
fn sem_fingerprint(binary: &Binary, text: &Section, start: u64, end: u64) -> u64 {
    use std::fmt::Write as _;
    let mut h = Fnv::new(DOMAIN_SEM);
    let mut buf = String::new();
    let mut pos = start;
    while pos < end {
        match decode(text.slice_from(pos).expect("bucket in section"), pos) {
            Ok(inst) => {
                if inst.end() > end {
                    let lo = (pos - text.addr) as usize;
                    let hi = (inst.end().min(text.end()) - text.addr) as usize;
                    h.u64(0x5354_5244); // "STRD": straddling marker
                    h.u64(pos - start);
                    h.bytes(&text.bytes[lo..hi]);
                    pos = inst.end();
                    continue;
                }
                h.u64(pos - start);
                h.u64(inst.len as u64);
                buf.clear();
                match inst.op {
                    Op::MovRI(w, reg, imm)
                        if reg != Reg::Rdi && !imm_is_address_like(binary, imm) =>
                    {
                        let _ = write!(buf, "MovRI({w:?}, {reg:?}, #)");
                    }
                    ref op => {
                        let _ = write!(buf, "{op:?}");
                    }
                }
                h.bytes(buf.as_bytes());
                pos = inst.end();
            }
            Err(_) => {
                let off = (pos - text.addr) as usize;
                h.u64(0x4241_4442); // "BADB": undecodable-byte marker
                h.u64(pos - start);
                h.u64(text.bytes[off] as u64);
                pos += 1;
            }
        }
    }
    h.finish()
}

/// Capacity bounds of an [`AnalysisCache`]. The default is unbounded —
/// the batch-sweep shape, where the corpus is the bound. A serving
/// daemon bounds one or both axes ([`CacheCapacity::entries`],
/// [`CacheCapacity::bytes`]); exceeding either triggers LRU eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCapacity {
    /// Maximum resident entries (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Maximum approximate resident bytes
    /// ([`DetectionResult::approx_bytes`]; `None` = unbounded).
    pub max_bytes: Option<usize>,
}

impl CacheCapacity {
    /// No bounds: nothing is ever evicted.
    pub const UNBOUNDED: CacheCapacity = CacheCapacity {
        max_entries: None,
        max_bytes: None,
    };

    /// Bound by entry count only.
    pub fn entries(max_entries: usize) -> CacheCapacity {
        CacheCapacity {
            max_entries: Some(max_entries),
            ..CacheCapacity::UNBOUNDED
        }
    }

    /// Bound by approximate resident bytes only.
    pub fn bytes(max_bytes: usize) -> CacheCapacity {
        CacheCapacity {
            max_bytes: Some(max_bytes),
            ..CacheCapacity::UNBOUNDED
        }
    }

    /// Whether `entries`/`bytes` exceed either bound.
    fn over(&self, entries: usize, bytes: usize) -> bool {
        self.max_entries.is_some_and(|m| entries > m) || self.max_bytes.is_some_and(|m| bytes > m)
    }
}

/// Lookup/insert/eviction counters and the live footprint of an
/// [`AnalysisCache`] (counters are monotone snapshots; `entries`/`bytes`
/// are the current residency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by LRU eviction (never by [`AnalysisCache::clear`]).
    pub evictions: u64,
    /// Waiters served by another caller's in-flight compute
    /// ([`AnalysisCache::join_flight`]): lookups that would have been
    /// redundant cold computes without coalescing.
    pub coalesced: u64,
    /// Resident entries at snapshot time.
    pub entries: usize,
    /// Approximate resident bytes at snapshot time
    /// ([`DetectionResult::approx_bytes`] summed over entries).
    pub bytes: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]` (0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident result plus its accounting.
#[derive(Debug)]
struct Entry {
    result: Arc<DetectionResult>,
    /// The image digest the result was computed against, when known —
    /// the anchor of version-delta lookups. `None` for entries restored
    /// from pre-digest stores (they heal on their next digest-carrying
    /// insert).
    digest: Option<Arc<ImageDigest>>,
    /// [`DetectionResult::approx_bytes`], computed once at insert.
    bytes: usize,
    /// Recency tick; key into [`Inner::recency`].
    tick: u64,
}

/// The map state behind the mutex.
#[derive(Debug, Default)]
struct Inner {
    /// Two-level map: fingerprint, then pipeline id. The split lets a
    /// lookup borrow the caller's `&str` instead of materializing an
    /// owned tuple key.
    map: HashMap<u64, HashMap<String, Entry>>,
    /// LRU index: recency tick → key. The first (smallest-tick) entry
    /// is the eviction victim; ticks are unique by construction.
    recency: BTreeMap<u64, (u64, String)>,
    /// Live entry count (mirrors the map; O(1) for stats).
    entries: usize,
    /// Live approximate byte footprint.
    bytes: usize,
    /// Next recency tick to hand out.
    next_tick: u64,
}

impl Inner {
    /// Moves `(fingerprint, pipeline_id)` to the most-recent position.
    fn touch(&mut self, fingerprint: u64, pipeline_id: &str) -> Option<Arc<DetectionResult>> {
        self.touch_full(fingerprint, pipeline_id).map(|(r, _)| r)
    }

    /// [`Inner::touch`], also returning the entry's digest.
    fn touch_full(
        &mut self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Option<(Arc<DetectionResult>, Option<Arc<ImageDigest>>)> {
        let fresh = self.next_tick;
        let entry = self.map.get_mut(&fingerprint)?.get_mut(pipeline_id)?;
        let old = std::mem::replace(&mut entry.tick, fresh);
        let result = Arc::clone(&entry.result);
        let digest = entry.digest.clone();
        self.next_tick += 1;
        let key = self.recency.remove(&old).expect("tick indexed");
        self.recency.insert(fresh, key);
        Some((result, digest))
    }
}

/// The fingerprint-keyed result cache: `(binary fingerprint, pipeline
/// id) → Arc<DetectionResult>`, optionally bounded with size-aware LRU
/// eviction ([`CacheCapacity`]).
///
/// Thread-safe behind `&self` (internal mutex, atomic counters), so one
/// instance serves every worker of a parallel sweep. Detection is
/// deterministic — two workers racing to fill the same key compute
/// identical results, the first insert wins, and both receive the
/// winning `Arc` — so a warm hit is observationally identical to a cold
/// run, and an *eviction* is observationally identical to never having
/// cached (both properties are property-tested in `fetch-core`).
///
/// # Examples
///
/// ```
/// use fetch_core::{content_fingerprint, AnalysisCache, CacheCapacity, Pipeline};
/// use fetch_synth::{synthesize, SynthConfig};
///
/// let case = synthesize(&SynthConfig::small(3));
/// let cache = AnalysisCache::with_capacity(CacheCapacity::entries(64));
/// let pipeline = Pipeline::fetch();
/// let fp = content_fingerprint(&case.binary);
/// let cold = cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
/// let warm = cache.get_or_compute(fp, &pipeline.id(), || unreachable!("warm hit"));
/// assert!(std::sync::Arc::ptr_eq(&cold, &warm));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().bytes, cold.approx_bytes());
/// ```
#[derive(Debug, Default)]
pub struct AnalysisCache {
    inner: Mutex<Inner>,
    capacity: CacheCapacity,
    flights: Mutex<HashMap<(u64, String), Arc<FlightSlot>>>,
    // `Arc`-backed so a host (the serve daemon) can register the very
    // same atomics into a `fetch_obs::Registry` — the `stats` counters
    // and a metrics exposition then reconcile by construction.
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
    coalesced: Arc<AtomicU64>,
}

/// One in-flight compute: waiters block on `ready` until the leader
/// publishes an outcome (`Some(result)` on completion, `None` when the
/// leader aborted and someone else must take over).
#[derive(Debug, Default)]
struct FlightSlot {
    outcome: Mutex<Option<Option<Arc<DetectionResult>>>>,
    ready: Condvar,
}

/// The caller's role in a coalesced compute ([`AnalysisCache::join_flight`]).
#[derive(Debug)]
pub enum Flight<'a> {
    /// The key was already cached — no compute needed.
    Hit(Arc<DetectionResult>),
    /// This caller is the leader: it must run the compute and then
    /// [`FlightGuard::complete`] (dropping the guard without completing
    /// aborts the flight and wakes the waiters empty-handed).
    Leader(FlightGuard<'a>),
    /// This caller waited on another caller's in-flight compute.
    /// `None` means the leader aborted — rejoin to take over.
    Waited(Option<Arc<DetectionResult>>),
}

/// Leadership of one in-flight compute. Obtained from
/// [`AnalysisCache::join_flight`]; resolve it with
/// [`FlightGuard::complete`]. If the guard is dropped instead (the
/// leader's compute failed or panicked), the flight is aborted: waiters
/// wake with `None` and the next joiner becomes the new leader — an
/// abort can stall waiters only until the drop, never forever.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    cache: &'a AnalysisCache,
    key: (u64, String),
    slot: Arc<FlightSlot>,
    done: bool,
}

impl FlightGuard<'_> {
    /// Publishes `result` to every waiter and inserts it into the cache
    /// (returning the resident `Arc`, exactly like
    /// [`AnalysisCache::insert`]). Waiters receive the published `Arc`
    /// directly, so they are correct even if capacity bounds evict the
    /// entry immediately.
    pub fn complete(mut self, result: Arc<DetectionResult>) -> Arc<DetectionResult> {
        let stored = self
            .cache
            .insert(self.key.0, &self.key.1, Arc::clone(&result));
        self.publish(Some(Arc::clone(&stored)));
        stored
    }

    fn publish(&mut self, outcome: Option<Arc<DetectionResult>>) {
        if self.done {
            return;
        }
        self.done = true;
        self.cache
            .flights
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.key);
        *self.slot.outcome.lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
        self.slot.ready.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.publish(None);
    }
}

impl AnalysisCache {
    /// An empty, unbounded cache (nothing is ever evicted).
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// An empty cache bounded by `capacity`: inserts that push the
    /// cache over either bound evict least-recently-used entries until
    /// it fits (see the module docs on capacity and eviction).
    pub fn with_capacity(capacity: CacheCapacity) -> AnalysisCache {
        AnalysisCache {
            capacity,
            ..AnalysisCache::default()
        }
    }

    /// The configured capacity bounds.
    pub fn capacity(&self) -> CacheCapacity {
        self.capacity
    }

    /// Looks up `(fingerprint, pipeline_id)`, counting the outcome and
    /// marking the entry most-recently-used on a hit.
    pub fn lookup(&self, fingerprint: u64, pipeline_id: &str) -> Option<Arc<DetectionResult>> {
        let hit = self.lock().touch(fingerprint, pipeline_id);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts a result for `(fingerprint, pipeline_id)` without
    /// consulting the hit/miss counters — the store-restore path of a
    /// serving daemon (the result was computed in a previous process).
    /// If the key is already resident the existing entry wins (results
    /// are deterministic, so both are identical) and is returned;
    /// either way the returned `Arc` is what the cache now serves —
    /// unless capacity bounds evicted it on arrival, which is still a
    /// correct (merely cold) cache.
    pub fn insert(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: Arc<DetectionResult>,
    ) -> Arc<DetectionResult> {
        self.insert_with_digest(fingerprint, pipeline_id, result, None)
    }

    /// [`AnalysisCache::insert`] carrying the [`ImageDigest`] the result
    /// was computed against, so later version-delta lookups
    /// ([`AnalysisCache::lookup_with_digest`]) can diff against it. When
    /// the key is already resident, the existing result still wins, but
    /// a previously digest-less entry (restored from a pre-digest store)
    /// adopts the incoming digest — the in-memory half of store healing.
    pub fn insert_with_digest(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        result: Arc<DetectionResult>,
        digest: Option<Arc<ImageDigest>>,
    ) -> Arc<DetectionResult> {
        let mut inner = self.lock();
        if let Some((existing, had_digest)) = inner.touch_full(fingerprint, pipeline_id) {
            if had_digest.is_none() {
                if let Some(d) = digest {
                    if let Some(entry) = inner
                        .map
                        .get_mut(&fingerprint)
                        .and_then(|m| m.get_mut(pipeline_id))
                    {
                        entry.digest = Some(d);
                    }
                }
            }
            return existing;
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let bytes = result.approx_bytes();
        inner
            .recency
            .insert(tick, (fingerprint, pipeline_id.to_string()));
        inner.map.entry(fingerprint).or_default().insert(
            pipeline_id.to_string(),
            Entry {
                result: Arc::clone(&result),
                digest,
                bytes,
                tick,
            },
        );
        inner.entries += 1;
        inner.bytes += bytes;
        self.evict_over_capacity(&mut inner);
        result
    }

    /// Looks up `(fingerprint, pipeline_id)` returning the result
    /// together with the [`ImageDigest`] it was computed against (when
    /// one was recorded). Counts and touches exactly like
    /// [`AnalysisCache::lookup`].
    pub fn lookup_with_digest(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
    ) -> Option<(Arc<DetectionResult>, Option<Arc<ImageDigest>>)> {
        let hit = self.lock().touch_full(fingerprint, pipeline_id);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Returns the cached result for `(fingerprint, pipeline_id)`, or
    /// runs `compute` and caches its output. `compute` runs outside the
    /// lock (detection is slow; the map must stay available to other
    /// workers), so two racers may both compute — determinism makes the
    /// results identical, the first insert wins, and every caller gets
    /// the winning `Arc`.
    pub fn get_or_compute(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        compute: impl FnOnce() -> DetectionResult,
    ) -> Arc<DetectionResult> {
        if let Some(hit) = self.lookup(fingerprint, pipeline_id) {
            return hit;
        }
        self.insert(fingerprint, pipeline_id, Arc::new(compute()))
    }

    /// Joins the single-flight compute for `(fingerprint, pipeline_id)`
    /// — the request-coalescing hook of the serving layer. Exactly one
    /// concurrent caller per uncached key becomes [`Flight::Leader`]
    /// (and must [`FlightGuard::complete`] with the computed result);
    /// every other concurrent caller blocks and receives the leader's
    /// published `Arc` as [`Flight::Waited`] — N simultaneous requests
    /// for one uncached key run exactly one compute.
    ///
    /// The cache is re-checked after the flight table is locked, so a
    /// leader completing between the caller's earlier [`lookup`] miss
    /// and this call is observed as [`Flight::Hit`]. Neither that
    /// re-check nor a wait touches the hit/miss counters (the caller's
    /// own `lookup` already counted); successful waits are counted in
    /// [`CacheStats::coalesced`].
    ///
    /// [`lookup`]: AnalysisCache::lookup
    pub fn join_flight(&self, fingerprint: u64, pipeline_id: &str) -> Flight<'_> {
        let mut flights = self.flights.lock().unwrap_or_else(|p| p.into_inner());
        // Lock order is flights → inner; insert/complete only ever hold
        // one of the two at a time, so the order cannot deadlock.
        if let Some(hit) = self.lock().touch(fingerprint, pipeline_id) {
            return Flight::Hit(hit);
        }
        let key = (fingerprint, pipeline_id.to_string());
        if let Some(slot) = flights.get(&key) {
            let slot = Arc::clone(slot);
            drop(flights);
            let mut outcome = slot.outcome.lock().unwrap_or_else(|p| p.into_inner());
            while outcome.is_none() {
                outcome = slot.ready.wait(outcome).unwrap_or_else(|p| p.into_inner());
            }
            let got = outcome.clone().expect("loop exits on Some");
            if got.is_some() {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            return Flight::Waited(got);
        }
        let slot = Arc::new(FlightSlot::default());
        flights.insert(key.clone(), Arc::clone(&slot));
        Flight::Leader(FlightGuard {
            cache: self,
            key,
            slot,
            done: false,
        })
    }

    /// [`get_or_compute`](AnalysisCache::get_or_compute) with request
    /// coalescing: concurrent callers for one uncached key run exactly
    /// one `compute` between them (the others wait and share the
    /// leader's result) instead of racing to compute redundantly.
    pub fn get_or_compute_coalesced(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        compute: impl FnOnce() -> DetectionResult,
    ) -> Arc<DetectionResult> {
        if let Some(hit) = self.lookup(fingerprint, pipeline_id) {
            return hit;
        }
        let mut compute = Some(compute);
        loop {
            match self.join_flight(fingerprint, pipeline_id) {
                Flight::Hit(r) | Flight::Waited(Some(r)) => return r,
                Flight::Leader(guard) => {
                    let compute = compute.take().expect("leader resolves the loop");
                    return guard.complete(Arc::new(compute()));
                }
                // The leader aborted; rejoin (possibly as leader).
                Flight::Waited(None) => continue,
            }
        }
    }

    /// Evicts least-recently-used entries until the cache fits its
    /// capacity again. The newest entry holds the highest tick, so it
    /// is evicted last — but *is* evicted when it alone exceeds the
    /// byte bound (the cache never exceeds capacity).
    fn evict_over_capacity(&self, inner: &mut Inner) {
        while inner.entries > 0 && self.capacity.over(inner.entries, inner.bytes) {
            let (&tick, _) = inner.recency.iter().next().expect("entries > 0");
            let (fingerprint, pipeline_id) = inner.recency.remove(&tick).expect("present");
            let by_pipeline = inner.map.get_mut(&fingerprint).expect("indexed");
            let entry = by_pipeline.remove(&pipeline_id).expect("indexed");
            if by_pipeline.is_empty() {
                inner.map.remove(&fingerprint);
            }
            inner.entries -= 1;
            inner.bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep running; not counted as
    /// evictions).
    pub fn clear(&self) {
        let mut inner = self.lock();
        *inner = Inner {
            next_tick: inner.next_tick,
            ..Inner::default()
        };
    }

    /// A snapshot of the lookup/eviction counters and the live
    /// entry/byte footprint.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.lock();
            (inner.entries, inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Registers the cache's lookup counters into an observability
    /// registry under `{prefix}_hits_total`, `{prefix}_misses_total`,
    /// `{prefix}_evictions_total`, and `{prefix}_coalesced_total`.
    ///
    /// The registry is handed the *same* atomics that back
    /// [`AnalysisCache::stats`], so a metrics exposition and the stats
    /// snapshot can never drift apart — there is one counter, read from
    /// two places, not two counters kept in sync.
    pub fn register_metrics(&self, registry: &fetch_obs::Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}_hits_total"), Arc::clone(&self.hits));
        registry.register_counter(&format!("{prefix}_misses_total"), Arc::clone(&self.misses));
        registry.register_counter(
            &format!("{prefix}_evictions_total"),
            Arc::clone(&self.evictions),
        );
        registry.register_counter(
            &format!("{prefix}_coalesced_total"),
            Arc::clone(&self.coalesced),
        );
    }

    /// Entries are only ever inserted whole, so the map is consistent
    /// even if a panicking worker poisoned the mutex — recover instead
    /// of propagating (the batch driver catches worker panics and keeps
    /// the remaining shards running).
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use fetch_binary::{write_elf, ElfImage};
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn fingerprint_ignores_name_but_not_content() {
        let case = synthesize(&SynthConfig::small(21));
        let fp = content_fingerprint(&case.binary);
        let mut renamed = case.binary.clone();
        renamed.name = "other-name".into();
        assert_eq!(content_fingerprint(&renamed), fp, "name must not key");
        let stripped = case.binary.stripped();
        assert_ne!(
            content_fingerprint(&stripped),
            fp,
            "symbol removal changes detection inputs, so it must re-key"
        );
    }

    #[test]
    fn image_and_content_domains_never_alias() {
        let case = synthesize(&SynthConfig::small(22));
        let image = ElfImage::parse(write_elf(&case.binary)).unwrap();
        assert_ne!(
            image_fingerprint(&image),
            content_fingerprint(&image.to_binary())
        );
    }

    #[test]
    fn cache_is_keyed_by_pipeline_id_too() {
        let case = synthesize(&SynthConfig::small(23));
        let cache = AnalysisCache::new();
        let fp = content_fingerprint(&case.binary);
        let fde = Pipeline::parse("FDE").unwrap();
        let fde_rec = Pipeline::parse("FDE+Rec").unwrap();
        let a = cache.get_or_compute(fp, &fde.id(), || fde.run(&case.binary));
        let b = cache.get_or_compute(fp, &fde_rec.id(), || fde_rec.run(&case.binary));
        assert_ne!(a.layers, b.layers);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().bytes, a.approx_bytes() + b.approx_bytes());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().misses, 2, "counters survive clear");
        assert_eq!(cache.stats().evictions, 0, "clear is not eviction");
    }

    #[test]
    fn entry_capacity_evicts_least_recently_used() {
        let cases: Vec<_> = (31u64..35)
            .map(|s| synthesize(&SynthConfig::small(s)))
            .collect();
        let pipeline = Pipeline::parse("FDE").unwrap();
        let id = pipeline.id();
        let cache = AnalysisCache::with_capacity(CacheCapacity::entries(2));
        let fps: Vec<u64> = cases
            .iter()
            .map(|c| content_fingerprint(&c.binary))
            .collect();

        cache.get_or_compute(fps[0], &id, || pipeline.run(&cases[0].binary));
        cache.get_or_compute(fps[1], &id, || pipeline.run(&cases[1].binary));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.lookup(fps[0], &id).is_some());
        cache.get_or_compute(fps[2], &id, || pipeline.run(&cases[2].binary));

        assert_eq!(cache.len(), 2);
        assert!(
            cache.lookup(fps[0], &id).is_some(),
            "recently used survives"
        );
        assert!(cache.lookup(fps[1], &id).is_none(), "LRU victim evicted");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn byte_capacity_never_exceeded_even_by_one_entry() {
        let case = synthesize(&SynthConfig::small(36));
        let pipeline = Pipeline::fetch();
        let cold = pipeline.run(&case.binary);
        // A bound smaller than any single result: nothing is admitted,
        // every lookup recomputes, answers stay correct.
        let cache = AnalysisCache::with_capacity(CacheCapacity::bytes(cold.approx_bytes() / 2));
        let fp = content_fingerprint(&case.binary);
        for _ in 0..3 {
            let served = cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
            assert_eq!(*served, cold);
            let stats = cache.stats();
            assert_eq!(stats.entries, 0, "oversized entry must not be admitted");
            assert_eq!(stats.bytes, 0);
        }
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn concurrent_flights_run_exactly_one_compute() {
        use std::sync::atomic::AtomicUsize;
        let case = synthesize(&SynthConfig::small(38));
        let pipeline = Pipeline::fetch();
        let fp = content_fingerprint(&case.binary);
        let id = pipeline.id();
        let cache = AnalysisCache::new();
        let computes = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<Arc<DetectionResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        cache.get_or_compute_coalesced(fp, &id, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            pipeline.run(&case.binary)
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "coalescing must collapse concurrent computes to one"
        );
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]), "all callers share one Arc");
        }
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            8,
            "one counted lookup per caller"
        );
        assert!(
            stats.coalesced < 8,
            "at most 7 callers can wait on the one leader"
        );
    }

    #[test]
    fn aborted_flight_hands_leadership_over() {
        let case = synthesize(&SynthConfig::small(39));
        let pipeline = Pipeline::parse("FDE").unwrap();
        let fp = content_fingerprint(&case.binary);
        let id = pipeline.id();
        let cache = AnalysisCache::new();
        let guard = match cache.join_flight(fp, &id) {
            Flight::Leader(g) => g,
            other => panic!("first joiner must lead, got {other:?}"),
        };
        drop(guard); // leader aborts without completing
        match cache.join_flight(fp, &id) {
            Flight::Leader(g) => {
                let done = g.complete(Arc::new(pipeline.run(&case.binary)));
                assert!(!done.starts.is_empty());
            }
            other => panic!("next joiner must inherit leadership, got {other:?}"),
        }
        assert!(
            matches!(cache.join_flight(fp, &id), Flight::Hit(_)),
            "completed flight must be a cache hit"
        );
    }

    #[test]
    fn insert_is_idempotent_and_first_writer_wins() {
        let case = synthesize(&SynthConfig::small(37));
        let pipeline = Pipeline::parse("FDE").unwrap();
        let fp = content_fingerprint(&case.binary);
        let cache = AnalysisCache::new();
        let first = cache.insert(fp, &pipeline.id(), Arc::new(pipeline.run(&case.binary)));
        let second = cache.insert(fp, &pipeline.id(), Arc::new(pipeline.run(&case.binary)));
        assert!(Arc::ptr_eq(&first, &second), "first insert wins");
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "insert skips counters");
    }
}
