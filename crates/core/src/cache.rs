//! The serving-layer result cache: memoized [`DetectionResult`]s keyed
//! by `(binary content fingerprint, pipeline id)`.
//!
//! A production detection service answers the same query — the same
//! binary under the same pipeline — over and over. [`AnalysisCache`]
//! makes the repeat a lookup: results are stored as
//! `Arc<DetectionResult>` behind an internal mutex, so one cache is
//! shared by every worker of a batch sweep ([`BatchDriver::run_with_cache`]
//! in `fetch-bench`) and every cached entry is handed out without
//! copying. Entry points: [`crate::Fetch::detect_cached`],
//! [`crate::Fetch::detect_image_cached`], and
//! `fetch_tools::run_tool_on_image_cached`.
//!
//! Keys are 64-bit FNV-1a content fingerprints ([`content_fingerprint`]
//! over a materialized [`Binary`], [`image_fingerprint`] over a raw ELF
//! image — domain-separated so the two keyspaces cannot alias each
//! other) plus the pipeline's stable [`crate::Pipeline::id`]. The
//! fingerprint covers everything detection reads — entry point, section
//! kinds/addresses/bytes, symbols — and nothing it does not (display
//! name, build metadata), so renaming a binary still hits.

use crate::state::DetectionResult;
use fetch_binary::Binary;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Domain tag mixed into [`content_fingerprint`] keys.
const DOMAIN_CONTENT: u64 = 0x636f_6e74_656e_7431; // "content1"
/// Domain tag mixed into [`image_fingerprint`] keys.
const DOMAIN_IMAGE: u64 = 0x696d_6167_6562_7566; // "imagebuf"

struct Fnv(u64);

impl Fnv {
    fn new(domain: u64) -> Fnv {
        Fnv(FNV_OFFSET ^ domain)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        // Length first, so concatenated fields cannot alias.
        self.u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
}

/// 64-bit content fingerprint of a materialized [`Binary`]: entry point,
/// sections (kind, address, bytes), and symbols (name, address, size) —
/// exactly the inputs detection reads. The display name and build
/// metadata are excluded on purpose: they never influence a
/// [`DetectionResult`].
pub fn content_fingerprint(binary: &Binary) -> u64 {
    let mut h = Fnv::new(DOMAIN_CONTENT);
    h.u64(binary.entry);
    h.u64(binary.sections.len() as u64);
    for s in &binary.sections {
        h.u64(s.kind as u64);
        h.u64(s.addr);
        h.bytes(&s.bytes);
    }
    h.u64(binary.symbols.len() as u64);
    for sym in &binary.symbols {
        h.bytes(sym.name.as_bytes());
        h.u64(sym.addr);
        h.u64(sym.size);
    }
    h.0
}

/// 64-bit fingerprint of a raw ELF image buffer — one linear pass, no
/// section walk, so image-path lookups ([`crate::Fetch::detect_image_cached`])
/// skip materialization entirely on a hit. Domain-separated from
/// [`content_fingerprint`]; the two key different entries for the same
/// underlying binary (a missed dedup opportunity, never a wrong answer).
pub fn image_fingerprint(image: &fetch_binary::ElfImage) -> u64 {
    let mut h = Fnv::new(DOMAIN_IMAGE);
    h.bytes(image.view().image());
    h.0
}

/// Lookup/insert counters of an [`AnalysisCache`] (monotone snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Resident entries at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]` (0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The fingerprint-keyed result cache: `(binary fingerprint, pipeline
/// id) → Arc<DetectionResult>`.
///
/// Thread-safe behind `&self` (internal mutex, atomic counters), so one
/// instance serves every worker of a parallel sweep. Detection is
/// deterministic — two workers racing to fill the same key compute
/// identical results, the first insert wins, and both receive the
/// winning `Arc` — so a warm hit is observationally identical to a cold
/// run (a property test in `fetch-core` enforces it).
///
/// # Examples
///
/// ```
/// use fetch_core::{content_fingerprint, AnalysisCache, Pipeline};
/// use fetch_synth::{synthesize, SynthConfig};
///
/// let case = synthesize(&SynthConfig::small(3));
/// let cache = AnalysisCache::new();
/// let pipeline = Pipeline::fetch();
/// let fp = content_fingerprint(&case.binary);
/// let cold = cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
/// let warm = cache.get_or_compute(fp, &pipeline.id(), || unreachable!("warm hit"));
/// assert!(std::sync::Arc::ptr_eq(&cold, &warm));
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Two-level map: fingerprint, then pipeline id. The split keeps
    /// the hot serving path allocation-free — a lookup borrows the
    /// caller's `&str` instead of materializing an owned tuple key.
    map: Mutex<HashMap<u64, HashMap<String, Arc<DetectionResult>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Looks up `(fingerprint, pipeline_id)`, counting the outcome.
    /// Allocation-free on both hit and miss.
    pub fn lookup(&self, fingerprint: u64, pipeline_id: &str) -> Option<Arc<DetectionResult>> {
        let hit = self
            .lock()
            .get(&fingerprint)
            .and_then(|by_pipeline| by_pipeline.get(pipeline_id))
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Returns the cached result for `(fingerprint, pipeline_id)`, or
    /// runs `compute` and caches its output. `compute` runs outside the
    /// lock (detection is slow; the map must stay available to other
    /// workers), so two racers may both compute — determinism makes the
    /// results identical, the first insert wins, and every caller gets
    /// the winning `Arc`.
    pub fn get_or_compute(
        &self,
        fingerprint: u64,
        pipeline_id: &str,
        compute: impl FnOnce() -> DetectionResult,
    ) -> Arc<DetectionResult> {
        if let Some(hit) = self.lookup(fingerprint, pipeline_id) {
            return hit;
        }
        let computed = Arc::new(compute());
        Arc::clone(
            self.lock()
                .entry(fingerprint)
                .or_default()
                .entry(pipeline_id.to_string())
                .or_insert(computed),
        )
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().values().map(HashMap::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep running).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// A snapshot of the lookup counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Entries are only ever inserted whole, so the map is consistent
    /// even if a panicking worker poisoned the mutex — recover instead
    /// of propagating (the batch driver catches worker panics and keeps
    /// the remaining shards running).
    fn lock(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, HashMap<String, Arc<DetectionResult>>>> {
        self.map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use fetch_binary::{write_elf, ElfImage};
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn fingerprint_ignores_name_but_not_content() {
        let case = synthesize(&SynthConfig::small(21));
        let fp = content_fingerprint(&case.binary);
        let mut renamed = case.binary.clone();
        renamed.name = "other-name".into();
        assert_eq!(content_fingerprint(&renamed), fp, "name must not key");
        let stripped = case.binary.stripped();
        assert_ne!(
            content_fingerprint(&stripped),
            fp,
            "symbol removal changes detection inputs, so it must re-key"
        );
    }

    #[test]
    fn image_and_content_domains_never_alias() {
        let case = synthesize(&SynthConfig::small(22));
        let image = ElfImage::parse(write_elf(&case.binary)).unwrap();
        assert_ne!(
            image_fingerprint(&image),
            content_fingerprint(&image.to_binary())
        );
    }

    #[test]
    fn cache_is_keyed_by_pipeline_id_too() {
        let case = synthesize(&SynthConfig::small(23));
        let cache = AnalysisCache::new();
        let fp = content_fingerprint(&case.binary);
        let fde = Pipeline::parse("FDE").unwrap();
        let fde_rec = Pipeline::parse("FDE+Rec").unwrap();
        let a = cache.get_or_compute(fp, &fde.id(), || fde.run(&case.binary));
        let b = cache.get_or_compute(fp, &fde_rec.id(), || fde_rec.run(&case.binary));
        assert_ne!(a.layers, b.layers);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2, "counters survive clear");
    }
}
