//! Function-pointer detection (§IV-E): the soundness-driven layer that
//! closes the gap between FDE+Rec coverage and full coverage.
//!
//! A super-set of potential function pointers is collected (every sliding
//! 8-byte window in the data sections plus every constant operand and
//! rip-relative `lea` target in the disassembled code). Each candidate is
//! validated by conservative recursive disassembly with four error
//! classes; survivors become new function starts.

use crate::state::{DetectionState, Provenance};
use crate::strategy::Strategy;
use fetch_analyses::{validate_calling_convention_cached, CallConvVerdict};
use fetch_binary::Binary;
use fetch_disasm::FunctionBody;
use fetch_x64::{decode, Flow};
use std::collections::{BTreeMap, BTreeSet};

/// Why a candidate pointer was rejected (§IV-E's four error classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// (i) Disassembly from the candidate hits an invalid opcode.
    InvalidOpcode,
    /// (ii) Disassembly runs into the middle of previously disassembled
    /// instructions (misaligned overlap).
    OverlapsExisting,
    /// (iii) A control transfer targets the middle of a previously
    /// detected function.
    JumpsIntoFunction,
    /// (iv) The calling convention is violated at the candidate.
    CallConv,
}

/// Collects the conservative data-pointer super-set: every consecutive
/// 8 bytes of every data section interpreted as a little-endian address,
/// kept when it lands in `.text`. Returns `target → source addresses`.
pub fn collect_data_pointers(bin: &Binary) -> BTreeMap<u64, Vec<u64>> {
    collect_data_pointers_counted(bin).0
}

/// [`collect_data_pointers`], also reporting how many data-section
/// bytes the sweep covered (the `bytes_scanned` trace counter — the
/// scan's work was invisible next to decode hit/miss accounting).
///
/// The scan is batched: when every `.text` address shares one top
/// byte (the usual case — small images nowhere near a 256 TiB
/// boundary), a little-endian window pointing into `.text` must have
/// exactly that byte last, so a word-at-a-time prefilter locates
/// top-byte occurrences eight lanes at a time and only those windows
/// are materialized and range-checked. Candidate set and source order
/// are identical to the naive sliding window (each flagged position
/// still passes the exact bounds check; the filter only skips
/// positions that cannot pass it).
pub fn collect_data_pointers_counted(bin: &Binary) -> (BTreeMap<u64, Vec<u64>>, u64) {
    let text = bin.text();
    let lo = text.addr;
    let hi = text.addr + text.bytes.len() as u64;
    let mut out: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut bytes_scanned = 0u64;
    for sec in bin.data_sections() {
        bytes_scanned += sec.bytes.len() as u64;
        if sec.bytes.len() < 8 {
            continue;
        }
        if lo >> 56 == (hi - 1) >> 56 {
            scan_windows_topbyte(&sec.bytes, sec.addr, lo, hi, &mut out);
        } else {
            for off in 0..=sec.bytes.len() - 8 {
                let v = u64::from_le_bytes(sec.bytes[off..off + 8].try_into().unwrap());
                if lo <= v && v < hi {
                    out.entry(v).or_default().push(sec.addr + off as u64);
                }
            }
        }
    }
    (out, bytes_scanned)
}

/// The word-at-a-time pass of [`collect_data_pointers_counted`]:
/// scans `bytes` for occurrences of `.text`'s shared top byte using
/// SWAR zero-byte detection over `chunk ^ splat(top)` and emits the
/// 8-byte window *ending* at each occurrence. The zero-byte trick
/// (`(x - 0x01…01) & !x & 0x80…80`) can flag a spurious lane when a
/// borrow propagates, never miss a real one — spurious lanes are
/// discarded by the exact range check every candidate passes anyway.
fn scan_windows_topbyte(
    bytes: &[u8],
    sec_addr: u64,
    lo: u64,
    hi: u64,
    out: &mut BTreeMap<u64, Vec<u64>>,
) {
    const ONES: u64 = 0x0101_0101_0101_0101;
    const HIGHS: u64 = 0x8080_8080_8080_8080;
    let top = (lo >> 56) as u8;
    let splat = u64::from_le_bytes([top; 8]);
    let mut consider = |top_at: usize| {
        let Some(off) = top_at.checked_sub(7) else {
            return;
        };
        let v = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        if lo <= v && v < hi {
            out.entry(v).or_default().push(sec_addr + off as u64);
        }
    };
    let mut chunks = bytes.chunks_exact(8);
    let mut base = 0usize;
    for c in &mut chunks {
        let x = u64::from_le_bytes(c.try_into().expect("8-byte chunk")) ^ splat;
        let mut lanes = x.wrapping_sub(ONES) & !x & HIGHS;
        while lanes != 0 {
            // Lowest set bit first: candidates stay in ascending
            // source order, matching the naive scan exactly.
            consider(base + (lanes.trailing_zeros() / 8) as usize);
            lanes &= lanes - 1;
        }
        base += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == top {
            consider(base + i);
        }
    }
}

/// An `instruction address → owning function start` index over a
/// round's function extents, for the class-(iii) interior check. The
/// linear `extents.values().find(|b| b.contains(t))` it replaces made
/// every direct-target instruction cost `O(functions × lookup)` — the
/// access pattern behind the superlinear `insts_per_sec` falloff on
/// large corpora.
///
/// Layout: a span directory over the (already-sorted) bodies rather
/// than a flattened copy of every member address — queries are rare
/// (only direct targets of *undecoded* candidate code reach it), so
/// flattening and sorting tens of thousands of addresses per scan
/// round was pure build-cost. Each entry is `(body min, body max,
/// start)` ordered by span start, plus a running maximum of span ends
/// so a lookup knows how far left an overlapping body could begin.
#[derive(Debug, Clone)]
pub struct OwnerIndex<'e> {
    /// `(span_min, span_max, start)` sorted ascending; the body's exact
    /// membership is re-checked against `extents` on a span hit.
    spans: Vec<(u64, u64, u64)>,
    /// `prefix_max[i]` = max span end over `spans[..=i]`.
    prefix_max: Vec<u64>,
    /// The extents snapshot the spans describe.
    extents: &'e BTreeMap<u64, FunctionBody>,
}

impl<'e> OwnerIndex<'e> {
    /// Builds the index. Where bodies overlap (an absorbed tail
    /// callee appears in its caller's extent too), the smallest
    /// owning start wins — the same answer ascending-order `.find`
    /// over the extents map produced.
    pub fn build(extents: &'e BTreeMap<u64, FunctionBody>) -> OwnerIndex<'e> {
        let mut spans: Vec<(u64, u64, u64)> = extents
            .values()
            .filter_map(|body| {
                let (&min, &max) = (body.insts.first()?, body.insts.last()?);
                Some((min, max, body.start))
            })
            .collect();
        spans.sort_unstable();
        let mut prefix_max = Vec::with_capacity(spans.len());
        let mut running = 0u64;
        for &(_, max, _) in &spans {
            running = running.max(max);
            prefix_max.push(running);
        }
        OwnerIndex {
            spans,
            prefix_max,
            extents,
        }
    }

    /// The start of the function owning the instruction at `addr`
    /// (smallest owning start when absorbed bodies overlap).
    pub fn owner_of(&self, addr: u64) -> Option<u64> {
        let mut owner: Option<u64> = None;
        let mut i = self.spans.partition_point(|&(min, _, _)| min <= addr);
        while i > 0 {
            i -= 1;
            if self.prefix_max[i] < addr {
                break; // nothing further left can reach this address
            }
            let (_, max, start) = self.spans[i];
            let in_body = max >= addr && self.extents.get(&start).is_some_and(|b| b.contains(addr));
            if in_body {
                owner = Some(owner.map_or(start, |o: u64| o.min(start)));
            }
        }
        owner
    }
}

/// Validates one candidate start against the four §IV-E error classes.
///
/// `extents` are the bodies of currently detected functions; `known`
/// is the current instruction map (for overlap checks). Callers
/// validating many candidates against one extents snapshot should
/// build an [`OwnerIndex`] once and use
/// [`validate_candidate_indexed`] instead.
pub fn validate_candidate(
    bin: &Binary,
    candidate: u64,
    known: &fetch_disasm::Disassembly,
    extents: &BTreeMap<u64, FunctionBody>,
    starts: &[u64],
    stop_calls: &[u64],
) -> Result<(), ValidationError> {
    validate_candidate_indexed(
        bin,
        candidate,
        known,
        &OwnerIndex::build(extents),
        starts,
        stop_calls,
    )
}

/// [`validate_candidate`] against a prebuilt [`OwnerIndex`] —
/// verdict-identical, without the per-candidate extents walk.
pub fn validate_candidate_indexed(
    bin: &Binary,
    candidate: u64,
    known: &fetch_disasm::Disassembly,
    owners: &OwnerIndex,
    starts: &[u64],
    stop_calls: &[u64],
) -> Result<(), ValidationError> {
    validate_candidate_precheck(bin, candidate, known, stop_calls)?;
    validate_candidate_explore(bin, candidate, known, owners, starts, stop_calls)
}

/// The owner-free first half of candidate validation — bounds, calling
/// convention (iv), and body plausibility. Split out so batch callers
/// can defer the extents/[`OwnerIndex`] build until some candidate
/// actually survives this far (most fail here).
pub fn validate_candidate_precheck(
    bin: &Binary,
    candidate: u64,
    known: &fetch_disasm::Disassembly,
    stop_calls: &[u64],
) -> Result<(), ValidationError> {
    let text = bin.text();
    if !text.contains(candidate) {
        return Err(ValidationError::InvalidOpcode);
    }

    // (iv) calling convention first: it also rejects padding starts.
    match validate_calling_convention_cached(bin, candidate, 96, stop_calls, known) {
        CallConvVerdict::Valid => {}
        CallConvVerdict::Undecodable { .. } => return Err(ValidationError::InvalidOpcode),
        _ => return Err(ValidationError::CallConv),
    }
    // Plausibility: sliding-window composites occasionally alias a lone
    // terminator byte in data; no real function consists of a bare
    // ret/ud2/hlt with no body, so such candidates are rejected.
    if let Ok(first) = decode(text.slice_from(candidate).expect("in range"), candidate) {
        if matches!(first.flow(), Flow::Ret | Flow::Halt) {
            return Err(ValidationError::CallConv);
        }
    }
    Ok(())
}

/// The second half of candidate validation: conservative exploration
/// for classes (i)–(iii). Assumes [`validate_candidate_precheck`]
/// passed.
pub fn validate_candidate_explore(
    bin: &Binary,
    candidate: u64,
    known: &fetch_disasm::Disassembly,
    owners: &OwnerIndex,
    starts: &[u64],
    stop_calls: &[u64],
) -> Result<(), ValidationError> {
    let text = bin.text();
    // Conservative exploration for classes (i)–(iii).
    let mut work = vec![candidate];
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut budget = 256u32;
    while let Some(mut cur) = work.pop() {
        loop {
            if budget == 0 || !text.contains(cur) || !seen.insert(cur) {
                break;
            }
            budget -= 1;
            // (ii) misaligned overlap with previously disassembled code.
            if let Some(prev) = known.at_or_covering(cur) {
                if prev.addr < cur && cur < prev.end() {
                    return Err(ValidationError::OverlapsExisting);
                }
            }
            if known.contains(cur) {
                break; // aligned junction with known code: consistent
            }
            let inst = match decode(text.slice_from(cur).expect("in range"), cur) {
                Ok(i) => i,
                Err(_) => return Err(ValidationError::InvalidOpcode), // (i)
            };
            // (iii) control transfer into the middle of a detected function.
            if let Some(t) = inst.direct_target() {
                if starts.binary_search(&t).is_err() {
                    if let Some(owner) = owners.owner_of(t) {
                        if owner != t {
                            return Err(ValidationError::JumpsIntoFunction);
                        }
                    }
                }
            }
            match inst.flow() {
                Flow::Fallthrough | Flow::IndirectCall => cur = inst.end(),
                Flow::Call(t) if stop_calls.binary_search(&t).is_ok() => break,
                Flow::Call(_) => cur = inst.end(),
                Flow::Jump(t) => {
                    if starts.binary_search(&t).is_err() {
                        work.push(t);
                    }
                    break;
                }
                Flow::CondJump(t) => {
                    if starts.binary_search(&t).is_err() {
                        work.push(t);
                    }
                    cur = inst.end();
                }
                Flow::IndirectJump | Flow::Ret | Flow::Halt | Flow::Trap => break,
            }
        }
    }
    Ok(())
}

/// `Xref`: the §IV-E pointer-scan strategy layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointerScan;

impl PointerScan {
    /// Runs the scan, returning accepted candidates.
    pub fn scan(&self, state: &mut DetectionState<'_>) -> Vec<u64> {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, fetch_disasm::ErrorCallPolicy::SliceZero);
        }
        let mut accepted = Vec::new();
        // The binary (and so `.text`) is immutable for the whole scan;
        // hoist it out of the per-candidate loop.
        let binary = state.binary;
        let text = binary.text();
        loop {
            // (Re)collect candidates: data pointers + code constants,
            // both memoized on the state (the data half never changes;
            // the code half is invalidated by each recursion).
            let mut candidates: Vec<u64> = state.data_pointers().keys().copied().collect();
            candidates.extend(state.code_constants().iter().copied());
            candidates.sort_unstable();
            candidates.dedup();
            // Flattened start set: the precheck and exploration loops
            // probe it per candidate/branch, where a slice search beats
            // a B-tree walk.
            let starts: Vec<u64> = state.start_set().iter().copied().collect();
            let mut stop_calls: Vec<u64> = state.rec.noreturn.iter().copied().collect();
            stop_calls.extend(state.error_funcs.iter().copied());
            stop_calls.sort_unstable();
            stop_calls.dedup();
            // Pass 1 — owner-free prechecks (callconv + plausibility),
            // where most candidates die. The extents/owner index is
            // only built below when something survives, which skips the
            // rebuild entirely on rounds that accept nothing new.
            let mut survivors = Vec::new();
            let mut checked = 0u64;
            for c in candidates {
                if starts.binary_search(&c).is_ok() || !text.contains(c) {
                    continue;
                }
                checked += 1;
                if validate_candidate_precheck(binary, c, &state.rec.disasm, &stop_calls).is_ok() {
                    survivors.push(c);
                }
            }
            state.note_candidates_checked(checked);
            // Pass 2 — conservative exploration against the per-round
            // ownership snapshot, built once for all survivors.
            let mut new_this_round = Vec::new();
            if !survivors.is_empty() {
                let extents = state.extents();
                let owners = OwnerIndex::build(&extents);
                for c in survivors {
                    if validate_candidate_explore(
                        binary,
                        c,
                        &state.rec.disasm,
                        &owners,
                        &starts,
                        &stop_calls,
                    )
                    .is_ok()
                    {
                        new_this_round.push(c);
                    }
                }
            }
            if new_this_round.is_empty() {
                break;
            }
            for &c in &new_this_round {
                state.add_start(c, Provenance::PointerScan);
            }
            accepted.extend(new_this_round);
            // Update the collection with code discovered from the newly
            // accepted pointers (the paper's "update the pointer
            // collection" step).
            state.run_recursion(true, fetch_disasm::ErrorCallPolicy::SliceZero);
        }
        accepted
    }
}

impl Strategy for PointerScan {
    fn name(&self) -> &'static str {
        "Xref"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        self.scan(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{run_stack, FdeSeeds, SafeRecursion};
    use fetch_binary::{FuncKind, Reach};
    use fetch_synth::{synthesize, SynthConfig};

    fn pointered_case() -> fetch_binary::TestCase {
        let mut cfg = SynthConfig::small(41);
        cfg.n_funcs = 100;
        cfg.rates.pointer_only = 0.06;
        cfg.rates.asm_funcs = 7;
        synthesize(&cfg)
    }

    #[test]
    fn candidate_collection_covers_pointer_only_functions() {
        // The §IV-E super-set (data windows + code constants/lea targets)
        // must contain every pointer-only function's entry.
        let case = pointered_case();
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        let mut candidates: std::collections::BTreeSet<u64> = collect_data_pointers(&case.binary)
            .keys()
            .copied()
            .collect();
        for inst in state.rec.disasm.iter() {
            if let Some(t) = inst.lea_rip_target() {
                candidates.insert(t);
            }
            for c in inst.const_operands() {
                candidates.insert(c);
            }
        }
        let pointer_only: Vec<u64> = case
            .truth
            .functions
            .iter()
            .filter(|f| matches!(f.reach, Reach::PointerOnly))
            .map(|f| f.entry())
            .collect();
        assert!(!pointer_only.is_empty());
        for p in &pointer_only {
            assert!(candidates.contains(p), "candidate for {p:#x} missing");
        }
    }

    #[test]
    fn scan_recovers_pointer_only_functions_without_false_positives() {
        let case = pointered_case();
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        let accepted = PointerScan.scan(&mut state);
        // Every accepted pointer is a true function start (the paper:
        // "+154 starts without introducing new false positives").
        for a in &accepted {
            assert!(
                case.truth.is_start(*a),
                "pointer scan accepted non-start {a:#x}"
            );
        }
        // Pointer-only compiled/assembly functions without FDEs are now
        // covered.
        for f in &case.truth.functions {
            if matches!(f.reach, Reach::PointerOnly) && f.kind == FuncKind::Assembly {
                assert!(
                    state.starts.contains_key(&f.entry()),
                    "{} at {:#x} missed",
                    f.name,
                    f.entry()
                );
            }
        }
    }

    #[test]
    fn full_stack_runs_clean() {
        let case = pointered_case();
        let r = run_stack(
            &case.binary,
            &[&FdeSeeds, &SafeRecursion::default(), &PointerScan],
        );
        assert_eq!(r.layers, vec!["FDE", "Rec", "Xref"]);
    }
}
