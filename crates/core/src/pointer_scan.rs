//! Function-pointer detection (§IV-E): the soundness-driven layer that
//! closes the gap between FDE+Rec coverage and full coverage.
//!
//! A super-set of potential function pointers is collected (every sliding
//! 8-byte window in the data sections plus every constant operand and
//! rip-relative `lea` target in the disassembled code). Each candidate is
//! validated by conservative recursive disassembly with four error
//! classes; survivors become new function starts.

use crate::state::{DetectionState, Provenance};
use crate::strategy::Strategy;
use fetch_analyses::{validate_calling_convention_cached, CallConvVerdict};
use fetch_binary::Binary;
use fetch_disasm::FunctionBody;
use fetch_x64::{decode, Flow};
use std::collections::{BTreeMap, BTreeSet};

/// Why a candidate pointer was rejected (§IV-E's four error classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// (i) Disassembly from the candidate hits an invalid opcode.
    InvalidOpcode,
    /// (ii) Disassembly runs into the middle of previously disassembled
    /// instructions (misaligned overlap).
    OverlapsExisting,
    /// (iii) A control transfer targets the middle of a previously
    /// detected function.
    JumpsIntoFunction,
    /// (iv) The calling convention is violated at the candidate.
    CallConv,
}

/// Collects the conservative data-pointer super-set: every consecutive
/// 8 bytes of every data section interpreted as a little-endian address,
/// kept when it lands in `.text`. Returns `target → source addresses`.
pub fn collect_data_pointers(bin: &Binary) -> BTreeMap<u64, Vec<u64>> {
    let text = bin.text();
    let mut out: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for sec in bin.data_sections() {
        if sec.bytes.len() < 8 {
            continue;
        }
        for off in 0..=sec.bytes.len() - 8 {
            let v = u64::from_le_bytes(sec.bytes[off..off + 8].try_into().unwrap());
            if text.contains(v) {
                out.entry(v).or_default().push(sec.addr + off as u64);
            }
        }
    }
    out
}

/// Validates one candidate start against the four §IV-E error classes.
///
/// `extents` are the bodies of currently detected functions; `known`
/// is the current instruction map (for overlap checks).
pub fn validate_candidate(
    bin: &Binary,
    candidate: u64,
    known: &fetch_disasm::Disassembly,
    extents: &BTreeMap<u64, FunctionBody>,
    starts: &BTreeSet<u64>,
    stop_calls: &BTreeSet<u64>,
) -> Result<(), ValidationError> {
    let text = bin.text();
    if !text.contains(candidate) {
        return Err(ValidationError::InvalidOpcode);
    }

    // (iv) calling convention first: it also rejects padding starts.
    match validate_calling_convention_cached(bin, candidate, 96, stop_calls, known) {
        CallConvVerdict::Valid => {}
        CallConvVerdict::Undecodable { .. } => return Err(ValidationError::InvalidOpcode),
        _ => return Err(ValidationError::CallConv),
    }
    // Plausibility: sliding-window composites occasionally alias a lone
    // terminator byte in data; no real function consists of a bare
    // ret/ud2/hlt with no body, so such candidates are rejected.
    if let Ok(first) = decode(text.slice_from(candidate).expect("in range"), candidate) {
        if matches!(first.flow(), Flow::Ret | Flow::Halt) {
            return Err(ValidationError::CallConv);
        }
    }

    // Conservative exploration for classes (i)–(iii).
    let mut work = vec![candidate];
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut budget = 256u32;
    while let Some(mut cur) = work.pop() {
        loop {
            if budget == 0 || !text.contains(cur) || !seen.insert(cur) {
                break;
            }
            budget -= 1;
            // (ii) misaligned overlap with previously disassembled code.
            if let Some(prev) = known.at_or_covering(cur) {
                if prev.addr < cur && cur < prev.end() {
                    return Err(ValidationError::OverlapsExisting);
                }
            }
            if known.contains(cur) {
                break; // aligned junction with known code: consistent
            }
            let inst = match decode(text.slice_from(cur).expect("in range"), cur) {
                Ok(i) => i,
                Err(_) => return Err(ValidationError::InvalidOpcode), // (i)
            };
            // (iii) control transfer into the middle of a detected function.
            if let Some(t) = inst.direct_target() {
                if !starts.contains(&t) {
                    let owner = extents.values().find(|b| b.contains(t));
                    if let Some(b) = owner {
                        if b.start != t {
                            return Err(ValidationError::JumpsIntoFunction);
                        }
                    }
                }
            }
            match inst.flow() {
                Flow::Fallthrough | Flow::IndirectCall => cur = inst.end(),
                Flow::Call(t) if stop_calls.contains(&t) => break,
                Flow::Call(_) => cur = inst.end(),
                Flow::Jump(t) => {
                    if !starts.contains(&t) {
                        work.push(t);
                    }
                    break;
                }
                Flow::CondJump(t) => {
                    if !starts.contains(&t) {
                        work.push(t);
                    }
                    cur = inst.end();
                }
                Flow::IndirectJump | Flow::Ret | Flow::Halt | Flow::Trap => break,
            }
        }
    }
    Ok(())
}

/// `Xref`: the §IV-E pointer-scan strategy layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointerScan;

impl PointerScan {
    /// Runs the scan, returning accepted candidates.
    pub fn scan(&self, state: &mut DetectionState<'_>) -> Vec<u64> {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, fetch_disasm::ErrorCallPolicy::SliceZero);
        }
        let mut accepted = Vec::new();
        loop {
            // (Re)collect candidates: data pointers + code constants,
            // both memoized on the state (the data half never changes;
            // the code half is invalidated by each recursion).
            let mut candidates: BTreeSet<u64> = state.data_pointers().keys().copied().collect();
            candidates.extend(state.code_constants().iter().copied());
            let starts = state.start_set();
            let extents = state.extents();
            let mut stop_calls: BTreeSet<u64> = state.rec.noreturn.clone();
            stop_calls.extend(state.error_funcs.iter().copied());
            let mut new_this_round = Vec::new();
            for c in candidates {
                if starts.contains(&c) || !state.binary.is_code(c) {
                    continue;
                }
                if validate_candidate(
                    state.binary,
                    c,
                    &state.rec.disasm,
                    &extents,
                    &starts,
                    &stop_calls,
                )
                .is_ok()
                {
                    new_this_round.push(c);
                }
            }
            if new_this_round.is_empty() {
                break;
            }
            for &c in &new_this_round {
                state.add_start(c, Provenance::PointerScan);
            }
            accepted.extend(new_this_round);
            // Update the collection with code discovered from the newly
            // accepted pointers (the paper's "update the pointer
            // collection" step).
            state.run_recursion(true, fetch_disasm::ErrorCallPolicy::SliceZero);
        }
        accepted
    }
}

impl Strategy for PointerScan {
    fn name(&self) -> &'static str {
        "Xref"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        self.scan(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{run_stack, FdeSeeds, SafeRecursion};
    use fetch_binary::{FuncKind, Reach};
    use fetch_synth::{synthesize, SynthConfig};

    fn pointered_case() -> fetch_binary::TestCase {
        let mut cfg = SynthConfig::small(41);
        cfg.n_funcs = 100;
        cfg.rates.pointer_only = 0.06;
        cfg.rates.asm_funcs = 7;
        synthesize(&cfg)
    }

    #[test]
    fn candidate_collection_covers_pointer_only_functions() {
        // The §IV-E super-set (data windows + code constants/lea targets)
        // must contain every pointer-only function's entry.
        let case = pointered_case();
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        let mut candidates: std::collections::BTreeSet<u64> = collect_data_pointers(&case.binary)
            .keys()
            .copied()
            .collect();
        for inst in state.rec.disasm.iter() {
            if let Some(t) = inst.lea_rip_target() {
                candidates.insert(t);
            }
            for c in inst.const_operands() {
                candidates.insert(c);
            }
        }
        let pointer_only: Vec<u64> = case
            .truth
            .functions
            .iter()
            .filter(|f| matches!(f.reach, Reach::PointerOnly))
            .map(|f| f.entry())
            .collect();
        assert!(!pointer_only.is_empty());
        for p in &pointer_only {
            assert!(candidates.contains(p), "candidate for {p:#x} missing");
        }
    }

    #[test]
    fn scan_recovers_pointer_only_functions_without_false_positives() {
        let case = pointered_case();
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        let accepted = PointerScan.scan(&mut state);
        // Every accepted pointer is a true function start (the paper:
        // "+154 starts without introducing new false positives").
        for a in &accepted {
            assert!(
                case.truth.is_start(*a),
                "pointer scan accepted non-start {a:#x}"
            );
        }
        // Pointer-only compiled/assembly functions without FDEs are now
        // covered.
        for f in &case.truth.functions {
            if matches!(f.reach, Reach::PointerOnly) && f.kind == FuncKind::Assembly {
                assert!(
                    state.starts.contains_key(&f.entry()),
                    "{} at {:#x} missed",
                    f.name,
                    f.entry()
                );
            }
        }
    }

    #[test]
    fn full_stack_runs_clean() {
        let case = pointered_case();
        let r = run_stack(
            &case.binary,
            &[&FdeSeeds, &SafeRecursion::default(), &PointerScan],
        );
        assert_eq!(r.layers, vec!["FDE", "Rec", "Xref"]);
    }
}
