//! The FETCH detector: the paper's optimal strategy combination.
//!
//! `FDE → safe recursion → function-pointer detection → call-frame
//! repair` (Figure 5c's best stack, evaluated against eight tools in
//! Table III).

use crate::algorithm1::RepairReport;
use crate::cache::{content_fingerprint, image_fingerprint, AnalysisCache, ImageDigest};
use crate::delta::{run_delta, DeltaOutcome};
use crate::pipeline::{LayerSpec, Pipeline};
use crate::state::{DetectionResult, DetectionState};
use fetch_binary::{Binary, ElfImage};
use fetch_disasm::{ErrorCallPolicy, RecEngine};
use std::sync::Arc;

/// The FETCH pipeline (Function dETection with exCeption Handling).
///
/// # Examples
///
/// ```
/// use fetch_core::Fetch;
/// use fetch_synth::{synthesize, SynthConfig};
///
/// let case = synthesize(&SynthConfig::small(9));
/// let result = Fetch::new().detect(&case.binary);
/// // High coverage: nearly every true start is found.
/// let truth = case.truth.starts();
/// let found = result.start_set();
/// let covered = truth.intersection(&found).count();
/// assert!(covered * 100 >= truth.len() * 95);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fetch {
    /// Skip the §IV-E pointer scan (ablation knob).
    pub skip_pointer_scan: bool,
    /// Skip Algorithm 1 (ablation knob).
    pub skip_repair: bool,
    /// Worker threads for the intra-binary sharded recursive walk
    /// (`0` or `1` = serial). An execution knob, not an analysis input:
    /// results are byte-identical at every setting, and the pipeline id
    /// does not include it (see [`RecEngine::set_intra_jobs`]).
    pub intra_jobs: usize,
}

impl Fetch {
    /// A detector with the paper's full pipeline enabled.
    pub fn new() -> Fetch {
        Fetch::default()
    }

    /// The declarative [`Pipeline`] this configuration runs —
    /// [`Pipeline::fetch`] with the ablation knobs applied. Every
    /// `detect*` entry point executes exactly this pipeline.
    pub fn pipeline(&self) -> Pipeline {
        let mut specs = vec![
            LayerSpec::FdeSeeds,
            LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero),
        ];
        if !self.skip_pointer_scan {
            specs.push(LayerSpec::PointerScan);
        }
        if !self.skip_repair {
            specs.push(LayerSpec::CallFrameRepair);
        }
        Pipeline::new(specs)
    }

    /// [`Pipeline::id`] of [`Fetch::pipeline`], precomputed per knob
    /// combination so the cached entry points' warm-hit path allocates
    /// nothing (pinned to `pipeline().id()` by a unit test).
    fn pipeline_id(&self) -> &'static str {
        match (self.skip_pointer_scan, self.skip_repair) {
            (false, false) => "FDE+Rec+Xref+TcallFix",
            (true, false) => "FDE+Rec+TcallFix",
            (false, true) => "FDE+Rec+Xref",
            (true, true) => "FDE+Rec",
        }
    }

    /// Runs detection on `binary`.
    pub fn detect(&self, binary: &Binary) -> DetectionResult {
        self.detect_with_engine(binary, &mut RecEngine::new())
    }

    /// Runs detection through a caller-owned [`RecEngine`], reusing its
    /// decode cache when the engine has already seen `binary` (see
    /// [`DetectionState::with_engine`]). Result-identical to
    /// [`Fetch::detect`].
    pub fn detect_with_engine(&self, binary: &Binary, engine: &mut RecEngine) -> DetectionResult {
        engine.set_intra_jobs(self.intra_jobs);
        self.pipeline().run_with_engine(binary, engine)
    }

    /// Runs detection directly on a parsed ELF image through a
    /// caller-owned [`RecEngine`] — the zero-copy entry point: the
    /// materialized sections are windows of the image's shared buffer
    /// ([`ElfImage::to_binary`]), so no section body is copied to
    /// analyse it. Result-identical to [`Fetch::detect`] on the
    /// equivalent owned [`Binary`]. Repeated runs over one image should
    /// call [`ElfImage::to_binary`] once and use
    /// [`Fetch::detect_with_engine`] to avoid re-materializing the
    /// section and symbol vectors per call — or go through
    /// [`Fetch::detect_image_cached`] and pay for the analysis once.
    pub fn detect_image(&self, image: &ElfImage, engine: &mut RecEngine) -> DetectionResult {
        self.detect_with_engine(&image.to_binary(), engine)
    }

    /// [`Fetch::detect_image`] through a serving-layer [`AnalysisCache`]:
    /// an image already analyzed under this configuration's pipeline id
    /// is answered by a fingerprint hash and a map lookup — the image is
    /// not even materialized into a [`Binary`]. Cache hits are
    /// observationally identical to cold runs (property-tested).
    pub fn detect_image_cached(
        &self,
        image: &ElfImage,
        engine: &mut RecEngine,
        cache: &AnalysisCache,
    ) -> Arc<DetectionResult> {
        cache.get_or_compute(image_fingerprint(image), self.pipeline_id(), || {
            engine.set_intra_jobs(self.intra_jobs);
            self.pipeline().run_with_engine(&image.to_binary(), engine)
        })
    }

    /// [`Fetch::detect_with_engine`] through a serving-layer
    /// [`AnalysisCache`], keyed by the binary's content fingerprint
    /// (display name excluded — renamed binaries still hit).
    pub fn detect_cached(
        &self,
        binary: &Binary,
        engine: &mut RecEngine,
        cache: &AnalysisCache,
    ) -> Arc<DetectionResult> {
        cache.get_or_compute(content_fingerprint(binary), self.pipeline_id(), || {
            engine.set_intra_jobs(self.intra_jobs);
            self.pipeline().run_with_engine(binary, engine)
        })
    }

    /// Re-analyzes a *new version* of a previously-analyzed image
    /// through the delta ladder ([`crate::run_delta`]): verbatim reuse
    /// when the [`ImageDigest`] diff proves it sound, window-rewarmed
    /// recompute for local patches, plain cold otherwise. The outcome's
    /// result is byte-identical to [`Fetch::detect_image`] on `image`;
    /// the returned digest describes `image` and should be persisted so
    /// the *next* version can delta against this one.
    pub fn detect_delta(
        &self,
        prev_result: &Arc<DetectionResult>,
        prev_digest: Option<&ImageDigest>,
        image: &ElfImage,
        engine: &mut RecEngine,
    ) -> (DeltaOutcome, ImageDigest) {
        engine.set_intra_jobs(self.intra_jobs);
        let binary = image.to_binary();
        let digest = ImageDigest::compute(&binary, image_fingerprint(image));
        let out = run_delta(
            &self.pipeline(),
            prev_result,
            prev_digest,
            &binary,
            &digest,
            engine,
        );
        (out, digest)
    }

    /// Runs detection, also returning the call-frame repair report.
    pub fn detect_with_report(&self, binary: &Binary) -> (DetectionResult, RepairReport) {
        self.detect_with_report_engine(binary, &mut RecEngine::new())
    }

    /// [`Fetch::detect_with_report`] through a caller-owned
    /// [`RecEngine`], so asking for the repair report no longer forces a
    /// cold decode cache. The repair layer deposits its report on the
    /// state as it executes; no duplicate sequencing path exists for the
    /// report case.
    pub fn detect_with_report_engine(
        &self,
        binary: &Binary,
        engine: &mut RecEngine,
    ) -> (DetectionResult, RepairReport) {
        engine.set_intra_jobs(self.intra_jobs);
        let mut state = DetectionState::with_engine(binary, std::mem::take(engine));
        self.pipeline().apply(&mut state);
        let report = state.take_repair_report().unwrap_or_default();
        let (result, used) = state.into_result_with_engine();
        *engine = used;
        (result, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_binary::Reach;
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn static_pipeline_ids_match_the_declarative_ones() {
        // The warm-hit fast path uses precomputed ids; they must never
        // drift from what the pipeline actually serializes to.
        for skip_pointer_scan in [false, true] {
            for skip_repair in [false, true] {
                let f = Fetch {
                    skip_pointer_scan,
                    skip_repair,
                    ..Fetch::new()
                };
                assert_eq!(f.pipeline_id(), f.pipeline().id());
            }
        }
    }

    #[test]
    fn fetch_end_to_end_shape() {
        // The paper's headline: near-full coverage, near-full accuracy.
        let mut cfg = SynthConfig::small(81);
        cfg.n_funcs = 200;
        cfg.rates.split_cold = 0.08;
        cfg.rates.asm_funcs = 8;
        cfg.rates.mislabeled_fdes = 1;
        let case = synthesize(&cfg);
        let result = Fetch::new().detect(&case.binary);

        let truth = case.truth.starts();
        let found = result.start_set();

        // False negatives: only harmless classes (single-caller
        // tail-only and unreachable functions).
        for missed in truth.difference(&found) {
            let f = case.truth.function_at(*missed).unwrap();
            assert!(
                matches!(
                    f.reach,
                    Reach::TailCalled { callers: 1 } | Reach::Unreachable
                ),
                "harmful miss: {} at {missed:#x} ({:?})",
                f.name,
                f.reach
            );
        }

        // False positives: the overwhelming majority of FDE cold-part
        // starts are repaired; remaining FPs must be cold parts of
        // frame-pointer functions (incomplete CFI).
        let part_starts = case.truth.part_starts();
        for fp in found.difference(&truth) {
            assert!(
                part_starts.contains(fp),
                "unexplained false positive {fp:#x}"
            );
        }
    }

    #[test]
    fn intra_jobs_is_invisible_in_results() {
        // The sharded walk is an execution strategy, not an analysis
        // input: every worker count produces the serial result.
        let mut cfg = SynthConfig::small(84);
        cfg.n_funcs = 120;
        cfg.rates.split_cold = 0.1;
        cfg.rates.mislabeled_fdes = 1;
        let case = synthesize(&cfg);
        let serial = Fetch::new().detect(&case.binary);
        for jobs in [2, 3, 7] {
            let sharded = Fetch {
                intra_jobs: jobs,
                ..Fetch::new()
            }
            .detect(&case.binary);
            assert_eq!(sharded, serial, "intra_jobs={jobs} drifted");
        }
    }

    #[test]
    fn detect_image_matches_owned_binary() {
        use fetch_binary::{write_elf, ElfImage};
        let case = synthesize(&SynthConfig::small(83));
        let image = ElfImage::parse(write_elf(&case.binary)).unwrap();
        assert_eq!(image.load_stats().section_bytes_copied, 0);
        let mut engine = RecEngine::new();
        let via_image = Fetch::new().detect_image(&image, &mut engine);
        let via_binary = Fetch::new().detect(&case.binary);
        assert_eq!(via_image, via_binary);
    }

    #[test]
    fn ablations_change_results() {
        let mut cfg = SynthConfig::small(82);
        cfg.n_funcs = 150;
        cfg.rates.split_cold = 0.12;
        let case = synthesize(&cfg);
        let full = Fetch::new().detect(&case.binary);
        let no_repair = Fetch {
            skip_repair: true,
            ..Fetch::new()
        }
        .detect(&case.binary);
        let truth = case.truth.starts();
        let fp = |r: &crate::state::DetectionResult| r.start_set().difference(&truth).count();
        assert!(
            fp(&no_repair) > fp(&full),
            "repair reduces false positives ({} > {})",
            fp(&no_repair),
            fp(&full)
        );
    }
}
