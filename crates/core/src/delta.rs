//! Delta re-analysis: answer a re-submitted (patched) binary from its
//! predecessor's result wherever the [`ImageDigest`] diff proves that
//! sound, and fall back down a ladder of progressively colder paths
//! otherwise.
//!
//! The ladder ([`run_delta`]):
//!
//! 1. **Unchanged** — the digests are content-identical: the old result
//!    is the answer verbatim. No decode, no pipeline.
//! 2. **Section reuse** — the diff is [`DigestDiff::LocalText`], every
//!    text bucket is *semantically* equal (only delta-masked `mov`
//!    immediates moved), and the pipeline is [`Pipeline::delta_safe`]:
//!    the old result is still the answer verbatim, because no
//!    delta-safe layer can observe a masked immediate.
//! 3. **Recompute** — the diff is local but tier 2's conditions fail
//!    (real code changed, or the pipeline contains a byte-scanning
//!    layer): the full pipeline re-runs, but through
//!    [`RecEngine::rewarm_patched`] — the engine keeps its decode cache
//!    for every byte outside the changed windows, so the re-run decodes
//!    only the patched neighborhoods.
//! 4. **Cold** — the diff is [`DigestDiff::NonLocal`] (or there is no
//!    previous digest at all): plain cold compute, exactly as if the
//!    binary had never been seen.
//!
//! Every tier returns a result byte-identical to a cold run of the same
//! pipeline on the new binary — tiers 3–4 because they *are* (possibly
//! decode-warm) full runs, whose equivalence the incremental-recursion
//! property tests already pin; tiers 1–2 by the digest soundness
//! argument above, pinned by the differential suite in
//! `tests/proptest_delta.rs`.

use crate::cache::{diff_digests, DigestDiff, ImageDigest};
use crate::pipeline::Pipeline;
use crate::state::DetectionResult;
use fetch_binary::Binary;
use fetch_disasm::RecEngine;
use std::sync::Arc;

/// Which tier of the delta ladder produced a [`DeltaOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaClass {
    /// Tier 1: digests content-identical; old result returned verbatim.
    Unchanged,
    /// Tier 2: local, semantically-equal text change under a delta-safe
    /// pipeline; old result returned verbatim.
    SectionReuse,
    /// Tier 3: local change, full pipeline re-run through a
    /// window-invalidated warm decode cache.
    Recompute,
    /// Tier 4: non-local change or no previous digest; plain cold run.
    Cold,
}

impl DeltaClass {
    /// Stable lowercase token for telemetry (`stats.delta` naming).
    pub fn token(&self) -> &'static str {
        match self {
            DeltaClass::Unchanged => "unchanged",
            DeltaClass::SectionReuse => "section_reuse",
            DeltaClass::Recompute => "recompute",
            DeltaClass::Cold => "cold",
        }
    }

    /// Whether the old result was returned verbatim (tiers 1–2) — the
    /// serving layer's `delta_hits` counter counts exactly these.
    pub fn is_hit(&self) -> bool {
        matches!(self, DeltaClass::Unchanged | DeltaClass::SectionReuse)
    }
}

/// The product of [`run_delta`]: the (cold-identical) result plus how it
/// was obtained.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The detection result for the *new* binary. Byte-identical to a
    /// cold run of the same pipeline; on tiers 1–2 it is the previous
    /// result's `Arc`, untouched.
    pub result: Arc<DetectionResult>,
    /// The ladder tier that produced it.
    pub class: DeltaClass,
    /// Text buckets whose raw bytes were unchanged between the two
    /// versions — the reuse the digest diff *proved*, whichever tier
    /// ran. Zero on tier 4.
    pub sections_reused: usize,
}

/// Runs the delta ladder for `pipeline` over `new_binary`, given the
/// previous version's result and (optionally) its digest.
///
/// `new_digest` must be [`ImageDigest::compute`]d from `new_binary`;
/// the caller keeps it to persist alongside the returned result (so the
/// *next* version can delta against this one). A `None` `prev_digest`
/// — a result stored before digests existed — drops straight to tier 4.
///
/// The engine is only consulted on tiers 3–4; on tier 3 it is rewarmed
/// with [`RecEngine::rewarm_patched`] first, so a pooled engine that
/// was warm for the *old* version re-decodes only the changed windows.
pub fn run_delta(
    pipeline: &Pipeline,
    prev_result: &Arc<DetectionResult>,
    prev_digest: Option<&ImageDigest>,
    new_binary: &Binary,
    new_digest: &ImageDigest,
    engine: &mut RecEngine,
) -> DeltaOutcome {
    let Some(old) = prev_digest else {
        return DeltaOutcome {
            result: Arc::new(pipeline.run_with_engine(new_binary, engine)),
            class: DeltaClass::Cold,
            sections_reused: 0,
        };
    };
    match diff_digests(old, new_digest) {
        DigestDiff::Identical { buckets } => DeltaOutcome {
            result: Arc::clone(prev_result),
            class: DeltaClass::Unchanged,
            sections_reused: buckets,
        },
        DigestDiff::LocalText {
            windows,
            sem_equal,
            reused,
        } => {
            if sem_equal && pipeline.delta_safe() {
                return DeltaOutcome {
                    result: Arc::clone(prev_result),
                    class: DeltaClass::SectionReuse,
                    sections_reused: reused,
                };
            }
            // Correctness does not depend on the rewarm succeeding: a
            // `false` return leaves the engine keyed to some other
            // binary, and the run below cold-resets it on entry.
            engine.rewarm_patched(new_binary, old.text_hash, &windows);
            DeltaOutcome {
                result: Arc::new(pipeline.run_with_engine(new_binary, engine)),
                class: DeltaClass::Recompute,
                sections_reused: reused,
            }
        }
        DigestDiff::NonLocal { .. } => DeltaOutcome {
            result: Arc::new(pipeline.run_with_engine(new_binary, engine)),
            class: DeltaClass::Cold,
            sections_reused: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::image_fingerprint;
    use fetch_binary::{write_elf, ElfImage};
    use fetch_synth::{synthesize, SynthConfig};

    fn digest_of(binary: &Binary) -> ImageDigest {
        let image = ElfImage::parse(write_elf(binary)).unwrap();
        ImageDigest::compute(binary, image_fingerprint(&image))
    }

    #[test]
    fn identical_resubmission_is_tier_one() {
        let case = synthesize(&SynthConfig::small(41));
        let pipeline = Pipeline::fetch();
        let digest = digest_of(&case.binary);
        let cold = Arc::new(pipeline.run(&case.binary));

        let mut engine = RecEngine::new();
        let out = run_delta(
            &pipeline,
            &cold,
            Some(&digest),
            &case.binary,
            &digest,
            &mut engine,
        );
        assert_eq!(out.class, DeltaClass::Unchanged);
        assert!(out.class.is_hit());
        assert!(Arc::ptr_eq(&out.result, &cold));
        assert_eq!(out.sections_reused, digest.text_bucket_count());
    }

    #[test]
    fn missing_digest_is_tier_four_and_cold_identical() {
        let case = synthesize(&SynthConfig::small(42));
        let pipeline = Pipeline::fetch();
        let digest = digest_of(&case.binary);
        let cold = Arc::new(pipeline.run(&case.binary));

        let mut engine = RecEngine::new();
        let out = run_delta(&pipeline, &cold, None, &case.binary, &digest, &mut engine);
        assert_eq!(out.class, DeltaClass::Cold);
        assert!(!out.class.is_hit());
        assert_eq!(out.sections_reused, 0);
        assert_eq!(*out.result, *cold);
    }
}
