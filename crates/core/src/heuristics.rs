//! The *unsafe* detection heuristics shipped by existing tools (§II-B,
//! §IV-C/D). Each is modeled as a strategy layer so Figure 5's stacks can
//! be reproduced verbatim. None of these offer correctness guarantees —
//! reproducing their characteristic false positives (and occasional true
//! positives) is the point.

use crate::state::{DetectionState, Provenance};
use crate::strategy::Strategy;
use fetch_analyses::{model_stack_heights, HeightStyle};
use fetch_disasm::{body_of, ErrorCallPolicy, XrefKind};
use fetch_x64::{decode, Op};
use std::collections::BTreeSet;

/// Computes the unexplored gaps of `.text`: maximal ranges covered by no
/// decoded instruction.
pub fn code_gaps(state: &DetectionState<'_>) -> Vec<(u64, u64)> {
    let text = state.binary.text();
    let mut gaps = Vec::new();
    let mut cursor = text.addr;
    for inst in state.rec.disasm.iter() {
        if inst.addr > cursor {
            gaps.push((cursor, inst.addr));
        }
        cursor = cursor.max(inst.end());
    }
    if cursor < text.end() {
        gaps.push((cursor, text.end()));
    }
    gaps
}

/// Which tool's flavour of a heuristic to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ToolStyle {
    /// GHIDRA's variant (most conservative matching).
    Ghidra,
    /// ANGR's variant (most aggressive matching).
    Angr,
    /// RADARE2's variant: decode-validated matches without semantic
    /// checks — low but nonzero false positives.
    Radare,
}

/// `Fsig`: prologue-signature matching over non-disassembled gaps,
/// followed by recursion from each match.
///
/// The GHIDRA variant requires the full `push rbp; mov rbp, rsp` sequence
/// *and* a clean decode of the following bytes (finding nothing new on
/// FDE-covered corpora — §IV-D). The ANGR variant additionally accepts
/// `endbr64` and a bare `push rbp`, which fires on data-in-text
/// (thousands of false positives in the paper).
#[derive(Debug, Clone, Copy)]
pub struct PrologueMatch {
    /// Variant selector.
    pub style: ToolStyle,
}

impl Strategy for PrologueMatch {
    fn name(&self) -> &'static str {
        "Fsig"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let text = state.binary.text();
        let mut found = Vec::new();
        for (lo, hi) in code_gaps(state) {
            let bytes = text.slice_from(lo).expect("gap in text");
            let len = (hi - lo) as usize;
            let mut off = 0usize;
            while off < len {
                let b = &bytes[off..len];
                let addr = lo + off as u64;
                let hit = if b.starts_with(&[0x55, 0x48, 0x89, 0xe5]) {
                    match self.style {
                        ToolStyle::Ghidra => {
                            // Conservative: the decoded window must reach
                            // a real control-flow terminator, and the
                            // match must satisfy the calling convention —
                            // GHIDRA's matcher reported no false
                            // positives in the paper (§IV-D).
                            let sweep = fetch_disasm::sweep(&b[..b.len().min(48)], addr);
                            let terminated = sweep
                                .insts
                                .iter()
                                .any(|i| i.is_terminator() && !i.is_padding());
                            terminated
                                && fetch_analyses::validate_calling_convention(
                                    state.binary,
                                    addr,
                                    48,
                                )
                                .is_valid()
                        }
                        // Decode check only: a prologue-looking byte run
                        // in data occasionally slips through.
                        ToolStyle::Radare => {
                            fetch_disasm::sweep(&b[..b.len().min(24)], addr).clean()
                        }
                        ToolStyle::Angr => true,
                    }
                } else {
                    self.style == ToolStyle::Angr
                        && (b.starts_with(&[0xf3, 0x0f, 0x1e, 0xfa]) || b.starts_with(&[0x55]))
                        && decode(b, addr).is_ok()
                        && b.len() > 4
                        && decode(&b[1..], addr + 1).is_ok()
                };
                if hit {
                    found.push(addr);
                    off += 4;
                } else {
                    off += 1;
                }
            }
        }
        let mut added = false;
        for a in found {
            added |= state.add_start(a, Provenance::Prologue);
        }
        if added {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
    }
}

/// `Tcall`: heuristic tail-call detection (disabled by default in both
/// tools; §IV-D shows why).
///
/// Both variants treat the target of a jump leaving the *contiguous*
/// range of its function as a new function start. The GHIDRA variant
/// applies this to every jump (≈100k false positives in the paper); the
/// ANGR variant only to jumps at stack height zero per its own static
/// height analysis — fewer, but still thousands.
#[derive(Debug, Clone, Copy)]
pub struct TailCallHeuristic {
    /// Variant selector.
    pub style: ToolStyle,
}

impl Strategy for TailCallHeuristic {
    fn name(&self) -> &'static str {
        "Tcall"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
        let starts: Vec<u64> = state.start_set().iter().copied().collect();
        let mut new_starts = Vec::new();
        for (ix, &f) in starts.iter().enumerate() {
            // Contiguous range: up to the next detected start.
            let range_end = starts.get(ix + 1).copied().unwrap_or(u64::MAX);
            let body = body_of(
                f,
                &state.rec.disasm,
                &state.rec.functions,
                &state.rec.noreturn,
            );
            let heights = if self.style == ToolStyle::Angr {
                Some(model_stack_heights(
                    &body,
                    &state.rec.disasm,
                    HeightStyle::AngrLike,
                ))
            } else {
                None
            };
            for j in &body.jumps {
                let Some(t) = j.direct_target() else { continue };
                if t >= f && t < range_end {
                    continue; // stays within the contiguous range
                }
                if let Some(h) = &heights {
                    // ANGR: only height-zero jumps are tail-call candidates.
                    if h.get(&j.addr).copied().flatten() != Some(0) {
                        continue;
                    }
                }
                new_starts.push(t);
            }
        }
        for t in new_starts {
            if state.binary.is_code(t) {
                state.add_start(t, Provenance::TailHeuristic);
            }
        }
    }
}

/// `Scan`: ANGR's linear gap scan — the start of every cleanly decoding
/// gap (after leading padding) becomes a function start. Finds genuinely
/// unreachable assembly functions, and floods the result with data-borne
/// false positives (§IV-D: it eliminated *every* fully accurate binary).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearScanStarts;

impl Strategy for LinearScanStarts {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
        let text = state.binary.text();
        let mut found = Vec::new();
        for (lo, hi) in code_gaps(state) {
            // Skip leading padding.
            let mut addr = lo;
            while addr < hi {
                match decode(text.slice_from(addr).expect("gap"), addr) {
                    Ok(i) if i.is_padding() => addr = i.end(),
                    _ => break,
                }
            }
            if addr >= hi {
                continue;
            }
            // The remainder must begin with a valid instruction.
            if decode(text.slice_from(addr).expect("gap"), addr).is_ok() {
                found.push(addr);
            }
        }
        let mut added = false;
        for a in found {
            added |= state.add_start(a, Provenance::LinearScan);
        }
        if added {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
    }
}

/// `CFR`: GHIDRA's control-flow repairing — removes a detected start that
/// follows a (believed) non-returning region when no other control flow
/// reaches it. GHIDRA's non-return analysis is aggressive (it treats all
/// `error`-style calls as non-returning), so true starts get removed and
/// coverage *drops* (§IV-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlFlowRepair;

impl Strategy for ControlFlowRepair {
    fn name(&self) -> &'static str {
        "CFR"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        // GHIDRA's view of the world: error calls never return.
        state.run_recursion(true, ErrorCallPolicy::AlwaysNoReturn);
        let xrefs = state.xrefs();
        let entry = state.binary.entry;
        let starts: Vec<u64> = state.start_set().iter().copied().collect();
        let mut to_remove = Vec::new();
        for &s in &starts {
            if s == entry || xrefs.contains_key(s) {
                continue;
            }
            // Find the last decoded instruction before `s`, skipping
            // padding: does the preceding region end without returning?
            let mut prev = None;
            for inst in state.rec.disasm.iter_rev_before(s).take(8) {
                if inst.is_padding() {
                    continue;
                }
                prev = Some(*inst);
                break;
            }
            let Some(prev) = prev else { continue };
            let noreturn_end = match prev.op {
                Op::Ud2 | Op::Hlt => true,
                Op::Call(t) => state.rec.noreturn.contains(&t) || state.error_funcs.contains(&t),
                _ => false,
            };
            if noreturn_end {
                to_remove.push(s);
            }
        }
        for s in to_remove {
            state.remove_start(s);
        }
        // Restore the safe disassembly for subsequent layers.
        state.run_recursion(true, ErrorCallPolicy::SliceZero);
    }
}

/// `Fmerg`: ANGR's function merging — two adjacent detected functions
/// connected by a jump that is the only outgoing transfer of the first
/// and the only incoming transfer of the second are merged. Wrongly
/// merges adjacent tail-call pairs, reducing coverage (§IV-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct FunctionMerge;

impl Strategy for FunctionMerge {
    fn name(&self) -> &'static str {
        "Fmerg"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
        let xrefs = state.xrefs();
        let extents = state.extents();
        let starts: Vec<u64> = state.start_set().iter().copied().collect();
        let mut to_remove = Vec::new();
        for w in starts.windows(2) {
            let (f1, f2) = (w[0], w[1]);
            let Some(b1) = extents.get(&f1) else { continue };
            // All references to f2 are jumps from f1.
            let refs_ok = xrefs.get(f2).is_some_and(|refs| {
                !refs.is_empty()
                    && refs.iter().all(|x| {
                        matches!(x.kind, XrefKind::Jump | XrefKind::CondJump) && b1.contains(x.from)
                    })
            });
            if !refs_ok {
                continue;
            }
            // The jump to f2 is f1's only outgoing inter-function transfer.
            let out_edges: BTreeSet<u64> = b1
                .jumps
                .iter()
                .filter_map(|j| j.direct_target())
                .filter(|t| !b1.contains(*t))
                .collect();
            if out_edges.len() == 1 && out_edges.contains(&f2) {
                to_remove.push(f2);
            }
        }
        for s in to_remove {
            state.remove_start(s);
        }
    }
}

/// GHIDRA's thunk heuristic: a detected function whose first instruction
/// is a direct `jmp` is a thunk, and the jump target becomes a new
/// function start. Identical-code-folding entry jumps make the target a
/// mid-function address — a false positive (§IV-C: 400+ in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThunkHeuristic;

impl Strategy for ThunkHeuristic {
    fn name(&self) -> &'static str {
        "Thunk"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
        let mut targets = Vec::new();
        for &f in state.starts.keys() {
            if let Some(inst) = state.rec.disasm.at(f) {
                if let Op::Jmp { target, .. } = inst.op {
                    targets.push(target);
                }
            }
        }
        for t in targets {
            if state.binary.is_code(t) {
                state.add_start(t, Provenance::Thunk);
            }
        }
    }
}

/// ANGR's alignment handling: the first non-padding instruction after an
/// alignment run becomes a new function start (3,973 false positives in
/// the paper, §IV-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlignmentSplit;

impl Strategy for AlignmentSplit {
    fn name(&self) -> &'static str {
        "Align"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
        let text = state.binary.text();
        let mut found = Vec::new();
        for (lo, hi) in code_gaps(state) {
            let mut addr = lo;
            let mut saw_padding = false;
            while addr < hi {
                match decode(text.slice_from(addr).expect("gap"), addr) {
                    Ok(i) if i.is_padding() => {
                        saw_padding = true;
                        addr = i.end();
                    }
                    _ => break,
                }
            }
            if saw_padding && addr < hi {
                found.push(addr);
            }
        }
        for a in found {
            state.add_start(a, Provenance::Alignment);
        }
    }
}

/// BAP's ByteWeight-style matching: fires on raw byte patterns without
/// validation — the worst false-positive count in Table III — then runs
/// recursion treating every error call as returning.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteWeight;

impl Strategy for ByteWeight {
    fn name(&self) -> &'static str {
        "ByteWeight"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let text = state.binary.text();
        let bytes = &text.bytes;
        let mut found = Vec::new();
        for off in 0..bytes.len().saturating_sub(4) {
            let w = &bytes[off..];
            // "Learned" patterns: frame setups, endbr64, saves.
            let hit = w.starts_with(&[0x55, 0x48, 0x89, 0xe5])
                || w.starts_with(&[0xf3, 0x0f, 0x1e, 0xfa])
                || w.starts_with(&[0x41, 0x57])
                || w.starts_with(&[0x41, 0x56])
                || w.starts_with(&[0x53, 0x48])
                || w.starts_with(&[0x55, 0x53]);
            if hit {
                found.push(text.addr + off as u64);
            }
        }
        for a in found {
            state.add_start(a, Provenance::Prologue);
        }
        state.run_recursion(true, ErrorCallPolicy::AlwaysReturn);
    }
}

/// NUCLEUS's compiler-agnostic analysis: linear sweep, then function
/// starts are direct call targets plus the first instruction of every
/// inter-procedural group (approximated as post-padding group heads).
#[derive(Debug, Clone, Copy, Default)]
pub struct NucleusScan;

impl Strategy for NucleusScan {
    fn name(&self) -> &'static str {
        "Nucleus"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let text = state.binary.text();
        let insts = fetch_disasm::sweep_tolerant(&text.bytes, text.addr);
        let mut after_gap = true;
        for inst in &insts {
            if inst.is_padding() {
                after_gap = true;
                continue;
            }
            if after_gap {
                state.add_start(inst.addr, Provenance::LinearScan);
                after_gap = false;
            }
            if let fetch_x64::Flow::Call(t) = inst.flow() {
                if state.binary.is_code(t) {
                    state.add_start(t, Provenance::CallTarget);
                }
            }
        }
    }
}

/// IDA PRO's curated, *validated* prologue database: matches must decode
/// cleanly and satisfy the calling convention before recursion runs from
/// them.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlirtSignatures;

impl Strategy for FlirtSignatures {
    fn name(&self) -> &'static str {
        "Flirt"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let text = state.binary.text();
        let mut found = Vec::new();
        for (lo, hi) in code_gaps(state) {
            let len = (hi - lo) as usize;
            let bytes = text.slice_from(lo).expect("gap");
            for off in 0..len.saturating_sub(4) {
                let w = &bytes[off..len];
                let addr = lo + off as u64;
                let hit = w.starts_with(&[0x55, 0x48, 0x89, 0xe5])
                    || w.starts_with(&[0xf3, 0x0f, 0x1e, 0xfa]);
                if hit
                    && fetch_analyses::validate_calling_convention(state.binary, addr, 48)
                        .is_valid()
                {
                    found.push(addr);
                }
            }
        }
        let mut added = false;
        for a in found {
            added |= state.add_start(a, Provenance::Prologue);
        }
        if added {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{run_stack, FdeSeeds, SafeRecursion};
    use fetch_synth::{synthesize, SynthConfig};

    fn case_with_features(seed: u64) -> fetch_binary::TestCase {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = 120;
        cfg.rates.data_in_text = 0.15;
        cfg.rates.bad_thunks = 2;
        // Large enough for the full assembly class mix (tail-only,
        // pointer-only, unreachable) to be generated.
        cfg.rates.asm_funcs = 14;
        synthesize(&cfg)
    }

    #[test]
    fn scan_adds_gap_starts_with_false_positives() {
        let case = case_with_features(61);
        let base = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        let scanned = run_stack(
            &case.binary,
            &[&FdeSeeds, &SafeRecursion::default(), &LinearScanStarts],
        );
        assert!(scanned.len() > base.len(), "scan adds starts");
        let truth = case.truth.starts();
        let fp_scan = scanned
            .starts
            .iter()
            .filter(|(a, p)| **p == Provenance::LinearScan && !truth.contains(a))
            .count();
        assert!(fp_scan > 0, "linear scan introduces false positives");
    }

    #[test]
    fn thunk_heuristic_fires_on_icf_entries() {
        let case = case_with_features(62);
        let r = run_stack(
            &case.binary,
            &[&FdeSeeds, &SafeRecursion::default(), &ThunkHeuristic],
        );
        let truth = case.truth.starts();
        let thunk_fps = r
            .starts
            .iter()
            .filter(|(a, p)| **p == Provenance::Thunk && !truth.contains(a))
            .count();
        assert!(thunk_fps > 0, "ICF thunk targets become false positives");
    }

    #[test]
    fn ghidra_tailcall_heuristic_is_noisier_than_angr() {
        let mut fp_g = 0usize;
        let mut fp_a = 0usize;
        for seed in [63, 64, 65] {
            let case = case_with_features(seed);
            let truth = case.truth.starts();
            let g = run_stack(
                &case.binary,
                &[
                    &FdeSeeds,
                    &SafeRecursion::default(),
                    &TailCallHeuristic {
                        style: ToolStyle::Ghidra,
                    },
                ],
            );
            let a = run_stack(
                &case.binary,
                &[
                    &FdeSeeds,
                    &SafeRecursion::default(),
                    &TailCallHeuristic {
                        style: ToolStyle::Angr,
                    },
                ],
            );
            fp_g += g
                .starts
                .iter()
                .filter(|(x, p)| **p == Provenance::TailHeuristic && !truth.contains(x))
                .count();
            fp_a += a
                .starts
                .iter()
                .filter(|(x, p)| **p == Provenance::TailHeuristic && !truth.contains(x))
                .count();
        }
        // ANGR's height-zero filter can only remove candidates, so its
        // false positives are a subset of GHIDRA's; both fire on the
        // synthetic corpus. (The paper's 20× gap comes from constructs —
        // giant crossing jcc webs — that the simulator models only
        // partially; the ordering is the reproduced shape.)
        assert!(
            fp_g >= fp_a,
            "ghidra Tcall ({fp_g}) at least as noisy as angr ({fp_a})"
        );
        assert!(
            fp_g > 0 && fp_a > 0,
            "both heuristics produce false positives"
        );
    }

    #[test]
    fn cfr_reduces_coverage() {
        let mut without = 0usize;
        let mut with_cfr = 0usize;
        for seed in [66, 67, 68, 69] {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = 150;
            cfg.rates.pointer_only = 0.05;
            cfg.rates.error_calls = 0.15;
            cfg.rates.noreturn = 0.06;
            let case = synthesize(&cfg);
            let truth = case.truth.starts();
            let base = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
            let cfr = run_stack(
                &case.binary,
                &[&FdeSeeds, &SafeRecursion::default(), &ControlFlowRepair],
            );
            without += base.start_set().intersection(&truth).count();
            with_cfr += cfr.start_set().intersection(&truth).count();
        }
        assert!(
            with_cfr < without,
            "CFR removes true starts ({with_cfr} < {without})"
        );
    }

    #[test]
    fn prologue_match_angr_fires_on_data() {
        let case = case_with_features(70);
        let truth = case.truth.starts();
        let a = run_stack(
            &case.binary,
            &[
                &FdeSeeds,
                &SafeRecursion::default(),
                &PrologueMatch {
                    style: ToolStyle::Angr,
                },
            ],
        );
        let fp = a
            .starts
            .iter()
            .filter(|(x, p)| **p == Provenance::Prologue && !truth.contains(x))
            .count();
        assert!(fp > 0, "angr-style prologue matching hits data-in-text");
    }

    #[test]
    fn alignment_split_adds_starts_after_padding() {
        let case = case_with_features(71);
        let r = run_stack(
            &case.binary,
            &[&FdeSeeds, &SafeRecursion::default(), &AlignmentSplit],
        );
        let n = r
            .starts
            .values()
            .filter(|p| **p == Provenance::Alignment)
            .count();
        assert!(n > 0, "alignment heuristic fires");
    }
}
