//! Versioned, deterministic serialization of [`DetectionResult`]s —
//! the persistence format of the serving layer.
//!
//! A long-lived analysis daemon (`fetch-serve`) wants to answer warm
//! after a restart, which means a [`DetectionResult`] — including its
//! full [`LayerTrace`] telemetry — must survive the process. This module
//! is the wire format: a compact little-endian binary encoding with a
//! magic + version header and a trailing FNV-1a checksum, written and
//! read by [`serialize_result`] / [`deserialize_result`].
//!
//! Design points:
//!
//! * **Deterministic.** The same result always encodes to the same
//!   bytes (maps iterate in key order, every field has one encoding),
//!   so persisted entries can be compared, deduplicated, and diffed
//!   byte-wise across processes.
//! * **Total round-trip.** `deserialize(serialize(r)) == r` including
//!   the timing/decode fields `PartialEq` ignores — persistence keeps
//!   the telemetry, not just the answer (property-tested in
//!   `tests/proptest_serial.rs`).
//! * **Versioned and checksummed.** A file from a future format version
//!   is rejected by number, not misparsed; a truncated or bit-flipped
//!   payload fails the checksum instead of decoding to a plausible-but
//!   -wrong result.
//! * **Closed vocabulary.** Layer names are interned back to the
//!   `&'static str` table of [`crate::KNOWN_LAYERS`] display names; a
//!   result produced by an out-of-vocabulary custom [`crate::Strategy`]
//!   is rejected at *serialization* time (`UnknownLayerName`) rather
//!   than producing bytes no reader can load.

use crate::cache::{BucketDigest, ImageDigest, SectionDigest};
use crate::pipeline::KNOWN_LAYERS;
use crate::state::{DetectionResult, LayerTrace, Provenance};
use fetch_binary::SectionKind;

/// Magic bytes opening every serialized [`DetectionResult`].
pub const RESULT_MAGIC: [u8; 4] = *b"FRES";
/// Current format version: v3 adds the pointer-scan work counters
/// (`bytes_scanned`, `candidates_checked`) to each trace entry; v2
/// appended an optional [`ImageDigest`] after the trace. Readers
/// accept [`RESULT_VERSION_V2`] and [`RESULT_VERSION_V1`] encodings
/// too — older traces decode with zeroed scan counters (and v1 with
/// `digest = None`) and heal on their next write; versions beyond
/// [`RESULT_VERSION`] are rejected.
pub const RESULT_VERSION: u16 = 3;
/// The pre-scan-counter format version, still accepted on read.
pub const RESULT_VERSION_V2: u16 = 2;
/// The pre-digest format version, still accepted on read.
pub const RESULT_VERSION_V1: u16 = 1;

/// Domain tag of the trailing checksum (separates it from the
/// fingerprint domains of [`crate::content_fingerprint`]).
const DOMAIN_SERIAL: u64 = 0x7365_7269_616c_3176; // "serial1v"

/// A malformed or unreadable serialized [`DetectionResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// The buffer ended before the encoding did.
    Truncated,
    /// The leading magic bytes were not [`RESULT_MAGIC`].
    BadMagic,
    /// The format version is not [`RESULT_VERSION`].
    UnsupportedVersion(u16),
    /// The trailing checksum did not match the payload.
    ChecksumMismatch,
    /// A provenance tag byte named no [`Provenance`] variant.
    UnknownProvenance(u8),
    /// A layer name is outside the [`crate::KNOWN_LAYERS`] vocabulary.
    UnknownLayerName(String),
    /// A structural invariant failed (named), e.g. unsorted starts or
    /// trailing garbage.
    Corrupt(&'static str),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Truncated => write!(f, "truncated result encoding"),
            SerialError::BadMagic => write!(f, "bad magic (not a serialized DetectionResult)"),
            SerialError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported result format version {v} (expected <= {RESULT_VERSION})"
                )
            }
            SerialError::ChecksumMismatch => write!(f, "checksum mismatch (corrupted payload)"),
            SerialError::UnknownProvenance(tag) => write!(f, "unknown provenance tag {tag:#x}"),
            SerialError::UnknownLayerName(name) => {
                write!(
                    f,
                    "layer name {name:?} is not in the known-layer vocabulary"
                )
            }
            SerialError::Corrupt(what) => write!(f, "corrupt result encoding: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}

/// Stable wire tag of a [`Provenance`] variant. Exhaustive on purpose:
/// adding a variant forces choosing its tag here (tags are append-only
/// — never renumber a shipped one).
fn provenance_tag(p: Provenance) -> u8 {
    match p {
        Provenance::Fde => 0,
        Provenance::Symbol => 1,
        Provenance::CallTarget => 2,
        Provenance::PointerScan => 3,
        Provenance::TailCallFix => 4,
        Provenance::Prologue => 5,
        Provenance::TailHeuristic => 6,
        Provenance::LinearScan => 7,
        Provenance::Thunk => 8,
        Provenance::Alignment => 9,
    }
}

fn provenance_from_tag(tag: u8) -> Result<Provenance, SerialError> {
    Ok(match tag {
        0 => Provenance::Fde,
        1 => Provenance::Symbol,
        2 => Provenance::CallTarget,
        3 => Provenance::PointerScan,
        4 => Provenance::TailCallFix,
        5 => Provenance::Prologue,
        6 => Provenance::TailHeuristic,
        7 => Provenance::LinearScan,
        8 => Provenance::Thunk,
        9 => Provenance::Alignment,
        other => return Err(SerialError::UnknownProvenance(other)),
    })
}

/// Interns a parsed layer name back to the `&'static str` the executor
/// records — the display names of the [`KNOWN_LAYERS`] vocabulary.
/// `None` for out-of-vocabulary names (custom strategies).
pub fn intern_layer_name(name: &str) -> Option<&'static str> {
    KNOWN_LAYERS
        .iter()
        .map(|(_, spec)| spec.name())
        .find(|known| *known == name)
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = crate::cache::Fnv::new(DOMAIN_SERIAL);
    h.bytes(payload);
    h.finish()
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn count(&mut self, n: usize) {
        self.u32(n.try_into().expect("count fits u32"));
    }
    fn str(&mut self, s: &str) {
        let len: u16 = s.len().try_into().expect("name fits u16");
        self.u16(len);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn delta(&mut self, delta: &[(u64, Provenance)]) {
        self.count(delta.len());
        for &(addr, prov) in delta {
            self.u64(addr);
            self.u8(provenance_tag(prov));
        }
    }
}

/// Stable wire tag of a [`SectionKind`]. Append-only, like provenance
/// tags.
fn section_kind_tag(kind: SectionKind) -> u8 {
    match kind {
        SectionKind::Text => 0,
        SectionKind::Rodata => 1,
        SectionKind::Data => 2,
        SectionKind::EhFrame => 3,
    }
}

fn section_kind_from_tag(tag: u8) -> Result<SectionKind, SerialError> {
    Ok(match tag {
        0 => SectionKind::Text,
        1 => SectionKind::Rodata,
        2 => SectionKind::Data,
        3 => SectionKind::EhFrame,
        _ => return Err(SerialError::Corrupt("unknown section kind tag")),
    })
}

/// Encodes `result` into the versioned, checksummed wire format
/// (without a digest — see [`serialize_result_with_digest`]).
///
/// # Errors
///
/// [`SerialError::UnknownLayerName`] when the result was produced by a
/// custom strategy whose name is outside [`KNOWN_LAYERS`] — such bytes
/// could never be interned back, so they are refused up front.
pub fn serialize_result(result: &DetectionResult) -> Result<Vec<u8>, SerialError> {
    serialize_result_with_digest(result, None)
}

/// Encodes `result` plus the optional [`ImageDigest`] it was computed
/// against. The digest rides in the same checksummed payload (format
/// version [`RESULT_VERSION`]), so a persisted entry carries everything
/// version-delta analysis needs to diff a future image against it.
pub fn serialize_result_with_digest(
    result: &DetectionResult,
    digest: Option<&ImageDigest>,
) -> Result<Vec<u8>, SerialError> {
    for name in result
        .layers
        .iter()
        .chain(result.trace.iter().map(|t| &t.name))
    {
        if intern_layer_name(name).is_none() {
            return Err(SerialError::UnknownLayerName((*name).to_string()));
        }
    }
    let mut w = Writer(Vec::with_capacity(64 + result.starts.len() * 9));
    w.0.extend_from_slice(&RESULT_MAGIC);
    w.u16(RESULT_VERSION);
    w.count(result.starts.len());
    for (&addr, &prov) in &result.starts {
        w.u64(addr);
        w.u8(provenance_tag(prov));
    }
    w.count(result.layers.len());
    for name in &result.layers {
        w.str(name);
    }
    w.count(result.trace.len());
    for t in &result.trace {
        w.str(t.name);
        w.u64(t.wall_nanos);
        w.delta(&t.added);
        w.delta(&t.removed);
        w.u64(t.starts_after as u64);
        w.u64(t.decode_hits);
        w.u64(t.decode_misses);
        w.u64(t.bytes_scanned);
        w.u64(t.candidates_checked);
    }
    match digest {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u64(d.image);
            w.u64(d.entry);
            w.u64(d.symbols);
            w.u64(d.text_hash);
            w.count(d.sections.len());
            for s in &d.sections {
                w.u8(section_kind_tag(s.kind));
                w.u64(s.addr);
                w.u64(s.len);
                w.u64(s.raw);
                w.count(s.buckets.len());
                for b in &s.buckets {
                    w.u64(b.start);
                    w.u64(b.end);
                    w.u8(b.covered as u8);
                    w.u64(b.raw);
                    w.u64(b.sem);
                }
            }
        }
    }
    let sum = checksum(&w.0);
    w.u64(sum);
    Ok(w.0)
}

/// Encodes `result` in an *older* accepted format `version` — no
/// per-trace scan counters (pre-v3), and no digest presence byte for
/// [`RESULT_VERSION_V1`]. This exists for compatibility testing and
/// migration tooling: it produces exactly the blobs old stores hold, so
/// readers can be exercised against them without keeping binary
/// fixtures around.
///
/// # Errors
///
/// [`SerialError::UnsupportedVersion`] when `version` is not an older
/// accepted version, and [`SerialError::UnknownLayerName`] under the
/// same conditions as [`serialize_result`].
pub fn serialize_result_legacy(
    result: &DetectionResult,
    version: u16,
) -> Result<Vec<u8>, SerialError> {
    if !(RESULT_VERSION_V1..RESULT_VERSION).contains(&version) {
        return Err(SerialError::UnsupportedVersion(version));
    }
    for name in result
        .layers
        .iter()
        .chain(result.trace.iter().map(|t| &t.name))
    {
        if intern_layer_name(name).is_none() {
            return Err(SerialError::UnknownLayerName((*name).to_string()));
        }
    }
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(&RESULT_MAGIC);
    w.u16(version);
    w.count(result.starts.len());
    for (&addr, &prov) in &result.starts {
        w.u64(addr);
        w.u8(provenance_tag(prov));
    }
    w.count(result.layers.len());
    for name in &result.layers {
        w.str(name);
    }
    w.count(result.trace.len());
    for t in &result.trace {
        w.str(t.name);
        w.u64(t.wall_nanos);
        w.delta(&t.added);
        w.delta(&t.removed);
        w.u64(t.starts_after as u64);
        w.u64(t.decode_hits);
        w.u64(t.decode_misses);
    }
    if version >= RESULT_VERSION_V2 {
        w.u8(0); // no digest
    }
    let sum = checksum(&w.0);
    w.u64(sum);
    Ok(w.0)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerialError> {
        let end = self.pos.checked_add(n).ok_or(SerialError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SerialError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, SerialError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SerialError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, SerialError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, SerialError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// Reads a count and sanity-bounds it against the bytes remaining
    /// (each element occupies at least `min_elem` bytes), so a corrupt
    /// count cannot drive a huge allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, SerialError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.bytes.len() - self.pos {
            return Err(SerialError::Truncated);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<&'a str, SerialError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| SerialError::Corrupt("non-UTF-8 name"))
    }
    fn layer_name(&mut self) -> Result<&'static str, SerialError> {
        let name = self.str()?;
        intern_layer_name(name).ok_or_else(|| SerialError::UnknownLayerName(name.to_string()))
    }
    fn delta(&mut self) -> Result<Vec<(u64, Provenance)>, SerialError> {
        let n = self.count(9)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = self.u64()?;
            let prov = provenance_from_tag(self.u8()?)?;
            if let Some(&(prev, _)) = out.last() {
                if prev >= addr {
                    return Err(SerialError::Corrupt("delta not strictly ascending"));
                }
            }
            out.push((addr, prov));
        }
        Ok(out)
    }
}

/// Decodes a [`DetectionResult`] previously encoded by
/// [`serialize_result`], verifying magic, version, checksum, and every
/// structural invariant (strictly ascending address lists, in-vocabulary
/// layer names, no trailing bytes). Accepts both the current and the
/// pre-digest v1 format; any attached digest is dropped — use
/// [`deserialize_result_full`] to keep it.
pub fn deserialize_result(bytes: &[u8]) -> Result<DetectionResult, SerialError> {
    deserialize_result_full(bytes).map(|(result, _)| result)
}

/// Decodes a [`DetectionResult`] together with the [`ImageDigest`] it
/// was persisted with. Pre-digest (v1) encodings decode with
/// `digest = None` — a serving layer recomputes and re-persists the
/// digest on its next write (store healing).
pub fn deserialize_result_full(
    bytes: &[u8],
) -> Result<(DetectionResult, Option<ImageDigest>), SerialError> {
    // Header + checksum are the minimum plausible encoding.
    if bytes.len() < RESULT_MAGIC.len() + 2 + 8 {
        return Err(SerialError::Truncated);
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
    if payload[..4] != RESULT_MAGIC {
        return Err(SerialError::BadMagic);
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().expect("2"));
    if !(RESULT_VERSION_V1..=RESULT_VERSION).contains(&version) {
        return Err(SerialError::UnsupportedVersion(version));
    }
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8"));
    if checksum(payload) != stored_sum {
        return Err(SerialError::ChecksumMismatch);
    }

    let mut r = Reader {
        bytes: payload,
        pos: 6,
    };
    let n_starts = r.count(9)?;
    let mut starts = std::collections::BTreeMap::new();
    let mut prev: Option<u64> = None;
    for _ in 0..n_starts {
        let addr = r.u64()?;
        let prov = provenance_from_tag(r.u8()?)?;
        if prev.is_some_and(|p| p >= addr) {
            return Err(SerialError::Corrupt("starts not strictly ascending"));
        }
        prev = Some(addr);
        starts.insert(addr, prov);
    }
    let n_layers = r.count(2)?;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        layers.push(r.layer_name()?);
    }
    let n_trace = r.count(2)?;
    let mut trace = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        let name = r.layer_name()?;
        let wall_nanos = r.u64()?;
        let added = r.delta()?;
        let removed = r.delta()?;
        let starts_after = r.u64()? as usize;
        let decode_hits = r.u64()?;
        let decode_misses = r.u64()?;
        // Pre-v3 traces predate the scan counters: decode as zero.
        let (bytes_scanned, candidates_checked) = if version >= RESULT_VERSION {
            (r.u64()?, r.u64()?)
        } else {
            (0, 0)
        };
        trace.push(LayerTrace {
            name,
            wall_nanos,
            added,
            removed,
            starts_after,
            decode_hits,
            decode_misses,
            bytes_scanned,
            candidates_checked,
        });
    }
    let digest = if version >= RESULT_VERSION_V2 {
        match r.u8()? {
            0 => None,
            1 => Some(read_digest(&mut r)?),
            _ => return Err(SerialError::Corrupt("bad digest presence byte")),
        }
    } else {
        None
    };
    if r.pos != payload.len() {
        return Err(SerialError::Corrupt("trailing bytes after encoding"));
    }
    Ok((
        DetectionResult {
            starts,
            layers,
            trace,
        },
        digest,
    ))
}

fn read_digest(r: &mut Reader<'_>) -> Result<ImageDigest, SerialError> {
    let image = r.u64()?;
    let entry = r.u64()?;
    let symbols = r.u64()?;
    let text_hash = r.u64()?;
    // kind + addr + len + raw + bucket count.
    let n_sections = r.count(1 + 8 + 8 + 8 + 4)?;
    let mut sections = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let kind = section_kind_from_tag(r.u8()?)?;
        let addr = r.u64()?;
        let len = r.u64()?;
        let raw = r.u64()?;
        // start + end + covered + raw + sem.
        let n_buckets = r.count(8 + 8 + 1 + 8 + 8)?;
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut prev_end: Option<u64> = None;
        for _ in 0..n_buckets {
            let start = r.u64()?;
            let end = r.u64()?;
            let covered = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SerialError::Corrupt("bad bucket covered byte")),
            };
            if start >= end || prev_end.is_some_and(|p| p > start) {
                return Err(SerialError::Corrupt("buckets not ascending"));
            }
            prev_end = Some(end);
            let raw = r.u64()?;
            let sem = r.u64()?;
            buckets.push(BucketDigest {
                start,
                end,
                covered,
                raw,
                sem,
            });
        }
        sections.push(SectionDigest {
            kind,
            addr,
            len,
            raw,
            buckets,
        });
    }
    Ok(ImageDigest {
        image,
        entry,
        symbols,
        text_hash,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use fetch_synth::{synthesize, SynthConfig};

    fn trace_fields_equal(a: &DetectionResult, b: &DetectionResult) -> bool {
        // PartialEq ignores timing/decode/scan fields by design;
        // persistence must keep them, so compare every field explicitly.
        a == b
            && a.trace.len() == b.trace.len()
            && a.trace.iter().zip(&b.trace).all(|(x, y)| {
                x.wall_nanos == y.wall_nanos
                    && x.decode_hits == y.decode_hits
                    && x.decode_misses == y.decode_misses
                    && x.bytes_scanned == y.bytes_scanned
                    && x.candidates_checked == y.candidates_checked
            })
    }

    fn encode_legacy(result: &DetectionResult, version: u16) -> Vec<u8> {
        serialize_result_legacy(result, version).unwrap()
    }

    #[test]
    fn legacy_encoder_rejects_non_legacy_versions() {
        let case = synthesize(&SynthConfig::small(46));
        let result = Pipeline::parse("FDE+Rec").unwrap().run(&case.binary);
        for bad in [0, RESULT_VERSION, RESULT_VERSION + 1] {
            assert_eq!(
                serialize_result_legacy(&result, bad),
                Err(SerialError::UnsupportedVersion(bad))
            );
        }
    }

    #[test]
    fn v1_and_v2_blobs_still_deserialize_with_zeroed_scan_counters() {
        let case = synthesize(&SynthConfig::small(45));
        let result = Pipeline::fetch().run(&case.binary);
        assert!(
            result.trace.iter().any(|t| t.bytes_scanned > 0),
            "the fetch pipeline's Xref layer scans data bytes"
        );
        for version in [RESULT_VERSION_V1, RESULT_VERSION_V2] {
            let old = encode_legacy(&result, version);
            let (back, digest) = deserialize_result_full(&old).unwrap();
            assert_eq!(back, result, "deterministic fields survive v{version}");
            assert!(digest.is_none());
            for (x, y) in back.trace.iter().zip(&result.trace) {
                assert_eq!(x.wall_nanos, y.wall_nanos);
                assert_eq!(x.decode_hits, y.decode_hits);
                assert_eq!(x.decode_misses, y.decode_misses);
                assert_eq!(x.bytes_scanned, 0, "pre-v3 traces have no counters");
                assert_eq!(x.candidates_checked, 0);
            }
        }
    }

    #[test]
    fn round_trip_is_identity_including_timing() {
        let case = synthesize(&SynthConfig::small(41));
        let result = Pipeline::fetch().run(&case.binary);
        let bytes = serialize_result(&result).unwrap();
        let back = deserialize_result(&bytes).unwrap();
        assert!(trace_fields_equal(&result, &back));
        assert_eq!(
            serialize_result(&back).unwrap(),
            bytes,
            "encoding must be deterministic"
        );
    }

    #[test]
    fn digest_round_trips_and_v1_reads_as_digestless() {
        let case = synthesize(&SynthConfig::small(44));
        let result = Pipeline::fetch().run(&case.binary);
        let digest =
            crate::ImageDigest::compute(&case.binary, crate::content_fingerprint(&case.binary));
        let bytes = serialize_result_with_digest(&result, Some(&digest)).unwrap();
        let (back, d) = deserialize_result_full(&bytes).unwrap();
        assert!(trace_fields_equal(&result, &back));
        assert_eq!(d.as_ref(), Some(&digest));

        // A digest-less current-version encoding reads back as None.
        let plain = serialize_result(&result).unwrap();
        let (_, none) = deserialize_result_full(&plain).unwrap();
        assert!(none.is_none());

        // A v1 (pre-digest, pre-scan-counter) blob must still
        // deserialize, with no digest.
        let v1 = encode_legacy(&result, RESULT_VERSION_V1);
        let (old, od) = deserialize_result_full(&v1).unwrap();
        assert_eq!(old, result);
        assert!(od.is_none());
        assert_eq!(deserialize_result(&v1).unwrap(), result);
    }

    #[test]
    fn provenance_tags_round_trip() {
        for tag in 0u8..=9 {
            let p = provenance_from_tag(tag).unwrap();
            assert_eq!(provenance_tag(p), tag);
        }
        assert_eq!(
            provenance_from_tag(10),
            Err(SerialError::UnknownProvenance(10))
        );
    }

    #[test]
    fn header_and_checksum_are_enforced() {
        let case = synthesize(&SynthConfig::small(42));
        let result = Pipeline::parse("FDE+Rec").unwrap().run(&case.binary);
        let bytes = serialize_result(&result).unwrap();

        assert_eq!(deserialize_result(&[]), Err(SerialError::Truncated));
        assert_eq!(
            deserialize_result(&bytes[..bytes.len() - 1]),
            Err(SerialError::ChecksumMismatch),
            "truncation breaks the checksum"
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(deserialize_result(&bad_magic), Err(SerialError::BadMagic));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0x7f;
        // Version is checked before the checksum would even matter —
        // recompute a valid checksum to prove it.
        let n = bad_version.len() - 8;
        let sum = checksum(&bad_version[..n]).to_le_bytes();
        bad_version[n..].copy_from_slice(&sum);
        assert_eq!(
            deserialize_result(&bad_version),
            Err(SerialError::UnsupportedVersion(0x7f))
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(
            deserialize_result(&flipped),
            Err(SerialError::ChecksumMismatch)
        );
    }

    #[test]
    fn layer_vocabulary_is_closed() {
        struct Custom;
        impl crate::Strategy for Custom {
            fn name(&self) -> &'static str {
                "Custom"
            }
            fn apply(&self, _state: &mut crate::DetectionState<'_>) {}
        }
        let case = synthesize(&SynthConfig::small(43));
        let result = crate::run_stack(&case.binary, &[&crate::FdeSeeds, &Custom]);
        assert_eq!(
            serialize_result(&result),
            Err(SerialError::UnknownLayerName("Custom".into()))
        );
        assert_eq!(intern_layer_name("Rec"), Some("Rec"));
        assert_eq!(intern_layer_name("rec"), None, "names are exact");
    }
}
