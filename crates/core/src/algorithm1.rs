//! Algorithm 1 (§V-B): tail-call detection and call-frame merging — the
//! first approach that repairs the false function starts FDEs introduce.
//!
//! For every direct/conditional jump `j` in every function `f` whose CFI
//! gives *complete* stack-height information:
//!
//! 1. if the stack height at `j` is zero, the target satisfies the calling
//!    convention, and the target is referenced from outside `f`, then `j`
//!    is a tail call and its target a (confirmed) function start;
//! 2. otherwise, if the target has an FDE record and its only references
//!    are jumps from `f`, the two call frames belong to the same
//!    non-contiguous function and are merged.
//!
//! Functions whose CFIs do not record complete heights (frame-pointer
//! CFAs) are skipped — the source of the residual ~5% unfixed false
//! positives the paper reports in §V-C.
//!
//! Additionally, FDE starts that fail hard calling-convention validation
//! (undecodable or padding-first, the Figure-6b hand-written mislabels)
//! are removed, mirroring the paper's 3-false-positive fix.

use crate::state::{DetectionState, Provenance};
use crate::strategy::Strategy;
use fetch_analyses::{validate_calling_convention_cached, CallConvVerdict};
use fetch_disasm::{ErrorCallPolicy, XrefKind};
use std::collections::BTreeSet;

/// What the repair pass did. Also deposited on the state
/// ([`DetectionState::take_repair_report`]) so pipeline drivers can
/// retrieve it after running a whole declarative stack.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Non-contiguous parts merged into their functions:
    /// `(removed part start, surviving function start)`.
    pub merged: Vec<(u64, u64)>,
    /// Confirmed tail calls: `(jump address, target)`.
    pub tail_calls: Vec<(u64, u64)>,
    /// Hand-mislabeled FDE starts removed.
    pub bad_fdes_removed: Vec<u64>,
    /// Functions skipped because their CFI heights were incomplete.
    pub skipped_incomplete: usize,
}

/// `TcallFix`: the call-frame repair layer (Algorithm 1 + mislabeled-FDE
/// removal). The optimal pipeline runs it after `FDE+Rec+Xref`.
///
/// The three fields are ablation knobs (all `false`/`None` reproduces the
/// paper's algorithm); the `ablation_alg1` bench sweeps them to quantify
/// each criterion's contribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallFrameRepair {
    /// Replace CFI stack heights with a static analysis model — the
    /// design choice the paper explicitly rejects (§V-B, Table IV).
    pub use_static_heights: Option<fetch_analyses::HeightStyle>,
    /// Drop the `MeetCallConv` criterion from tail-call detection.
    pub skip_callconv: bool,
    /// Drop the reference criterion (`HasRefTo`/`RefTo == j`) — merging
    /// then fires on any non-tail jump between frames.
    pub skip_ref_check: bool,
}

impl CallFrameRepair {
    /// Runs the repair, returning a detailed report (also deposited on
    /// the state for pipeline drivers — see
    /// [`DetectionState::take_repair_report`]).
    pub fn repair(&self, state: &mut DetectionState<'_>) -> RepairReport {
        let report = self.repair_inner(state);
        state.last_repair = Some(report.clone());
        report
    }

    fn repair_inner(&self, state: &mut DetectionState<'_>) -> RepairReport {
        let mut report = RepairReport::default();
        if state.rec.disasm.is_empty() {
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }

        // ---- remove hand-mislabeled FDE starts (hard invalidity only) ----
        let fde_starts: Vec<u64> = state
            .starts
            .iter()
            .filter(|(_, p)| **p == Provenance::Fde)
            .map(|(a, _)| *a)
            .collect();
        let mut stop_calls: Vec<u64> = state.rec.noreturn.iter().copied().collect();
        stop_calls.extend(state.error_funcs.iter().copied());
        stop_calls.sort_unstable();
        stop_calls.dedup();
        // Verdict-preserving short-circuit: the sweep only acts on
        // `Undecodable` and `PaddingStart`. For a start the recursive walk
        // decoded, the calling-convention exploration visits a subset of
        // rec-reachable code — it breaks at every call the walk pruned
        // (`stop_calls` covers the walk's noreturn/error pruning) and at
        // indirect jumps the walk followed — so with no decode errors
        // anywhere in the disassembly the verdict cannot be `Undecodable`,
        // and `PaddingStart` is decided by the first instruction alone.
        // Valid/ReadBeforeWrite are both kept, so skipping the exploration
        // leaves `bad_fdes_removed` byte-identical.
        let no_decode_errors = state.rec.disasm.decode_errors.is_empty();
        for s in fde_starts {
            if no_decode_errors {
                if let Some(first) = state.rec.disasm.at(s) {
                    if !first.is_padding() {
                        continue;
                    }
                    state.remove_start(s);
                    report.bad_fdes_removed.push(s);
                    continue;
                }
            }
            match validate_calling_convention_cached(
                state.binary,
                s,
                96,
                &stop_calls,
                &state.rec.disasm,
            ) {
                CallConvVerdict::Undecodable { .. } | CallConvVerdict::PaddingStart => {
                    state.remove_start(s);
                    report.bad_fdes_removed.push(s);
                }
                _ => {}
            }
        }
        if !report.bad_fdes_removed.is_empty() {
            // Re-run recursion so extents/references no longer include
            // blocks grown from the bogus starts.
            state.run_recursion(true, ErrorCallPolicy::SliceZero);
        }

        // ---- CFI stack heights, complete functions only ----
        // The per-FDE height tables, start set and coverage ranges are a
        // pure function of `.eh_frame`, memoized on the state — repeated
        // repairs stop re-evaluating every CFI program.
        let Some(frames) = state.frame_table() else {
            return report;
        };
        let heights = &frames.heights;
        let has_fde = &frames.has_fde;
        let removed_fdes: BTreeSet<u64> = report.bad_fdes_removed.iter().copied().collect();
        let fde_ranges: Vec<(u64, u64)> = frames
            .ranges
            .iter()
            .copied()
            .filter(|(b, _)| !removed_fdes.contains(b))
            .collect();
        // The CFI range map already assigns every covered byte to a call
        // frame: an address strictly inside a (surviving) FDE's range is
        // some function's interior, never a new start. ICF-style entry
        // jumps into folded bodies otherwise satisfy every tail-call
        // criterion and would mint a false start.
        let fde_interior = |t: u64| -> bool {
            match fde_ranges.binary_search_by(|&(b, _)| b.cmp(&t)) {
                Ok(_) => false, // an FDE begin is a legitimate start
                Err(0) => false,
                Err(i) => {
                    let (b, e) = fde_ranges[i - 1];
                    b < t && t < e
                }
            }
        };

        // ---- references (memoized on the state) ----
        let xrefs = state.xrefs();
        let data_ptrs = state.data_pointers();
        let extents = state.extents();

        // Snapshot of the start set entering the repair loop, flattened
        // to a sorted slice: the reference closures below probe it per
        // incoming jump, and a binary search over one contiguous
        // allocation beats a tree walk at that frequency. `has_fde`
        // gets the same treatment for the per-jump merge test.
        let start_snapshot: Vec<u64> = state.start_set().iter().copied().collect();
        let snapshot_has = |t: u64| start_snapshot.binary_search(&t).is_ok();
        let has_fde_sorted: Vec<u64> = has_fde.iter().copied().collect();
        let fde_has = |t: u64| has_fde_sorted.binary_search(&t).is_ok();

        // Jump-only reference check: every reference to `t` is a jump
        // whose source lies inside `f`'s body, and no data pointer or
        // constant names `t`.
        let only_jumps_from = |t: u64, f_body: &fetch_disasm::FunctionBody| -> bool {
            if data_ptrs.contains_key(&t) {
                return false;
            }
            match xrefs.get(t) {
                None => false, // unreferenced targets are not merge edges
                Some(refs) => refs.iter().all(|x| {
                    matches!(x.kind, XrefKind::Jump | XrefKind::CondJump) && f_body.contains(x.from)
                }),
            }
        };
        // Referenced from somewhere other than jumps inside `f`. Data
        // pointers count only when §IV-E validated them (the pointer scan
        // already promoted them to starts): raw sliding-window composites
        // routinely alias mid-function addresses, and trusting one here
        // would confirm a bogus tail call into a function body.
        let referenced_elsewhere = |t: u64, f_body: &fetch_disasm::FunctionBody| -> bool {
            if data_ptrs.contains_key(&t) && snapshot_has(t) {
                return true;
            }
            xrefs.get(t).is_some_and(|refs| {
                refs.iter().any(|x| {
                    !matches!(x.kind, XrefKind::Jump | XrefKind::CondJump)
                        || !f_body.contains(x.from)
                })
            })
        };

        // ---- Algorithm 1 main loop ----
        let mut removed: BTreeSet<u64> = BTreeSet::new();
        // Calling-convention verdicts are a pure function of the
        // binary, the (fixed-for-the-loop) disassembly, and the stop
        // set — and hot tail-call targets are tested once per incoming
        // jump. Memoize per target across the whole loop.
        let mut cc_memo: std::collections::BTreeMap<u64, bool> = std::collections::BTreeMap::new();
        for &f in &start_snapshot {
            if removed.contains(&f) {
                continue;
            }
            let ht = heights.get(&f);
            if ht.is_none() && self.use_static_heights.is_none() {
                if fde_has(f) {
                    report.skipped_incomplete += 1;
                }
                continue;
            }
            let Some(body) = extents.get(&f) else {
                continue;
            };
            // Ablation: a static stack-height model instead of CFIs.
            let static_heights = self
                .use_static_heights
                .map(|style| fetch_analyses::model_stack_heights(body, &state.rec.disasm, style));
            for j in &body.jumps {
                let Some(t) = j.direct_target() else { continue };
                // A target inside f's discovered body is usually an
                // intra-function label — but an undetected tail-callee is
                // *absorbed* into the caller's extent by traversal, so
                // the tail-call test must still run for such targets
                // (the reference criterion rejects genuine labels, whose
                // only references come from within f).
                let absorbed = body.contains(t) && t != f;
                if t == f || removed.contains(&t) {
                    continue;
                }
                let h = match (&static_heights, ht) {
                    (Some(model), _) => model.get(&j.addr).copied().flatten(),
                    (None, Some(ht)) => ht.height_at(j.addr),
                    (None, None) => None,
                };
                let Some(h) = h else { continue };
                let mut is_tail_call = false;
                if h == 0 && !fde_interior(t) {
                    let cc_ok = self.skip_callconv
                        || match cc_memo.get(&t) {
                            Some(&ok) => ok,
                            None => {
                                let ok = validate_calling_convention_cached(
                                    state.binary,
                                    t,
                                    96,
                                    &stop_calls,
                                    &state.rec.disasm,
                                )
                                .is_valid();
                                cc_memo.insert(t, ok);
                                ok
                            }
                        };
                    if cc_ok && referenced_elsewhere(t, body) {
                        // A confirmed tail call: the target is a function.
                        report.tail_calls.push((j.addr, t));
                        if state.add_start(t, Provenance::TailCallFix) {
                            // Newly discovered function via tail call.
                        }
                        is_tail_call = true;
                    }
                }
                if !is_tail_call
                    && !absorbed
                    && state.starts.contains_key(&t)
                    && fde_has(t)
                    && (self.skip_ref_check || only_jumps_from(t, body))
                {
                    // Same non-contiguous function: merge the frames.
                    state.remove_start(t);
                    removed.insert(t);
                    report.merged.push((t, f));
                }
            }
        }
        report
    }
}

impl Strategy for CallFrameRepair {
    fn name(&self) -> &'static str {
        "TcallFix"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        self.repair(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointer_scan::PointerScan;
    use crate::strategy::{FdeSeeds, SafeRecursion, Strategy};
    use fetch_binary::TestCase;
    use fetch_synth::{synthesize, SynthConfig};

    fn split_case(seed: u64) -> TestCase {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = 150;
        cfg.rates.split_cold = 0.15;
        cfg.rates.asm_funcs = 6;
        cfg.rates.mislabeled_fdes = 1;
        synthesize(&cfg)
    }

    fn run_pipeline(case: &TestCase) -> (DetectionState<'_>, RepairReport) {
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        PointerScan.apply(&mut state);
        let report = CallFrameRepair::default().repair(&mut state);
        (state, report)
    }

    #[test]
    fn repair_removes_most_cold_part_false_starts() {
        let case = split_case(51);
        let fde_false = case.truth.fde_false_starts();
        assert!(fde_false.len() >= 10, "corpus has cold-part FDEs");
        let (state, report) = run_pipeline(&case);
        let remaining: Vec<u64> = fde_false
            .iter()
            .copied()
            .filter(|s| state.starts.contains_key(s))
            .collect();
        // The paper repairs ~95% corpus-wide; on one small binary the
        // residual incomplete-CFI class (frame-pointer parents) makes the
        // per-binary rate noisier — require a strong majority and that
        // every survivor is indeed a cold-part start.
        assert!(
            remaining.len() * 4 < fde_false.len(),
            "repaired {}/{} (remaining: {remaining:x?})",
            fde_false.len() - remaining.len(),
            fde_false.len()
        );
        for s in &remaining {
            assert!(case.truth.part_starts().contains(s));
        }
        assert!(report.merged.len() >= fde_false.len() - remaining.len());
    }

    #[test]
    fn repair_never_removes_true_starts_except_tail_only_singles() {
        let case = split_case(52);
        let (_state, report) = run_pipeline(&case);
        for (removed, _into) in &report.merged {
            if case.truth.is_start(*removed) {
                let f = case.truth.function_at(*removed).unwrap();
                assert!(
                    matches!(f.reach, fetch_binary::Reach::TailCalled { callers: 1 }),
                    "merged true start {removed:#x} must be a single-caller \
                     tail-only function (the paper's harmless 161)"
                );
            }
        }
    }

    #[test]
    fn mislabeled_fdes_are_removed() {
        // Mislabeled FDEs are exactly the `PC Begin`s that are not ground
        // truth part starts (they sit one byte early, Figure 6b).
        let mut found_any = false;
        for seed in [53u64, 56, 57, 58] {
            let case = split_case(seed);
            let parts = case.truth.part_starts();
            let mislabeled: Vec<u64> = case
                .binary
                .eh_frame()
                .unwrap()
                .pc_begins()
                .into_iter()
                .filter(|b| !parts.contains(b))
                .collect();
            let (state, report) = run_pipeline(&case);
            // Every removed "bad FDE" is one byte before a true start.
            for r in &report.bad_fdes_removed {
                assert!(
                    case.truth.is_start(r + 1),
                    "removed {r:#x} is not a mislabel artifact"
                );
                assert!(!state.starts.contains_key(r));
            }
            // Every mislabel in the corpus is caught.
            for m in &mislabeled {
                found_any = true;
                assert!(
                    report.bad_fdes_removed.contains(m),
                    "mislabel {m:#x} not caught (seed {seed})"
                );
            }
        }
        assert!(found_any, "test corpus never produced a mislabeled FDE");
    }

    #[test]
    fn incomplete_cfi_functions_are_skipped() {
        let mut cfg = SynthConfig::small(54);
        cfg.n_funcs = 150;
        cfg.rates.rbp_frame = 0.5; // many frame-pointer functions
        let case = synthesize(&cfg);
        let mut state = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut state);
        SafeRecursion::default().apply(&mut state);
        let report = CallFrameRepair::default().repair(&mut state);
        assert!(report.skipped_incomplete > 10, "rbp frames are skipped");
    }

    #[test]
    fn confirmed_tail_calls_point_at_true_starts() {
        let case = split_case(55);
        let (_state, report) = run_pipeline(&case);
        for (_j, t) in &report.tail_calls {
            assert!(
                case.truth.is_start(*t),
                "tail target {t:#x} is a true start"
            );
        }
    }
}
