//! Detection state: the evolving set of function starts a strategy stack
//! transforms, with provenance tracking for every start.

use fetch_binary::Binary;
use fetch_disasm::{recursive_disassemble, ErrorCallPolicy, RecOptions, RecResult};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Where a detected start came from. Figure 5's per-layer accounting and
/// the accuracy analysis both key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Provenance {
    /// FDE `PC Begin` field.
    Fde,
    /// Surviving symbol.
    Symbol,
    /// Direct-call target found by recursive disassembly.
    CallTarget,
    /// Validated function pointer (§IV-E).
    PointerScan,
    /// Tail-call target confirmed by Algorithm 1.
    TailCallFix,
    /// Prologue signature match (unsafe `Fsig`).
    Prologue,
    /// Heuristic tail-call target (unsafe `Tcall`).
    TailHeuristic,
    /// Gap start found by linear scan (unsafe `Scan`, ANGR).
    LinearScan,
    /// Target of a thunk jump (unsafe, GHIDRA).
    Thunk,
    /// First non-padding instruction after alignment (unsafe, ANGR).
    Alignment,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provenance::Fde => "fde",
            Provenance::Symbol => "symbol",
            Provenance::CallTarget => "call-target",
            Provenance::PointerScan => "pointer-scan",
            Provenance::TailCallFix => "tail-call-fix",
            Provenance::Prologue => "prologue",
            Provenance::TailHeuristic => "tail-heuristic",
            Provenance::LinearScan => "linear-scan",
            Provenance::Thunk => "thunk",
            Provenance::Alignment => "alignment",
        };
        f.write_str(s)
    }
}

/// The final, immutable output of a detector run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionResult {
    /// Detected function starts with provenance.
    pub starts: BTreeMap<u64, Provenance>,
    /// Names of the strategy layers that ran, in order.
    pub layers: Vec<String>,
}

impl DetectionResult {
    /// The start addresses as a set.
    pub fn start_set(&self) -> BTreeSet<u64> {
        self.starts.keys().copied().collect()
    }

    /// Number of detected starts.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// Mutable state threaded through a strategy stack.
#[derive(Debug, Clone)]
pub struct DetectionState<'b> {
    /// The binary under analysis (detectors never see ground truth).
    pub binary: &'b Binary,
    /// Current start set with provenance.
    pub starts: BTreeMap<u64, Provenance>,
    /// Latest recursive-disassembly result (empty until recursion runs).
    pub rec: RecResult,
    /// Addresses of `error`/`error_at_line`-style functions (resolved
    /// from symbol names, modeling dynamic-symbol knowledge of libc).
    pub error_funcs: BTreeSet<u64>,
    /// Layer names applied so far.
    pub layers: Vec<String>,
}

impl<'b> DetectionState<'b> {
    /// Creates an empty state for `binary`, resolving error-function
    /// addresses from its symbols when present.
    pub fn new(binary: &'b Binary) -> DetectionState<'b> {
        let error_funcs = binary
            .symbols
            .iter()
            .filter(|s| s.name == "error" || s.name == "error_at_line")
            .map(|s| s.addr)
            .collect();
        DetectionState {
            binary,
            starts: BTreeMap::new(),
            rec: RecResult::default(),
            error_funcs,
            layers: Vec::new(),
        }
    }

    /// Adds a start, keeping the earliest provenance on duplicates.
    /// Returns `true` when the start is new.
    pub fn add_start(&mut self, addr: u64, prov: Provenance) -> bool {
        match self.starts.entry(addr) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(prov);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Removes a start (control-flow repair, merging, FDE repair).
    pub fn remove_start(&mut self, addr: u64) -> bool {
        self.starts.remove(&addr).is_some()
    }

    /// The start addresses as a set.
    pub fn start_set(&self) -> BTreeSet<u64> {
        self.starts.keys().copied().collect()
    }

    /// Re-runs safe recursive disassembly from the current starts with
    /// the given error-call policy, recording newly discovered direct
    /// call targets as [`Provenance::CallTarget`] starts when
    /// `add_call_targets` is set.
    pub fn run_recursion(&mut self, add_call_targets: bool, policy: ErrorCallPolicy) {
        let opts = RecOptions {
            add_call_targets,
            error_funcs: self.error_funcs.clone(),
            error_policy: policy,
            ..RecOptions::default()
        };
        let seeds = self.start_set();
        let rec = recursive_disassemble(self.binary, &seeds, &opts);
        if add_call_targets {
            for &f in &rec.functions {
                self.add_start(f, Provenance::CallTarget);
            }
        }
        self.rec = rec;
    }

    /// Freezes the state into a [`DetectionResult`].
    pub fn into_result(self) -> DetectionResult {
        DetectionResult { starts: self.starts, layers: self.layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn provenance_is_first_writer_wins() {
        let case = synthesize(&SynthConfig::small(3));
        let mut st = DetectionState::new(&case.binary);
        assert!(st.add_start(0x40_1000, Provenance::Fde));
        assert!(!st.add_start(0x40_1000, Provenance::Prologue));
        assert_eq!(st.starts[&0x40_1000], Provenance::Fde);
        assert!(st.remove_start(0x40_1000));
        assert!(!st.remove_start(0x40_1000));
    }

    #[test]
    fn error_funcs_resolved_from_symbols() {
        let case = synthesize(&SynthConfig::small(3));
        let st = DetectionState::new(&case.binary);
        let error = case.truth.functions.iter().find(|f| f.name == "error").unwrap();
        assert!(st.error_funcs.contains(&error.entry()));
        // Stripped binaries lose the knowledge.
        let stripped = case.binary.stripped();
        let st2 = DetectionState::new(&stripped);
        assert!(st2.error_funcs.is_empty());
    }
}
