//! Detection state: the evolving set of function starts a strategy stack
//! transforms, with provenance tracking for every start, a persistent
//! incremental recursion engine, and generation-counted analysis caches.

use fetch_binary::Binary;
use fetch_disasm::{
    code_xrefs, function_extents, recursive_disassemble, ErrorCallPolicy, FunctionBody, RecEngine,
    RecOptions, RecResult, XrefIndex,
};
use fetch_ehframe::{stack_heights, EhFrame, HeightTable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// The CFI side-table of a binary: every FDE's stack-height table (where
/// the CFIs are complete), the set of FDE-covered starts, and the sorted
/// coverage ranges. A pure function of the immutable binary, so
/// [`DetectionState`] computes it at most once per run — call-frame
/// repair used to re-evaluate every CFI program on every invocation.
#[derive(Debug, Clone, Default)]
pub struct FrameTable {
    /// Complete stack-height tables keyed by FDE `PC Begin`.
    pub heights: BTreeMap<u64, HeightTable>,
    /// Every FDE `PC Begin` in the binary.
    pub has_fde: BTreeSet<u64>,
    /// Sorted `(pc_begin, pc_end)` coverage ranges of every FDE.
    pub ranges: Vec<(u64, u64)>,
}

impl FrameTable {
    /// Evaluates an already-parsed `.eh_frame` (absent sections yield an
    /// empty table).
    fn from_eh(eh: &EhFrame) -> FrameTable {
        let mut table = FrameTable::default();
        for (cie, fde) in eh.fdes_with_cie() {
            table.has_fde.insert(fde.pc_begin);
            table.ranges.push((fde.pc_begin, fde.pc_end()));
            if let Ok(Some(h)) = stack_heights(cie, fde) {
                table.heights.insert(fde.pc_begin, h);
            }
        }
        table.ranges.sort_unstable();
        table
    }
}

/// Where a detected start came from. Figure 5's per-layer accounting and
/// the accuracy analysis both key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Provenance {
    /// FDE `PC Begin` field.
    Fde,
    /// Surviving symbol.
    Symbol,
    /// Direct-call target found by recursive disassembly.
    CallTarget,
    /// Validated function pointer (§IV-E).
    PointerScan,
    /// Tail-call target confirmed by Algorithm 1.
    TailCallFix,
    /// Prologue signature match (unsafe `Fsig`).
    Prologue,
    /// Heuristic tail-call target (unsafe `Tcall`).
    TailHeuristic,
    /// Gap start found by linear scan (unsafe `Scan`, ANGR).
    LinearScan,
    /// Target of a thunk jump (unsafe, GHIDRA).
    Thunk,
    /// First non-padding instruction after alignment (unsafe, ANGR).
    Alignment,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provenance::Fde => "fde",
            Provenance::Symbol => "symbol",
            Provenance::CallTarget => "call-target",
            Provenance::PointerScan => "pointer-scan",
            Provenance::TailCallFix => "tail-call-fix",
            Provenance::Prologue => "prologue",
            Provenance::TailHeuristic => "tail-heuristic",
            Provenance::LinearScan => "linear-scan",
            Provenance::Thunk => "thunk",
            Provenance::Alignment => "alignment",
        };
        f.write_str(s)
    }
}

/// Per-layer execution record the traced executor
/// ([`DetectionState::apply_layer`]) emits into
/// [`DetectionResult::trace`]: what the layer changed (exact start
/// deltas with provenance), how long it took, and how much decode work
/// it caused.
///
/// # Equality
///
/// Only the *deterministic* fields participate in `==`: `name`, `added`,
/// `removed`, and `starts_after`. Wall time and decode-cache counters are
/// instrumentation — they vary run-to-run and with engine warmth, and the
/// differential suites (`parallel ≡ serial`, `shared engine ≡ fresh
/// engine`, `cache hit ≡ cold run`) compare results across exactly those
/// axes.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// The layer's display name ([`crate::Strategy::name`]).
    pub name: &'static str,
    /// Wall time of the layer, in nanoseconds (excluded from `==`).
    pub wall_nanos: u64,
    /// Starts the layer added (net of its own removals), ascending. An
    /// address whose provenance changed appears in `removed` (old) and
    /// `added` (new).
    pub added: Vec<(u64, Provenance)>,
    /// Starts the layer removed (net of its own additions), ascending.
    pub removed: Vec<(u64, Provenance)>,
    /// Size of the start set after the layer ran.
    pub starts_after: usize,
    /// Decode-cache hits attributed to the layer (excluded from `==`).
    pub decode_hits: u64,
    /// Decode-cache misses — fresh decodes — attributed to the layer
    /// (excluded from `==`).
    pub decode_misses: u64,
    /// Data-section bytes the §IV-E pointer sweep covered during this
    /// layer (excluded from `==`). Decode counters alone made the
    /// `Xref` layer look idle — its work is scanning, not decoding.
    pub bytes_scanned: u64,
    /// Pointer-scan candidates run through §IV-E validation during
    /// this layer (excluded from `==`).
    pub candidates_checked: u64,
}

impl LayerTrace {
    /// Wall time in microseconds.
    pub fn wall_us(&self) -> f64 {
        self.wall_nanos as f64 / 1e3
    }

    /// The provenance delta: how many starts each evidence source
    /// contributed in this layer.
    pub fn added_by_provenance(&self) -> BTreeMap<Provenance, usize> {
        let mut by = BTreeMap::new();
        for (_, p) in &self.added {
            *by.entry(*p).or_insert(0) += 1;
        }
        by
    }
}

impl PartialEq for LayerTrace {
    fn eq(&self, other: &LayerTrace) -> bool {
        self.name == other.name
            && self.added == other.added
            && self.removed == other.removed
            && self.starts_after == other.starts_after
    }
}

impl Eq for LayerTrace {}

/// The final, immutable output of a detector run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionResult {
    /// Detected function starts with provenance.
    pub starts: BTreeMap<u64, Provenance>,
    /// Names of the strategy layers that ran, in order.
    pub layers: Vec<&'static str>,
    /// Per-layer execution records ([`LayerTrace`]), parallel to
    /// `layers`. Timing/decode fields are instrumentation and excluded
    /// from `==`; the start deltas are deterministic and included.
    pub trace: Vec<LayerTrace>,
}

impl DetectionResult {
    /// The start addresses as a set.
    pub fn start_set(&self) -> BTreeSet<u64> {
        self.starts.keys().copied().collect()
    }

    /// Replays the trace's start deltas through the first `k` layers,
    /// reconstructing the start set as it stood after layer `k - 1` ran
    /// — layers are sequential, so the prefix of a pipeline's trace *is*
    /// the result of running the shorter stack. The `fig5` harness uses
    /// this to evaluate every prefix stack of a panel from one run.
    ///
    /// Requires a complete trace (the state mutated only through
    /// layers); `replay == starts` holds for `k >= trace.len()`.
    pub fn starts_after_layer(&self, k: usize) -> BTreeMap<u64, Provenance> {
        let mut starts = BTreeMap::new();
        for t in &self.trace[..k.min(self.trace.len())] {
            for (a, _) in &t.removed {
                starts.remove(a);
            }
            for &(a, p) in &t.added {
                starts.insert(a, p);
            }
        }
        starts
    }

    /// The start addresses in ascending order, without materializing a
    /// set (use in loops that only need iteration).
    pub fn start_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.starts.keys().copied()
    }

    /// Number of detected starts.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Approximate resident heap footprint of the result, in bytes —
    /// the accounting unit of the size-aware serving cache
    /// ([`crate::AnalysisCache`]) and the serve `stats` report. An
    /// estimate (map node overhead is amortized at a fixed per-entry
    /// cost), deterministic for a given result, and monotone in the
    /// result's actual size — exactly what a byte-capacity bound needs.
    pub fn approx_bytes(&self) -> usize {
        // BTreeMap stores entries in node arrays; ~2 words of amortized
        // per-entry bookkeeping on top of the payload.
        const MAP_ENTRY_OVERHEAD: usize = 16;
        let start_entry =
            std::mem::size_of::<u64>() + std::mem::size_of::<Provenance>() + MAP_ENTRY_OVERHEAD;
        let delta_entry = std::mem::size_of::<(u64, Provenance)>();
        let traces: usize = self
            .trace
            .iter()
            .map(|t| {
                std::mem::size_of::<LayerTrace>() + (t.added.len() + t.removed.len()) * delta_entry
            })
            .sum();
        std::mem::size_of::<DetectionResult>()
            + self.starts.len() * start_entry
            + self.layers.len() * std::mem::size_of::<&'static str>()
            + traces
    }
}

/// A cache slot tagged with the generation it was computed at.
type Tagged<T> = Option<(u64, Arc<T>)>;

/// Generation-counted memoization of the analyses every repair/heuristic
/// layer needs. Entries tagged with the starts- or disassembly-generation
/// they were computed at; a stale tag means recompute. (Intra-state
/// memoization — the cross-run result cache is [`crate::AnalysisCache`].)
#[derive(Debug, Clone, Default)]
struct StateMemo {
    start_set: Tagged<BTreeSet<u64>>,
    xrefs: Tagged<XrefIndex>,
    extents: Tagged<BTreeMap<u64, FunctionBody>>,
    code_constants: Tagged<BTreeSet<u64>>,
    /// Derived from the (immutable) binary alone: computed at most once.
    data_ptrs: Option<Arc<BTreeMap<u64, Vec<u64>>>>,
    /// CFI side-table, also binary-pure; the outer `Option` is the
    /// "computed yet?" flag, the inner one records an unparseable
    /// `.eh_frame` so the failure is memoized too.
    frame_table: Option<Option<Arc<FrameTable>>>,
    /// The parsed `.eh_frame`, binary-pure like the two above. FDE
    /// seeding and the CFI side-table each parsed the section from
    /// scratch before this memo existed.
    eh: Option<Option<Arc<EhFrame>>>,
}

/// Mutable state threaded through a strategy stack.
///
/// All mutation funnels through [`DetectionState::add_start`],
/// [`DetectionState::remove_start`] and [`DetectionState::run_recursion`],
/// which advance the generation counters backing the analysis caches
/// ([`DetectionState::xrefs`], [`DetectionState::extents`],
/// [`DetectionState::data_pointers`], [`DetectionState::start_set`]).
#[derive(Debug, Clone)]
pub struct DetectionState<'b> {
    /// The binary under analysis (detectors never see ground truth).
    pub binary: &'b Binary,
    /// Current start set with provenance.
    pub(crate) starts: BTreeMap<u64, Provenance>,
    /// Latest recursive-disassembly result (empty until recursion runs).
    /// Shared with the engine's run cache: re-runs that provably change
    /// nothing hand back another reference instead of a deep clone.
    pub(crate) rec: Arc<RecResult>,
    /// Addresses of `error`/`error_at_line`-style functions (resolved
    /// from symbol names, modeling dynamic-symbol knowledge of libc).
    /// Shared so recursion re-runs never copy the set.
    pub error_funcs: Arc<BTreeSet<u64>>,
    /// Layer names applied so far (pushed by
    /// [`DetectionState::apply_layer`], never by hand — the executor owns
    /// the bookkeeping so names and traces cannot drift apart).
    pub layers: Vec<&'static str>,
    /// Per-layer execution records, parallel to `layers`.
    pub trace: Vec<LayerTrace>,
    /// The report of the most recent [`crate::CallFrameRepair`] run, for
    /// callers that want it after driving a whole pipeline (see
    /// [`DetectionState::take_repair_report`]).
    pub(crate) last_repair: Option<crate::algorithm1::RepairReport>,
    /// The persistent engine reusing decode and walk state across
    /// [`DetectionState::run_recursion`] calls.
    engine: RecEngine,
    /// When false, every recursion re-runs from scratch (the reference
    /// semantics the incremental engine is tested against).
    incremental: bool,
    starts_gen: u64,
    rec_gen: u64,
    cache: StateMemo,
    frame_hits: u64,
    frame_misses: u64,
    /// Monotone pointer-scan work counters, differenced per layer by
    /// [`DetectionState::apply_layer`] (like the decode stats).
    scan_bytes: u64,
    scan_candidates: u64,
}

impl<'b> DetectionState<'b> {
    /// Creates an empty state for `binary`, resolving error-function
    /// addresses from its symbols when present.
    pub fn new(binary: &'b Binary) -> DetectionState<'b> {
        DetectionState::with_engine(binary, RecEngine::new())
    }

    /// Creates an empty state that runs its recursions through a caller-
    /// provided [`RecEngine`], so its decode cache survives across states
    /// (e.g. several tool models analysing the same binary). The engine's
    /// binary fingerprint keeps reuse sound: state cached for a different
    /// binary is dropped, not consulted. Reclaim the engine afterwards
    /// with [`DetectionState::into_result_with_engine`].
    pub fn with_engine(binary: &'b Binary, engine: RecEngine) -> DetectionState<'b> {
        let error_funcs = binary
            .symbols
            .iter()
            .filter(|s| s.name == "error" || s.name == "error_at_line")
            .map(|s| s.addr)
            .collect();
        DetectionState {
            binary,
            starts: BTreeMap::new(),
            rec: Arc::new(RecResult::default()),
            error_funcs: Arc::new(error_funcs),
            layers: Vec::new(),
            trace: Vec::new(),
            last_repair: None,
            engine,
            incremental: true,
            starts_gen: 0,
            rec_gen: 0,
            cache: StateMemo::default(),
            frame_hits: 0,
            frame_misses: 0,
            scan_bytes: 0,
            scan_candidates: 0,
        }
    }

    /// Creates a state whose recursions always re-run from scratch — the
    /// reference semantics the incremental engine must reproduce (used by
    /// the observational-equivalence tests).
    pub fn new_reference(binary: &'b Binary) -> DetectionState<'b> {
        DetectionState {
            incremental: false,
            ..DetectionState::new(binary)
        }
    }

    /// The latest recursive-disassembly result.
    pub fn rec(&self) -> &RecResult {
        &self.rec
    }

    /// Current starts with provenance (read-only; mutate through
    /// [`DetectionState::add_start`] / [`DetectionState::remove_start`]).
    pub fn starts(&self) -> &BTreeMap<u64, Provenance> {
        &self.starts
    }

    /// Adds a start, keeping the earliest provenance on duplicates.
    /// Returns `true` when the start is new.
    pub fn add_start(&mut self, addr: u64, prov: Provenance) -> bool {
        match self.starts.entry(addr) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(prov);
                self.starts_gen += 1;
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Removes a start (control-flow repair, merging, FDE repair).
    pub fn remove_start(&mut self, addr: u64) -> bool {
        let removed = self.starts.remove(&addr).is_some();
        if removed {
            self.starts_gen += 1;
        }
        removed
    }

    /// The start addresses as a shared set, cached until a start is
    /// added or removed.
    pub fn start_set(&mut self) -> Arc<BTreeSet<u64>> {
        if let Some((gen, set)) = &self.cache.start_set {
            if *gen == self.starts_gen {
                return Arc::clone(set);
            }
        }
        let set = Arc::new(self.starts.keys().copied().collect::<BTreeSet<u64>>());
        self.cache.start_set = Some((self.starts_gen, Arc::clone(&set)));
        set
    }

    /// Code cross-references over the current disassembly, cached until
    /// the next recursion.
    pub fn xrefs(&mut self) -> Arc<XrefIndex> {
        if let Some((gen, x)) = &self.cache.xrefs {
            if *gen == self.rec_gen {
                return Arc::clone(x);
            }
        }
        let x = Arc::new(code_xrefs(&self.rec.disasm));
        self.cache.xrefs = Some((self.rec_gen, Arc::clone(&x)));
        x
    }

    /// Function extents over the current disassembly, cached until the
    /// next recursion.
    pub fn extents(&mut self) -> Arc<BTreeMap<u64, FunctionBody>> {
        if let Some((gen, e)) = &self.cache.extents {
            if *gen == self.rec_gen {
                return Arc::clone(e);
            }
        }
        let e = Arc::new(function_extents(&self.rec));
        self.cache.extents = Some((self.rec_gen, Arc::clone(&e)));
        e
    }

    /// Constant operands and rip-relative `lea` targets of the current
    /// disassembly — the code half of the §IV-E candidate super-set —
    /// cached until the next recursion.
    pub fn code_constants(&mut self) -> Arc<BTreeSet<u64>> {
        if let Some((gen, c)) = &self.cache.code_constants {
            if *gen == self.rec_gen {
                return Arc::clone(c);
            }
        }
        // Flat-accumulate then sort/dedup: `BTreeSet::from_iter` over a
        // sorted run bulk-builds, avoiding a B-tree insert per operand.
        let mut consts: Vec<u64> = Vec::new();
        for inst in self.rec.disasm.iter_unordered() {
            if let Some(t) = inst.lea_rip_target() {
                consts.push(t);
            }
            if let Some(c) = inst.const_operand() {
                consts.push(c);
            }
        }
        consts.sort_unstable();
        consts.dedup();
        let c = Arc::new(BTreeSet::from_iter(consts));
        self.cache.code_constants = Some((self.rec_gen, Arc::clone(&c)));
        c
    }

    /// The CFI side-table ([`FrameTable`]) — FDE stack heights, start
    /// set, and coverage ranges — computed at most once per state (the
    /// binary never changes underneath a run) and shared from then on.
    /// `None` when the binary's `.eh_frame` is malformed; that outcome
    /// is memoized too.
    ///
    /// Call-frame repair ([`crate::CallFrameRepair`]) re-ran this CFI
    /// evaluation on every round before the cache existed; the
    /// [`DetectionState::frame_table_stats`] counters let tests assert
    /// the hit rate.
    pub fn frame_table(&mut self) -> Option<Arc<FrameTable>> {
        if let Some(ft) = &self.cache.frame_table {
            self.frame_hits += 1;
            return ft.clone();
        }
        self.frame_misses += 1;
        let ft = self.eh_frame().map(|eh| Arc::new(FrameTable::from_eh(&eh)));
        self.cache.frame_table = Some(ft.clone());
        ft
    }

    /// The parsed `.eh_frame`, computed at most once per state and
    /// shared by every consumer (`None` memoizes a malformed section).
    /// FDE seeding and [`DetectionState::frame_table`] each re-parsed
    /// the section before this existed — on FDE-dense binaries the
    /// second parse was most of the repair layer's fixed cost.
    pub fn eh_frame(&mut self) -> Option<Arc<EhFrame>> {
        if let Some(eh) = &self.cache.eh {
            return eh.clone();
        }
        let eh = self.binary.eh_frame().ok().map(Arc::new);
        self.cache.eh = Some(eh.clone());
        eh
    }

    /// `(hits, misses)` of [`DetectionState::frame_table`]. Misses can
    /// never exceed one per state.
    pub fn frame_table_stats(&self) -> (u64, u64) {
        (self.frame_hits, self.frame_misses)
    }

    /// The data-section pointer super-set (§IV-E), computed once per
    /// state — the binary never changes underneath a run.
    pub fn data_pointers(&mut self) -> Arc<BTreeMap<u64, Vec<u64>>> {
        if let Some(d) = &self.cache.data_ptrs {
            return Arc::clone(d);
        }
        let (ptrs, bytes) = crate::pointer_scan::collect_data_pointers_counted(self.binary);
        self.scan_bytes += bytes;
        let d = Arc::new(ptrs);
        self.cache.data_ptrs = Some(Arc::clone(&d));
        d
    }

    /// Records `n` pointer-scan candidates validated (called by the
    /// §IV-E scan; attributed to the running layer by
    /// [`DetectionState::apply_layer`]).
    pub(crate) fn note_candidates_checked(&mut self, n: u64) {
        self.scan_candidates += n;
    }

    /// `(bytes_scanned, candidates_checked)` of the pointer scan so
    /// far (monotone, like [`DetectionState::engine_decode_stats`]).
    pub fn scan_stats(&self) -> (u64, u64) {
        (self.scan_bytes, self.scan_candidates)
    }

    /// Re-runs safe recursive disassembly from the current starts with
    /// the given error-call policy, recording newly discovered direct
    /// call targets as [`Provenance::CallTarget`] starts when
    /// `add_call_targets` is set.
    ///
    /// Incrementally: the persistent [`RecEngine`] reuses the decode
    /// cache and, when the seed set only grew, the previous walk.
    pub fn run_recursion(&mut self, add_call_targets: bool, policy: ErrorCallPolicy) {
        let opts = RecOptions {
            add_call_targets,
            error_funcs: Arc::clone(&self.error_funcs),
            error_policy: policy,
            ..RecOptions::default()
        };
        let seeds = self.start_set();
        let (rec, changed) = if self.incremental {
            let before = self.engine.generation();
            let rec = self.engine.run_shared(self.binary, &seeds, &opts);
            // The engine leaves its generation untouched on the
            // identical-input fast path *and* on no-op extensions: the
            // disassembly is bit-identical either way, so
            // xrefs/extents/code-constants caches stay valid.
            (rec, self.engine.generation() != before)
        } else {
            (
                Arc::new(recursive_disassemble(self.binary, &seeds, &opts)),
                true,
            )
        };
        if add_call_targets {
            for &f in &rec.functions {
                self.add_start(f, Provenance::CallTarget);
            }
        }
        self.rec = rec;
        if changed {
            self.rec_gen += 1;
        }
    }

    /// The one traced executor step: applies `layer`, then records its
    /// name and a [`LayerTrace`] (wall time, exact start delta with
    /// provenance, decode-cache work) in lockstep. Every pipeline path —
    /// [`crate::Pipeline::apply`], [`crate::run_stack_cached`], the
    /// `Fetch` entry points — funnels through here, so
    /// [`DetectionResult::layers`] can never skip or double-count a
    /// layer the way hand-pushed names could.
    pub fn apply_layer(&mut self, layer: &dyn crate::strategy::Strategy) {
        let before = self.starts.clone();
        let (hits0, misses0) = self.engine.decode_stats();
        let (bytes0, cands0) = self.scan_stats();
        let t = std::time::Instant::now();
        layer.apply(self);
        let wall_nanos = t.elapsed().as_nanos() as u64;
        let (hits1, misses1) = self.engine.decode_stats();
        let (bytes1, cands1) = self.scan_stats();
        let (added, removed) = diff_starts(&before, &self.starts);
        self.layers.push(layer.name());
        self.trace.push(LayerTrace {
            name: layer.name(),
            wall_nanos,
            added,
            removed,
            starts_after: self.starts.len(),
            decode_hits: hits1 - hits0,
            decode_misses: misses1 - misses0,
            bytes_scanned: bytes1 - bytes0,
            candidates_checked: cands1 - cands0,
        });
    }

    /// Takes the report of the most recent [`crate::CallFrameRepair`]
    /// run, if one ran (repair layers deposit it as they execute, so
    /// pipeline drivers need no side channel).
    pub fn take_repair_report(&mut self) -> Option<crate::algorithm1::RepairReport> {
        self.last_repair.take()
    }

    /// `(hits, misses)` of the engine's decode cache (monotone; see
    /// [`RecEngine::decode_stats`]).
    pub fn engine_decode_stats(&self) -> (u64, u64) {
        self.engine.decode_stats()
    }

    /// Freezes the state into a [`DetectionResult`].
    pub fn into_result(self) -> DetectionResult {
        self.into_result_with_engine().0
    }

    /// Freezes the state, also handing back the recursion engine so the
    /// caller can reuse its decode cache for the next run (see
    /// [`DetectionState::with_engine`]).
    pub fn into_result_with_engine(self) -> (DetectionResult, RecEngine) {
        (
            DetectionResult {
                starts: self.starts,
                layers: self.layers,
                trace: self.trace,
            },
            self.engine,
        )
    }
}

/// One side of a layer's start delta (addresses with provenance).
type StartDelta = Vec<(u64, Provenance)>;

/// Ordered symmetric difference of two start maps: `(added, removed)`
/// going from `before` to `after`. An address present in both with a
/// different provenance contributes to both vectors (old provenance
/// removed, new one added), so replaying `removed`-then-`added` over
/// `before` reconstructs `after` exactly.
fn diff_starts(
    before: &BTreeMap<u64, Provenance>,
    after: &BTreeMap<u64, Provenance>,
) -> (StartDelta, StartDelta) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut bi = before.iter().peekable();
    let mut ai = after.iter().peekable();
    loop {
        match (bi.peek(), ai.peek()) {
            (Some(&(&bk, &bv)), Some(&(&ak, &av))) => {
                if bk < ak {
                    removed.push((bk, bv));
                    bi.next();
                } else if ak < bk {
                    added.push((ak, av));
                    ai.next();
                } else {
                    if bv != av {
                        removed.push((bk, bv));
                        added.push((ak, av));
                    }
                    bi.next();
                    ai.next();
                }
            }
            (Some(&(&bk, &bv)), None) => {
                removed.push((bk, bv));
                bi.next();
            }
            (None, Some(&(&ak, &av))) => {
                added.push((ak, av));
                ai.next();
            }
            (None, None) => break,
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn provenance_is_first_writer_wins() {
        let case = synthesize(&SynthConfig::small(3));
        let mut st = DetectionState::new(&case.binary);
        assert!(st.add_start(0x40_1000, Provenance::Fde));
        assert!(!st.add_start(0x40_1000, Provenance::Prologue));
        assert_eq!(st.starts[&0x40_1000], Provenance::Fde);
        assert!(st.remove_start(0x40_1000));
        assert!(!st.remove_start(0x40_1000));
    }

    #[test]
    fn error_funcs_resolved_from_symbols() {
        let case = synthesize(&SynthConfig::small(3));
        let st = DetectionState::new(&case.binary);
        let error = case
            .truth
            .functions
            .iter()
            .find(|f| f.name == "error")
            .unwrap();
        assert!(st.error_funcs.contains(&error.entry()));
        // Stripped binaries lose the knowledge.
        let stripped = case.binary.stripped();
        let st2 = DetectionState::new(&stripped);
        assert!(st2.error_funcs.is_empty());
    }

    #[test]
    fn start_set_cache_tracks_mutation() {
        let case = synthesize(&SynthConfig::small(3));
        let mut st = DetectionState::new(&case.binary);
        st.add_start(0x40_1000, Provenance::Fde);
        let a = st.start_set();
        let b = st.start_set();
        assert!(Arc::ptr_eq(&a, &b), "unchanged starts reuse the cache");
        st.add_start(0x40_2000, Provenance::Fde);
        let c = st.start_set();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(c.contains(&0x40_2000));
        // Failed mutations do not invalidate.
        let before = st.start_set();
        assert!(!st.add_start(0x40_2000, Provenance::Fde));
        assert!(!st.remove_start(0xdead));
        assert!(Arc::ptr_eq(&before, &st.start_set()));
    }

    #[test]
    fn frame_table_is_computed_once() {
        let case = synthesize(&SynthConfig::small(3));
        let mut st = DetectionState::new(&case.binary);
        assert_eq!(st.frame_table_stats(), (0, 0));
        let a = st.frame_table().expect("synth eh_frame parses");
        assert!(!a.has_fde.is_empty());
        assert_eq!(a.has_fde.len(), a.ranges.len());
        let b = st.frame_table().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the table");
        assert_eq!(st.frame_table_stats(), (1, 1));
        // Mutation does not invalidate: the table depends only on the
        // immutable binary.
        st.add_start(0x40_1000, Provenance::Fde);
        st.run_recursion(true, ErrorCallPolicy::SliceZero);
        assert!(Arc::ptr_eq(&a, &st.frame_table().unwrap()));
        assert_eq!(st.frame_table_stats(), (2, 1));
    }

    #[test]
    fn analysis_caches_invalidate_on_recursion() {
        use crate::strategy::{FdeSeeds, Strategy};
        let case = synthesize(&SynthConfig::small(3));
        let mut st = DetectionState::new(&case.binary);
        FdeSeeds.apply(&mut st);
        st.run_recursion(true, ErrorCallPolicy::SliceZero);
        let x1 = st.xrefs();
        let e1 = st.extents();
        assert!(Arc::ptr_eq(&x1, &st.xrefs()));
        assert!(Arc::ptr_eq(&e1, &st.extents()));
        let d1 = st.data_pointers();
        // Same seeds, same options: the engine fast-path leaves the
        // disassembly untouched, so derived caches must survive.
        st.run_recursion(true, ErrorCallPolicy::SliceZero);
        assert!(Arc::ptr_eq(&x1, &st.xrefs()), "no-op recursion keeps xrefs");
        // A genuinely new start forces a new walk and invalidates.
        let gap = (0x40_1000..0x50_0000)
            .step_by(16)
            .find(|a| case.binary.is_code(*a) && !st.starts.contains_key(a))
            .expect("some unexplored code address");
        st.add_start(gap, Provenance::Symbol);
        st.run_recursion(true, ErrorCallPolicy::SliceZero);
        assert!(
            !Arc::ptr_eq(&x1, &st.xrefs()),
            "recursion over new seeds invalidates xrefs"
        );
        assert!(
            Arc::ptr_eq(&d1, &st.data_pointers()),
            "data pointers depend only on the binary"
        );
    }
}
