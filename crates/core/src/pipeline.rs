//! The declarative pipeline subsystem: Figure 5's "detector = stack of
//! strategy layers" view as first-class, serializable data.
//!
//! A [`Pipeline`] is an ordered list of [`LayerSpec`]s — pure data with a
//! stable textual [`Pipeline::id`] that round-trips through
//! [`Pipeline::parse`]. One executor ([`Pipeline::apply`], built on
//! [`DetectionState::apply_layer`]) turns specs into strategy
//! applications, recording a [`crate::LayerTrace`] per layer, so every
//! caller — the FETCH detector, the nine Table III tool models, the
//! bench harnesses, ad-hoc `--pipeline` experiments — shares one
//! sequencing/bookkeeping/instrumentation path instead of hand-rolling
//! its own.
//!
//! The nine tool stacks ([`Pipeline::for_tool`]) are the paper's §VI
//! decomposition as data; the serving layer ([`crate::AnalysisCache`])
//! keys memoized results by `(binary fingerprint, pipeline id)`.

use crate::algorithm1::CallFrameRepair;
use crate::heuristics::{
    AlignmentSplit, ByteWeight, ControlFlowRepair, FlirtSignatures, FunctionMerge,
    LinearScanStarts, NucleusScan, PrologueMatch, TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
use crate::pointer_scan::PointerScan;
use crate::state::{DetectionResult, DetectionState};
use crate::strategy::{EntrySeed, FdeSeeds, SafeRecursion, Strategy, SymbolSeeds};
use fetch_binary::Binary;
use fetch_disasm::{ErrorCallPolicy, RecEngine};
use std::fmt;
use std::str::FromStr;

/// The nine detectors of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tool {
    /// DYNINST 10.x model.
    Dyninst,
    /// BAP model (ByteWeight-style matching).
    Bap,
    /// RADARE2 model.
    Radare2,
    /// NUCLEUS model (compiler-agnostic, linear-sweep based).
    Nucleus,
    /// IDA PRO model.
    IdaPro,
    /// BINARY NINJA model.
    BinaryNinja,
    /// GHIDRA model (uses call frames).
    Ghidra,
    /// ANGR model (uses call frames).
    Angr,
    /// FETCH — the paper's optimal strategy stack.
    Fetch,
}

impl Tool {
    /// All tools in the paper's column order.
    pub const ALL: [Tool; 9] = [
        Tool::Dyninst,
        Tool::Bap,
        Tool::Radare2,
        Tool::Nucleus,
        Tool::IdaPro,
        Tool::BinaryNinja,
        Tool::Ghidra,
        Tool::Angr,
        Tool::Fetch,
    ];

    /// Display name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Dyninst => "DYNINST",
            Tool::Bap => "BAP",
            Tool::Radare2 => "RADARE2",
            Tool::Nucleus => "NUCLEUS",
            Tool::IdaPro => "IDA PRO",
            Tool::BinaryNinja => "BINARY NINJA",
            Tool::Ghidra => "GHIDRA",
            Tool::Angr => "ANGR",
            Tool::Fetch => "FETCH",
        }
    }

    /// Whether the tool consumes `.eh_frame` call frames.
    pub fn uses_call_frames(self) -> bool {
        matches!(self, Tool::Ghidra | Tool::Angr | Tool::Fetch)
    }

    /// Resolves a tool by display name, ignoring case and spaces
    /// (`"ida pro"`, `"IDAPRO"`, `"BinaryNinja"` all name
    /// [`Tool::IdaPro`]/[`Tool::BinaryNinja`]) — the lookup the serving
    /// protocol's `tool` field goes through.
    pub fn from_name(name: &str) -> Option<Tool> {
        let normalize = |s: &str| {
            s.chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let wanted = normalize(name);
        Tool::ALL
            .into_iter()
            .find(|t| normalize(t.name()) == wanted)
    }

    /// [`Pipeline::id`] of [`Pipeline::for_tool`], precomputed so warm
    /// serving paths (`run_tool_on_image_cached`, the `fetch-serve`
    /// daemon) key the cache without allocating. Pinned to
    /// `Pipeline::for_tool(self).id()` by a unit test.
    pub fn pipeline_id(self) -> &'static str {
        match self {
            Tool::Dyninst => "Entry+Rec+Fsig.radare+Fsig.angr",
            Tool::Bap => "Entry+ByteWeight",
            Tool::Radare2 => "Entry+Rec+Fsig.radare",
            Tool::Nucleus => "Entry+Nucleus",
            Tool::IdaPro => "Entry+Rec+Flirt",
            Tool::BinaryNinja => "Entry+Rec+Tcall.ghidra+Fsig.angr+Align",
            Tool::Ghidra => "FDE+Rec+CFR+Thunk+Fsig.ghidra",
            Tool::Angr => "FDE+Rec+Fmerg+Fsig.angr+Scan+Align",
            Tool::Fetch => "FDE+Rec+Xref+TcallFix",
        }
    }
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One serializable strategy-layer specification. The data half of the
/// [`crate::Strategy`] trait: a spec names a layer and its configuration,
/// [`LayerSpec::apply`] instantiates and runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LayerSpec {
    /// `FDE`: seed starts from every FDE `PC Begin` (§IV-B).
    FdeSeeds,
    /// `Sym`: seed starts from surviving symbols.
    SymbolSeeds,
    /// `Entry`: seed the ELF entry point.
    EntrySeed,
    /// `Rec`: safe recursive disassembly with the given error-call
    /// policy (the paper's engine uses [`ErrorCallPolicy::SliceZero`]).
    SafeRecursion(ErrorCallPolicy),
    /// `Xref`: validated function-pointer detection (§IV-E).
    PointerScan,
    /// `TcallFix`: Algorithm 1 call-frame repair (§V-B), paper knobs.
    CallFrameRepair,
    /// `Fsig`: prologue-signature matching in the given tool's style.
    PrologueMatch(ToolStyle),
    /// `Tcall`: heuristic tail-call detection in the given tool's style.
    TailCallHeuristic(ToolStyle),
    /// `Scan`: ANGR's linear gap scan.
    LinearScanStarts,
    /// `CFR`: GHIDRA's control-flow repairing.
    ControlFlowRepair,
    /// `Fmerg`: ANGR's function merging.
    FunctionMerge,
    /// `Thunk`: GHIDRA's thunk-target promotion.
    ThunkHeuristic,
    /// `Align`: ANGR's post-padding alignment splitting.
    AlignmentSplit,
    /// `ByteWeight`: BAP's unvalidated byte-pattern matching.
    ByteWeight,
    /// `Nucleus`: NUCLEUS's linear-sweep + call-target analysis.
    NucleusScan,
    /// `Flirt`: IDA PRO's validated prologue database.
    FlirtSignatures,
}

/// Every `(token, spec)` pair [`Pipeline::parse`] accepts;
/// [`LayerSpec::id`] emits exactly these tokens, so `parse ∘ id` is the
/// identity over specs and `id ∘ parse` over well-formed strings.
pub const KNOWN_LAYERS: &[(&str, LayerSpec)] = &[
    ("FDE", LayerSpec::FdeSeeds),
    ("Sym", LayerSpec::SymbolSeeds),
    ("Entry", LayerSpec::EntrySeed),
    ("Rec", LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero)),
    (
        "RecAR",
        LayerSpec::SafeRecursion(ErrorCallPolicy::AlwaysReturn),
    ),
    (
        "RecNR",
        LayerSpec::SafeRecursion(ErrorCallPolicy::AlwaysNoReturn),
    ),
    ("Xref", LayerSpec::PointerScan),
    ("TcallFix", LayerSpec::CallFrameRepair),
    ("Fsig.ghidra", LayerSpec::PrologueMatch(ToolStyle::Ghidra)),
    ("Fsig.angr", LayerSpec::PrologueMatch(ToolStyle::Angr)),
    ("Fsig.radare", LayerSpec::PrologueMatch(ToolStyle::Radare)),
    (
        "Tcall.ghidra",
        LayerSpec::TailCallHeuristic(ToolStyle::Ghidra),
    ),
    ("Tcall.angr", LayerSpec::TailCallHeuristic(ToolStyle::Angr)),
    (
        "Tcall.radare",
        LayerSpec::TailCallHeuristic(ToolStyle::Radare),
    ),
    ("Scan", LayerSpec::LinearScanStarts),
    ("CFR", LayerSpec::ControlFlowRepair),
    ("Fmerg", LayerSpec::FunctionMerge),
    ("Thunk", LayerSpec::ThunkHeuristic),
    ("Align", LayerSpec::AlignmentSplit),
    ("ByteWeight", LayerSpec::ByteWeight),
    ("Nucleus", LayerSpec::NucleusScan),
    ("Flirt", LayerSpec::FlirtSignatures),
];

impl LayerSpec {
    /// The stable serialization token ([`KNOWN_LAYERS`]): unique per
    /// spec, including configuration (`Fsig.angr` vs `Fsig.ghidra`).
    pub fn id(&self) -> &'static str {
        match self {
            LayerSpec::FdeSeeds => "FDE",
            LayerSpec::SymbolSeeds => "Sym",
            LayerSpec::EntrySeed => "Entry",
            LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero) => "Rec",
            LayerSpec::SafeRecursion(ErrorCallPolicy::AlwaysReturn) => "RecAR",
            LayerSpec::SafeRecursion(ErrorCallPolicy::AlwaysNoReturn) => "RecNR",
            LayerSpec::PointerScan => "Xref",
            LayerSpec::CallFrameRepair => "TcallFix",
            LayerSpec::PrologueMatch(ToolStyle::Ghidra) => "Fsig.ghidra",
            LayerSpec::PrologueMatch(ToolStyle::Angr) => "Fsig.angr",
            LayerSpec::PrologueMatch(ToolStyle::Radare) => "Fsig.radare",
            LayerSpec::TailCallHeuristic(ToolStyle::Ghidra) => "Tcall.ghidra",
            LayerSpec::TailCallHeuristic(ToolStyle::Angr) => "Tcall.angr",
            LayerSpec::TailCallHeuristic(ToolStyle::Radare) => "Tcall.radare",
            LayerSpec::LinearScanStarts => "Scan",
            LayerSpec::ControlFlowRepair => "CFR",
            LayerSpec::FunctionMerge => "Fmerg",
            LayerSpec::ThunkHeuristic => "Thunk",
            LayerSpec::AlignmentSplit => "Align",
            LayerSpec::ByteWeight => "ByteWeight",
            LayerSpec::NucleusScan => "Nucleus",
            LayerSpec::FlirtSignatures => "Flirt",
        }
    }

    /// The display name the layer reports into
    /// [`DetectionResult::layers`] — the paper's label, shared by every
    /// configuration of a layer (`Fsig` for all three styles).
    pub fn name(&self) -> &'static str {
        self.with_strategy(|s| s.name())
    }

    /// Whether the layer's output is invariant under the semantic
    /// bucket equivalence of [`crate::ImageDigest`]: two binaries whose
    /// `.text` buckets differ only in delta-masked `mov reg, imm`
    /// immediates (and agree everywhere else) get identical start
    /// deltas from this layer.
    ///
    /// True for the structural layers: seeding from FDEs/symbols/entry,
    /// safe recursion (decode-driven; masked immediates are never flow
    /// targets), validated pointer/xref analysis (only section-span
    /// constants are candidates, and those are never masked), call-frame
    /// repair, control-flow repair, merging, thunks, and the tail-call
    /// heuristics (all consume decoded flow, not raw immediates).
    ///
    /// False for every layer that reads raw bytes outside the decode
    /// projection — prologue/byte-pattern matching over gap bytes
    /// (`Fsig.*`, `Flirt`, `ByteWeight`), linear gap scanning (`Scan`,
    /// `Nucleus` — sweep phase can differ from the bucket sweep's), and
    /// alignment-padding inspection (`Align`). A pipeline containing
    /// any of these must recompute on *any* text change
    /// ([`Pipeline::delta_safe`] gates the verbatim-reuse tier of
    /// [`crate::run_delta`]).
    pub fn delta_safe(&self) -> bool {
        match self {
            LayerSpec::FdeSeeds
            | LayerSpec::SymbolSeeds
            | LayerSpec::EntrySeed
            | LayerSpec::SafeRecursion(_)
            | LayerSpec::PointerScan
            | LayerSpec::CallFrameRepair
            | LayerSpec::TailCallHeuristic(_)
            | LayerSpec::ControlFlowRepair
            | LayerSpec::FunctionMerge
            | LayerSpec::ThunkHeuristic => true,
            LayerSpec::PrologueMatch(_)
            | LayerSpec::LinearScanStarts
            | LayerSpec::AlignmentSplit
            | LayerSpec::ByteWeight
            | LayerSpec::NucleusScan
            | LayerSpec::FlirtSignatures => false,
        }
    }

    /// Applies the specified layer to `state` through the traced
    /// executor step ([`DetectionState::apply_layer`]).
    pub fn apply(&self, state: &mut DetectionState<'_>) {
        self.with_strategy(|s| state.apply_layer(s));
    }

    /// Instantiates the strategy this spec describes and hands it to
    /// `f` (strategies are zero-/small-sized, so this is allocation-free).
    fn with_strategy<R>(&self, f: impl FnOnce(&dyn Strategy) -> R) -> R {
        match *self {
            LayerSpec::FdeSeeds => f(&FdeSeeds),
            LayerSpec::SymbolSeeds => f(&SymbolSeeds),
            LayerSpec::EntrySeed => f(&EntrySeed),
            LayerSpec::SafeRecursion(error_policy) => f(&SafeRecursion { error_policy }),
            LayerSpec::PointerScan => f(&PointerScan),
            LayerSpec::CallFrameRepair => f(&CallFrameRepair::default()),
            LayerSpec::PrologueMatch(style) => f(&PrologueMatch { style }),
            LayerSpec::TailCallHeuristic(style) => f(&TailCallHeuristic { style }),
            LayerSpec::LinearScanStarts => f(&LinearScanStarts),
            LayerSpec::ControlFlowRepair => f(&ControlFlowRepair),
            LayerSpec::FunctionMerge => f(&FunctionMerge),
            LayerSpec::ThunkHeuristic => f(&ThunkHeuristic),
            LayerSpec::AlignmentSplit => f(&AlignmentSplit),
            LayerSpec::ByteWeight => f(&ByteWeight),
            LayerSpec::NucleusScan => f(&NucleusScan),
            LayerSpec::FlirtSignatures => f(&FlirtSignatures),
        }
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A malformed pipeline specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineParseError {
    /// The spec contained no layer tokens (empty or whitespace-only).
    Empty,
    /// A token named no known layer.
    UnknownLayer(String),
    /// A layer appeared more than once; the value is the second
    /// occurrence's token as written. Running a layer twice is either a
    /// no-op or a typo, and accepting it would give one stack two cache
    /// ids — so the strict front door rejects it ([`Pipeline::new`]
    /// stays permissive for programmatic experiments).
    DuplicateLayer(String),
}

impl fmt::Display for PipelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineParseError::Empty => write!(
                f,
                "empty pipeline: no layer tokens (expected e.g. FDE+Rec+Xref)"
            ),
            PipelineParseError::UnknownLayer(token) => {
                write!(f, "unknown layer {token:?} (known layers: ")?;
                for (i, (name, _)) in KNOWN_LAYERS.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(name)?;
                }
                f.write_str(")")
            }
            PipelineParseError::DuplicateLayer(token) => {
                write!(
                    f,
                    "duplicate layer {token:?}: each layer may appear at most once"
                )
            }
        }
    }
}

impl std::error::Error for PipelineParseError {}

/// An ordered stack of [`LayerSpec`]s — a whole detector as declarative
/// data, with a stable textual identity and one instrumented executor.
///
/// # Examples
///
/// ```
/// use fetch_core::{LayerSpec, Pipeline};
/// use fetch_synth::{synthesize, SynthConfig};
///
/// let case = synthesize(&SynthConfig::small(7));
/// let pipeline = Pipeline::parse("FDE+Rec+Xref").unwrap();
/// assert_eq!(pipeline.id(), "FDE+Rec+Xref");
/// let result = pipeline.run(&case.binary);
/// assert_eq!(result.layers, ["FDE", "Rec", "Xref"]);
/// assert_eq!(result.trace.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pipeline {
    specs: Vec<LayerSpec>,
}

impl Pipeline {
    /// A pipeline running `specs` in order.
    pub fn new(specs: Vec<LayerSpec>) -> Pipeline {
        Pipeline { specs }
    }

    /// The ordered layer specifications.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the pipeline has no layers.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Whether every layer is [`LayerSpec::delta_safe`] — the gate for
    /// the verbatim-reuse tier of delta re-analysis: only for such
    /// pipelines may [`crate::run_delta`] return the previous result
    /// without re-running anything when the semantic text digests
    /// match.
    pub fn delta_safe(&self) -> bool {
        self.specs.iter().all(LayerSpec::delta_safe)
    }

    /// The stable textual identity: layer ids joined with `+`
    /// (`"FDE+Rec+Xref+TcallFix"`). Round-trips through
    /// [`Pipeline::parse`]; the serving cache ([`crate::AnalysisCache`])
    /// keys results by it.
    pub fn id(&self) -> String {
        let mut id = String::new();
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                id.push('+');
            }
            id.push_str(spec.id());
        }
        id
    }

    /// Parses a `+`-separated layer list (`"FDE+Rec+Xref"`), accepting
    /// the tokens of [`KNOWN_LAYERS`] case-insensitively and ignoring
    /// whitespace around tokens (empty tokens, as in `"FDE++Rec"`, are
    /// skipped).
    ///
    /// # Errors
    ///
    /// [`PipelineParseError::UnknownLayer`] (naming the bad token and
    /// listing every known one), [`PipelineParseError::DuplicateLayer`]
    /// (naming the repeated token as written), or
    /// [`PipelineParseError::Empty`] for empty/whitespace-only specs.
    pub fn parse(spec: &str) -> Result<Pipeline, PipelineParseError> {
        let mut specs = Vec::new();
        for token in spec.split('+') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            match KNOWN_LAYERS
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(token))
            {
                Some((_, layer)) if specs.contains(layer) => {
                    return Err(PipelineParseError::DuplicateLayer(token.to_string()))
                }
                Some((_, layer)) => specs.push(*layer),
                None => return Err(PipelineParseError::UnknownLayer(token.to_string())),
            }
        }
        if specs.is_empty() {
            return Err(PipelineParseError::Empty);
        }
        Ok(Pipeline::new(specs))
    }

    /// The paper's optimal FETCH stack: `FDE+Rec+Xref+TcallFix`.
    pub fn fetch() -> Pipeline {
        Pipeline::new(vec![
            LayerSpec::FdeSeeds,
            LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero),
            LayerSpec::PointerScan,
            LayerSpec::CallFrameRepair,
        ])
    }

    /// The documented strategy stack of one of the nine Table III tools
    /// (see the table in the `fetch-tools` crate docs). This is the
    /// single source of truth the tool models run on.
    pub fn for_tool(tool: Tool) -> Pipeline {
        let rec = LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero);
        let specs = match tool {
            // Entry + recursion + a moderate prologue database. High
            // false negatives (no FDEs, pattern-limited).
            Tool::Dyninst => vec![
                LayerSpec::EntrySeed,
                rec,
                LayerSpec::PrologueMatch(ToolStyle::Radare),
                LayerSpec::PrologueMatch(ToolStyle::Angr),
            ],
            Tool::Bap => vec![LayerSpec::EntrySeed, LayerSpec::ByteWeight],
            // Conservative: lowest false positives among the non-FDE
            // tools, highest misses.
            Tool::Radare2 => vec![
                LayerSpec::EntrySeed,
                rec,
                LayerSpec::PrologueMatch(ToolStyle::Radare),
            ],
            Tool::Nucleus => vec![LayerSpec::EntrySeed, LayerSpec::NucleusScan],
            Tool::IdaPro => vec![LayerSpec::EntrySeed, rec, LayerSpec::FlirtSignatures],
            // Aggressive recursion — low misses, many false positives.
            Tool::BinaryNinja => vec![
                LayerSpec::EntrySeed,
                rec,
                LayerSpec::TailCallHeuristic(ToolStyle::Ghidra),
                LayerSpec::PrologueMatch(ToolStyle::Angr),
                LayerSpec::AlignmentSplit,
            ],
            // Default GHIDRA pipeline (§IV-C); tail-call detection is
            // NOT enabled by default.
            Tool::Ghidra => vec![
                LayerSpec::FdeSeeds,
                rec,
                LayerSpec::ControlFlowRepair,
                LayerSpec::ThunkHeuristic,
                LayerSpec::PrologueMatch(ToolStyle::Ghidra),
            ],
            // Default ANGR pipeline (§IV-C); tail-call detection is NOT
            // enabled by default.
            Tool::Angr => vec![
                LayerSpec::FdeSeeds,
                rec,
                LayerSpec::FunctionMerge,
                LayerSpec::PrologueMatch(ToolStyle::Angr),
                LayerSpec::LinearScanStarts,
                LayerSpec::AlignmentSplit,
            ],
            Tool::Fetch => return Pipeline::fetch(),
        };
        Pipeline::new(specs)
    }

    /// Applies every layer to `state` in order through the traced
    /// executor — the one sequencing path all pipeline entry points
    /// share. Layer names and [`crate::LayerTrace`]s land in the state
    /// as each layer runs.
    pub fn apply(&self, state: &mut DetectionState<'_>) {
        for spec in &self.specs {
            spec.apply(state);
        }
    }

    /// Runs the pipeline over `binary` with a fresh engine.
    pub fn run(&self, binary: &Binary) -> DetectionResult {
        self.run_with_engine(binary, &mut RecEngine::new())
    }

    /// Runs the pipeline through a caller-owned [`RecEngine`], so the
    /// decode cache survives across stacks and binaries (see
    /// [`crate::run_stack_cached`] for the soundness argument).
    pub fn run_with_engine(&self, binary: &Binary, engine: &mut RecEngine) -> DetectionResult {
        let mut state = DetectionState::with_engine(binary, std::mem::take(engine));
        self.apply(&mut state);
        let (result, used) = state.into_result_with_engine();
        *engine = used;
        result
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

impl FromStr for Pipeline {
    type Err = PipelineParseError;

    fn from_str(s: &str) -> Result<Pipeline, PipelineParseError> {
        Pipeline::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::run_stack;
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn delta_safety_follows_the_whitelist() {
        assert!(Pipeline::fetch().delta_safe());
        assert!(
            Pipeline::parse("FDE+Sym+Entry+Rec+Xref+TcallFix+CFR+Fmerg+Thunk")
                .unwrap()
                .delta_safe()
        );
        // Any byte-pattern / gap-scanning layer poisons the pipeline.
        for unsafe_id in [
            "Fsig.ghidra",
            "Fsig.angr",
            "Fsig.radare",
            "Scan",
            "Align",
            "ByteWeight",
            "Nucleus",
            "Flirt",
        ] {
            let p = Pipeline::parse(&format!("FDE+Rec+{unsafe_id}")).unwrap();
            assert!(!p.delta_safe(), "{unsafe_id} should not be delta-safe");
        }
        assert!(Pipeline::new(vec![]).delta_safe());
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for (token, spec) in KNOWN_LAYERS {
            assert_eq!(spec.id(), *token, "table token drifted from id()");
            let parsed = Pipeline::parse(token).unwrap();
            assert_eq!(parsed.specs(), &[*spec]);
        }
        let all: Vec<LayerSpec> = KNOWN_LAYERS.iter().map(|(_, s)| *s).collect();
        let pipeline = Pipeline::new(all);
        assert_eq!(Pipeline::parse(&pipeline.id()).unwrap(), pipeline);
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        let p = Pipeline::parse(" fde + rec + xref ").unwrap();
        assert_eq!(p.id(), "FDE+Rec+Xref");
        assert_eq!(p, "FDE+REC+XREF".parse().unwrap());
    }

    #[test]
    fn parse_rejects_unknown_and_empty() {
        let err = Pipeline::parse("FDE+Wat").unwrap_err();
        assert_eq!(err, PipelineParseError::UnknownLayer("Wat".into()));
        let msg = err.to_string();
        assert!(msg.contains("\"Wat\"") && msg.contains("TcallFix"), "{msg}");
        assert_eq!(
            Pipeline::parse(" + ").unwrap_err(),
            PipelineParseError::Empty
        );
        assert_eq!(Pipeline::parse("").unwrap_err(), PipelineParseError::Empty);
        assert_eq!(
            Pipeline::parse("  \t ").unwrap_err(),
            PipelineParseError::Empty,
            "whitespace-only spec is empty"
        );
    }

    #[test]
    fn parse_rejects_duplicate_layers_naming_the_token() {
        // The second occurrence is named as written, case preserved.
        assert_eq!(
            Pipeline::parse("FDE+Rec+fde").unwrap_err(),
            PipelineParseError::DuplicateLayer("fde".into())
        );
        let msg = Pipeline::parse("Rec+Xref+Rec").unwrap_err().to_string();
        assert!(msg.contains("duplicate layer \"Rec\""), "{msg}");
        // Different configurations of one layer family are NOT
        // duplicates (Dyninst stacks two Fsig styles)...
        assert!(Pipeline::parse("Fsig.radare+Fsig.angr").is_ok());
        // ...but the same configuration twice is.
        assert_eq!(
            Pipeline::parse("Fsig.angr+Fsig.angr").unwrap_err(),
            PipelineParseError::DuplicateLayer("Fsig.angr".into())
        );
        // Pipeline::new stays permissive for programmatic experiments.
        let dup = Pipeline::new(vec![LayerSpec::FdeSeeds, LayerSpec::FdeSeeds]);
        assert_eq!(dup.len(), 2);
    }

    #[test]
    fn tool_names_and_static_pipeline_ids_round_trip() {
        for tool in Tool::ALL {
            assert_eq!(Tool::from_name(tool.name()), Some(tool));
            assert_eq!(
                tool.pipeline_id(),
                Pipeline::for_tool(tool).id(),
                "{tool}: static pipeline id drifted from the declarative one"
            );
            assert_eq!(
                Pipeline::parse(tool.pipeline_id()).unwrap(),
                Pipeline::for_tool(tool),
                "{tool}: pipeline id must parse back to the same stack"
            );
        }
        assert_eq!(Tool::from_name("ida pro"), Some(Tool::IdaPro));
        assert_eq!(Tool::from_name("IDAPRO"), Some(Tool::IdaPro));
        assert_eq!(Tool::from_name("BinaryNinja"), Some(Tool::BinaryNinja));
        assert_eq!(Tool::from_name("fetch"), Some(Tool::Fetch));
        assert_eq!(Tool::from_name("objdump"), None);
    }

    #[test]
    fn spec_names_match_strategy_names() {
        // The executor records Strategy::name(); the spec's name()
        // accessor must agree so declarative callers can predict labels.
        for (_, spec) in KNOWN_LAYERS {
            let via_strategy = spec.with_strategy(|s| s.name());
            assert_eq!(spec.name(), via_strategy);
        }
    }

    #[test]
    fn pipeline_run_matches_ad_hoc_stack() {
        let case = synthesize(&SynthConfig::small(11));
        let declarative = Pipeline::parse("FDE+Rec").unwrap().run(&case.binary);
        let ad_hoc = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        assert_eq!(declarative, ad_hoc);
        assert_eq!(declarative.layers, ["FDE", "Rec"]);
    }

    #[test]
    fn trace_replay_reconstructs_every_prefix() {
        let case = synthesize(&SynthConfig::small(12));
        let pipeline = Pipeline::fetch();
        let full = pipeline.run(&case.binary);
        assert_eq!(full.trace.len(), 4);
        for k in 0..=pipeline.len() {
            let replayed = full.starts_after_layer(k);
            let direct = if k == 0 {
                Default::default()
            } else {
                Pipeline::new(pipeline.specs()[..k].to_vec())
                    .run(&case.binary)
                    .starts
            };
            assert_eq!(replayed, direct, "prefix {k} replay diverged");
        }
        assert_eq!(full.starts_after_layer(pipeline.len()), full.starts);
    }

    #[test]
    fn for_tool_covers_all_nine_and_fetch_matches() {
        for tool in Tool::ALL {
            let p = Pipeline::for_tool(tool);
            assert!(!p.is_empty(), "{tool} has an empty stack");
            assert_eq!(
                p.specs().first().copied().unwrap() == LayerSpec::FdeSeeds,
                tool.uses_call_frames(),
                "{tool}: FDE seeding must match uses_call_frames()"
            );
        }
        assert_eq!(Pipeline::for_tool(Tool::Fetch), Pipeline::fetch());
        assert_eq!(Pipeline::fetch().id(), "FDE+Rec+Xref+TcallFix");
    }
}
