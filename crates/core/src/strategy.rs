//! The composable strategy framework: Figure 5 is a fold over stacks of
//! these layers.

use crate::state::{DetectionResult, DetectionState, Provenance};
use fetch_binary::Binary;
use fetch_disasm::{ErrorCallPolicy, RecEngine};

/// One detection layer. Layers mutate the [`DetectionState`]; stacks of
/// layers reproduce each tool's strategy combination.
pub trait Strategy {
    /// Short display name (matches the paper's labels: `FDE`, `Rec`,
    /// `Fsig`, `Tcall`, `Scan`, `CFR`, `Fmerg`, `Xref`, …).
    fn name(&self) -> &'static str;

    /// Applies the layer.
    fn apply(&self, state: &mut DetectionState<'_>);
}

/// Runs a stack of layers over a binary.
pub fn run_stack(binary: &Binary, layers: &[&dyn Strategy]) -> DetectionResult {
    let mut engine = RecEngine::new();
    run_stack_cached(binary, layers, &mut engine)
}

/// Runs a stack of layers through a caller-owned [`RecEngine`], so the
/// decode cache survives across stacks run over the same binary (the
/// cross-tool sharing the batch driver builds on). Observationally
/// identical to [`run_stack`]: the engine's binary fingerprint and
/// option/seed checks guarantee stale state is never consulted.
pub fn run_stack_cached(
    binary: &Binary,
    layers: &[&dyn Strategy],
    engine: &mut RecEngine,
) -> DetectionResult {
    let mut state = DetectionState::with_engine(binary, std::mem::take(engine));
    for layer in layers {
        state.apply_layer(*layer);
    }
    let (result, used) = state.into_result_with_engine();
    *engine = used;
    result
}

/// `FDE`: seed starts from every FDE `PC Begin` (§IV-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct FdeSeeds;

impl Strategy for FdeSeeds {
    fn name(&self) -> &'static str {
        "FDE"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        if let Some(eh) = state.eh_frame() {
            for pc in eh.pc_begins() {
                if state.binary.is_code(pc) {
                    state.add_start(pc, Provenance::Fde);
                }
            }
        }
    }
}

/// `Sym`: seed starts from surviving symbols (the hybrid tools' first
/// step; a no-op on stripped binaries).
#[derive(Debug, Clone, Copy, Default)]
pub struct SymbolSeeds;

impl Strategy for SymbolSeeds {
    fn name(&self) -> &'static str {
        "Sym"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let addrs: Vec<u64> = state
            .binary
            .symbols
            .iter()
            .map(|s| s.addr)
            .filter(|a| state.binary.is_code(*a))
            .collect();
        for a in addrs {
            state.add_start(a, Provenance::Symbol);
        }
    }
}

/// `Rec`: safe recursive disassembly from the current starts, promoting
/// direct-call targets to function starts (§IV-C).
#[derive(Debug, Clone, Copy)]
pub struct SafeRecursion {
    /// Treatment of `error`-style call sites (the paper's safe engine
    /// uses [`ErrorCallPolicy::SliceZero`]).
    pub error_policy: ErrorCallPolicy,
}

impl Default for SafeRecursion {
    fn default() -> Self {
        SafeRecursion {
            error_policy: ErrorCallPolicy::SliceZero,
        }
    }
}

impl Strategy for SafeRecursion {
    fn name(&self) -> &'static str {
        "Rec"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        state.run_recursion(true, self.error_policy);
    }
}

/// `Entry`: seed the program entry point (conventional tools always know
/// it from the ELF header).
#[derive(Debug, Clone, Copy, Default)]
pub struct EntrySeed;

impl Strategy for EntrySeed {
    fn name(&self) -> &'static str {
        "Entry"
    }

    fn apply(&self, state: &mut DetectionState<'_>) {
        let entry = state.binary.entry;
        if state.binary.is_code(entry) {
            state.add_start(entry, Provenance::Symbol);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn fde_plus_rec_stack_runs() {
        let case = synthesize(&SynthConfig::small(8));
        let result = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        assert_eq!(result.layers, vec!["FDE", "Rec"]);
        // FDE starts cover at least every compiled function entry.
        let fde_count = result
            .starts
            .values()
            .filter(|p| **p == Provenance::Fde)
            .count();
        assert!(fde_count > 10);
    }

    #[test]
    fn symbol_seeds_are_noop_when_stripped() {
        let case = synthesize(&SynthConfig::small(8));
        let stripped = case.binary.stripped();
        let r = run_stack(&stripped, &[&SymbolSeeds]);
        assert!(r.is_empty());
    }

    #[test]
    fn recursion_covers_fde_only_misses() {
        // Assembly functions without FDEs that are directly called must
        // be found by Rec (the §IV-C finding).
        let mut cfg = SynthConfig::small(15);
        cfg.n_funcs = 80;
        cfg.rates.asm_funcs = 10;
        cfg.rates.asm_fde = 0.0; // no assembly function carries an FDE
        let case = synthesize(&cfg);
        let fde_only = run_stack(&case.binary, &[&FdeSeeds]);
        let with_rec = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        let called_asm: Vec<u64> = case
            .truth
            .functions
            .iter()
            .filter(|f| {
                f.kind == fetch_binary::FuncKind::Assembly
                    && matches!(f.reach, fetch_binary::Reach::Called)
            })
            .map(|f| f.entry())
            .collect();
        assert!(!called_asm.is_empty());
        for a in &called_asm {
            assert!(!fde_only.starts.contains_key(a), "no FDE for asm fn {a:#x}");
            assert!(
                with_rec.starts.contains_key(a),
                "Rec finds called asm fn {a:#x}"
            );
        }
    }
}
