//! # fetch-core
//!
//! The FETCH function-start detector and the composable strategy
//! framework of the reproduction ("Towards Optimal Use of Exception
//! Handling Information for Function Detection", DSN 2021).
//!
//! ## Layers
//!
//! *Safe* (correctness-preserving):
//! [`FdeSeeds`] (`FDE`), [`SymbolSeeds`], [`SafeRecursion`] (`Rec`),
//! [`PointerScan`] (`Xref`, §IV-E), [`CallFrameRepair`] (`TcallFix`,
//! Algorithm 1 of §V-B).
//!
//! *Unsafe* (tool heuristics, modeled for the Figure 5 study):
//! [`PrologueMatch`] (`Fsig`), [`TailCallHeuristic`] (`Tcall`),
//! [`LinearScanStarts`] (`Scan`), [`ControlFlowRepair`] (`CFR`),
//! [`FunctionMerge`] (`Fmerg`), [`ThunkHeuristic`], [`AlignmentSplit`].
//!
//! The [`Fetch`] type wires the optimal stack together.
//!
//! ## The shared substrate (what layers run *on*)
//!
//! Layers never re-disassemble the binary themselves. A
//! [`DetectionState`] owns three pieces of machinery that make stacking
//! layers cheap:
//!
//! * **Dense instruction store** — decoded instructions live in a flat
//!   pool indexed by a byte-offset table over `.text`
//!   ([`fetch_disasm::Disassembly`]): O(1) lookup and visited checks,
//!   bounded predecessor scans, cache-friendly iteration.
//! * **Incremental recursion** — [`DetectionState::run_recursion`] goes
//!   through a persistent [`fetch_disasm::RecEngine`] that caches every
//!   decode (text bytes never change) and reuses the previous walk:
//!   a layer that adds a few starts re-walks only from those seeds, an
//!   unchanged seed set returns the cached result, and non-return
//!   fixpoint rounds re-walk only when a decoded call site's behavior
//!   actually changed.
//! * **Analysis caches** — [`DetectionState::xrefs`],
//!   [`DetectionState::extents`], [`DetectionState::data_pointers`],
//!   [`DetectionState::code_constants`] and [`DetectionState::start_set`]
//!   are memoized under generation counters advanced by
//!   `add_start`/`remove_start`/`run_recursion`, so `TcallFix`, `Xref`
//!   and the unsafe heuristics stop recomputing each other's inputs.
//!
//! The incremental path is observationally identical to from-scratch
//! re-runs ([`DetectionState::new_reference`]); a property test over
//! random corpora and random layer stacks enforces the equivalence.
//!
//! The engine can also outlive a single state: [`run_stack_cached`] and
//! [`Fetch::detect_with_engine`] thread a caller-owned
//! [`fetch_disasm::RecEngine`] through the run, so several stacks (e.g.
//! all nine tool models of `fetch-tools`) analysing the same binary share
//! one decode cache. A second property test proves sharing an engine
//! across different stacks changes no result.
//!
//! # Examples
//!
//! ```
//! use fetch_core::{run_stack, FdeSeeds, SafeRecursion, Fetch};
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(5));
//! // Study-style: a hand-assembled stack...
//! let fde_rec = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
//! // ...or the full FETCH pipeline.
//! let full = Fetch::new().detect(&case.binary);
//! assert!(full.len() <= fde_rec.len() + 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod fetch;
mod heuristics;
mod pointer_scan;
mod state;
mod strategy;

pub use algorithm1::{CallFrameRepair, RepairReport};
pub use fetch::Fetch;
pub use heuristics::{
    code_gaps, AlignmentSplit, ControlFlowRepair, FunctionMerge, LinearScanStarts, PrologueMatch,
    TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
pub use pointer_scan::{collect_data_pointers, validate_candidate, PointerScan, ValidationError};
pub use state::{DetectionResult, DetectionState, FrameTable, Provenance};
pub use strategy::{
    run_stack, run_stack_cached, EntrySeed, FdeSeeds, SafeRecursion, Strategy, SymbolSeeds,
};
