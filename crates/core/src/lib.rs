//! # fetch-core
//!
//! The FETCH function-start detector and the composable strategy
//! framework of the reproduction ("Towards Optimal Use of Exception
//! Handling Information for Function Detection", DSN 2021).
//!
//! ## Layers
//!
//! *Safe* (correctness-preserving):
//! [`FdeSeeds`] (`FDE`), [`SymbolSeeds`], [`SafeRecursion`] (`Rec`),
//! [`PointerScan`] (`Xref`, §IV-E), [`CallFrameRepair`] (`TcallFix`,
//! Algorithm 1 of §V-B).
//!
//! *Unsafe* (tool heuristics, modeled for the Figure 5 study):
//! [`PrologueMatch`] (`Fsig`), [`TailCallHeuristic`] (`Tcall`),
//! [`LinearScanStarts`] (`Scan`), [`ControlFlowRepair`] (`CFR`),
//! [`FunctionMerge`] (`Fmerg`), [`ThunkHeuristic`], [`AlignmentSplit`].
//!
//! The [`Fetch`] type wires the optimal stack together.
//!
//! ## The shared substrate (what layers run *on*)
//!
//! Layers never re-disassemble the binary themselves. A
//! [`DetectionState`] owns three pieces of machinery that make stacking
//! layers cheap:
//!
//! * **Dense instruction store** — decoded instructions live in a flat
//!   pool indexed by a byte-offset table over `.text`
//!   ([`fetch_disasm::Disassembly`]): O(1) lookup and visited checks,
//!   bounded predecessor scans, cache-friendly iteration.
//! * **Incremental recursion** — [`DetectionState::run_recursion`] goes
//!   through a persistent [`fetch_disasm::RecEngine`] that caches every
//!   decode (text bytes never change) and reuses the previous walk:
//!   a layer that adds a few starts re-walks only from those seeds, an
//!   unchanged seed set returns the cached result, and non-return
//!   fixpoint rounds re-walk only when a decoded call site's behavior
//!   actually changed.
//! * **Analysis caches** — [`DetectionState::xrefs`],
//!   [`DetectionState::extents`], [`DetectionState::data_pointers`],
//!   [`DetectionState::code_constants`] and [`DetectionState::start_set`]
//!   are memoized under generation counters advanced by
//!   `add_start`/`remove_start`/`run_recursion`, so `TcallFix`, `Xref`
//!   and the unsafe heuristics stop recomputing each other's inputs.
//!
//! The incremental path is observationally identical to from-scratch
//! re-runs ([`DetectionState::new_reference`]); a property test over
//! random corpora and random layer stacks enforces the equivalence.
//!
//! The engine can also outlive a single state: [`run_stack_cached`] and
//! [`Fetch::detect_with_engine`] thread a caller-owned
//! [`fetch_disasm::RecEngine`] through the run, so several stacks (e.g.
//! all nine tool models of `fetch-tools`) analysing the same binary share
//! one decode cache. A second property test proves sharing an engine
//! across different stacks changes no result.
//!
//! ## Intra-binary parallelism: shard → merge → identical result
//!
//! The layer pipeline for one binary is inherently sequential (each
//! layer consumes the previous layer's starts), so the remaining
//! parallelism *inside* one analysis lives in the recursive walk:
//! [`fetch_disasm::RecEngine::set_intra_jobs`] splits a walk's seed
//! set across worker shards. Each shard runs a *scout* pass that
//! decodes its seeds' reachable code into a private fork of the shared
//! decode cache; the engine then absorbs the forks and *replays* the
//! walk serially over now-cached instructions. Replay re-establishes
//! the serial walk's exact visit order and tie-breaks, so the decoded
//! set, jump-table resolutions, and every downstream verdict are
//! byte-identical at every width — shard width is an execution knob,
//! never an analysis input. A property test
//! (`proptest_intra`) asserts sharded ≡ serial over random corpora,
//! and the CI determinism job diffs full harness outputs at
//! `--intra-jobs 1` vs `N`.
//!
//! Intra-binary sharding composes with the two outer levels of
//! parallelism — the batch driver's per-binary workers
//! (`BatchDriver --jobs` in `fetch-bench`) and the serving daemon's
//! worker pool (`fetch-serve --jobs`) — because each worker owns its
//! engine: widths multiply, determinism guarantees stack. On corpora
//! of small binaries prefer outer parallelism (per-binary workers
//! amortize better than per-walk shards); reach for `intra_jobs > 1`
//! when single large binaries dominate latency.
//!
//! ## Pipelines: spec → executor → trace → cache
//!
//! Detectors are *data*, not code paths. The pipeline subsystem has four
//! stages:
//!
//! 1. **Spec** — a [`Pipeline`] is an ordered `Vec<`[`LayerSpec`]`>`
//!    with a stable textual identity ([`Pipeline::id`], e.g.
//!    `"FDE+Rec+Xref+TcallFix"`) that round-trips through
//!    [`Pipeline::parse`]. [`Pipeline::fetch`] is the paper's optimal
//!    stack; [`Pipeline::for_tool`] holds all nine Table III tool
//!    stacks as declarative data.
//! 2. **Executor** — [`Pipeline::apply`] instantiates each spec's
//!    strategy and runs it through the one traced step,
//!    [`DetectionState::apply_layer`]. Every entry point (`Fetch`
//!    detectors, tool models, ad-hoc [`run_stack`] slices) funnels
//!    through that step, so layer names in
//!    [`DetectionResult::layers`] can never drift from what ran.
//! 3. **Trace** — the executor records a [`LayerTrace`] per layer (wall
//!    time, exact start delta with provenance, decode-cache work) into
//!    [`DetectionResult::trace`]. Traces replay:
//!    [`DetectionResult::starts_after_layer`] reconstructs every prefix
//!    stack's result from one run — the ablation harnesses consume that
//!    instead of re-running shared prefixes.
//! 4. **Cache** — [`AnalysisCache`] memoizes `Arc<DetectionResult>`
//!    under `(binary content fingerprint, pipeline id)`; re-analyzing a
//!    seen binary under a seen pipeline is a lookup
//!    ([`Fetch::detect_image_cached`], [`Fetch::detect_cached`]).
//!
//! ## Serving: spec → executor → trace → bounded cache → persistent store → daemon
//!
//! The pipeline stages above compose into a long-lived serving path —
//! the deployment mode the paper motivates for downstream binary-analysis
//! consumers, implemented by the `fetch-serve` crate:
//!
//! * **Bounded cache.** A daemon's cache cannot grow with its traffic:
//!   [`AnalysisCache::with_capacity`] bounds residency by entry count
//!   and/or approximate bytes ([`CacheCapacity`],
//!   [`DetectionResult::approx_bytes`]) with least-recently-used
//!   eviction. Eviction never changes an answer — a re-query recomputes
//!   the identical result — and [`CacheStats`] reports evictions and the
//!   live footprint alongside hits/misses.
//! * **Persistent store.** [`serialize_result`] /
//!   [`deserialize_result`] encode a [`DetectionResult`] *with its full
//!   [`LayerTrace`] telemetry* into a versioned, checksummed,
//!   deterministic byte format, keyed externally by
//!   `(content fingerprint, pipeline id)` — the same stable identities
//!   the cache uses — so a restarted daemon answers warm from disk, and
//!   a truncated or bit-flipped store file is rejected, never misread.
//! * **Daemon.** `fetch-serve` accepts work over a local socket and a
//!   directory queue, answers bounded-cache-first, store-second,
//!   cold-compute-last, and streams each request's per-layer trace to
//!   telemetry subscribers.
//!
//! The full serving round trip, in process:
//!
//! ```
//! use fetch_core::{
//!     content_fingerprint, deserialize_result, serialize_result, AnalysisCache,
//!     CacheCapacity, Pipeline,
//! };
//! use fetch_synth::{synthesize, SynthConfig};
//! use std::sync::Arc;
//!
//! let case = synthesize(&SynthConfig::small(6));
//! let pipeline = Pipeline::fetch();
//! let fp = content_fingerprint(&case.binary);
//!
//! // A bounded serving cache: at most 128 entries stay resident.
//! let cache = AnalysisCache::with_capacity(CacheCapacity::entries(128));
//! let cold = cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
//!
//! // Persist across a "restart": serialize, then restore into a fresh
//! // cache — the answer (and its trace) survives byte-identically.
//! let bytes = serialize_result(&cold).unwrap();
//! let restarted = AnalysisCache::with_capacity(CacheCapacity::entries(128));
//! let warm = restarted.insert(fp, &pipeline.id(), Arc::new(deserialize_result(&bytes).unwrap()));
//! assert_eq!(*warm, *cold);
//! assert_eq!(restarted.lookup(fp, &pipeline.id()).as_deref(), Some(&*cold));
//! ```
//!
//! ## Observability: registry-backed cache counters
//!
//! [`CacheStats`] counters (hits/misses/evictions/coalesced) are
//! plain shared atomics, so a serving process can export them without
//! mirroring: [`AnalysisCache::register_metrics`] hands the *same*
//! atomics to a `fetch-obs` [`fetch_obs::Registry`], and any later
//! exposition reads what [`AnalysisCache::stats`] reads — the two can
//! never disagree. (Naming note: `fetch-obs` is runtime telemetry;
//! the `fetch-metrics` crate is the paper's detection-accuracy
//! metrics. Different axes, different crates.)
//!
//! ```
//! use fetch_core::{AnalysisCache, CacheCapacity, Pipeline};
//! use fetch_obs::{MetricValue, Registry};
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let cache = AnalysisCache::with_capacity(CacheCapacity::entries(8));
//! let registry = Registry::new();
//! cache.register_metrics(&registry, "fetch_cache");
//!
//! let case = synthesize(&SynthConfig::small(3));
//! let pipeline = Pipeline::fetch();
//! let fp = fetch_core::content_fingerprint(&case.binary);
//! cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
//! cache.get_or_compute(fp, &pipeline.id(), || unreachable!());
//!
//! // The registry sees the hit the cache's own stats saw.
//! let snap = registry.snapshot();
//! let hits = snap
//!     .entries
//!     .iter()
//!     .find_map(|(name, v)| match (name.as_str(), v) {
//!         ("fetch_cache_hits_total", MetricValue::Counter(n)) => Some(*n),
//!         _ => None,
//!     })
//!     .unwrap();
//! assert_eq!(hits, cache.stats().hits);
//! assert_eq!(hits, 1);
//! ```
//!
//! ## Versioned delta: digest → diff → replay → fallback
//!
//! Serving CI/CD workloads means the *same program, rebuilt*: most
//! resubmissions differ from an already-analyzed image by a handful of
//! functions. The delta subsystem makes those incremental:
//!
//! 1. **Digest.** [`ImageDigest::compute`] fingerprints an image at
//!    section granularity, bucketing `.text` by its (merged) FDE ranges.
//!    Each [`BucketDigest`] carries a `raw` hash of the exact bytes and
//!    a `sem` hash of a masked linear sweep — `mov reg, imm`
//!    immediates that no layer can observe (non-`rdi`, not
//!    section-address-like) are elided, so data-constant patches hash
//!    equal. Digests travel with results: the serial format ([`serialize_result_with_digest`],
//!    version [`RESULT_VERSION`]) embeds them, and pre-digest
//!    ([`RESULT_VERSION_V1`]) blobs still read back (digest `None`).
//! 2. **Diff.** [`diff_digests`] classifies a version pair:
//!    [`DigestDiff::Identical`], [`DigestDiff::LocalText`] (only text
//!    bucket contents moved — with the changed windows, a semantic
//!    verdict, and the reuse count), or [`DigestDiff::NonLocal`]
//!    (layout/symbols/entry/non-text changed).
//! 3. **Replay.** [`run_delta`] walks the ladder: identical → old
//!    result verbatim; local + semantically equal + a
//!    [`Pipeline::delta_safe`] stack → old result verbatim (the
//!    `delta_hits` path); local otherwise → full pipeline re-run
//!    through [`fetch_disasm::RecEngine::rewarm_patched`], which keeps
//!    every decode outside the patched windows warm.
//! 4. **Fallback.** Non-local diffs and digest-less predecessors drop
//!    to a plain cold run — delta is an optimization, never a gamble:
//!    every tier's answer is byte-identical to cold (differentially
//!    property-tested in `tests/proptest_delta.rs`).
//!
//! ```
//! use fetch_core::{DeltaClass, Fetch, ImageDigest};
//! use fetch_binary::{write_elf, ElfImage};
//! use fetch_disasm::RecEngine;
//! use fetch_synth::{patch_function, synthesize, PatchKind, SynthConfig};
//! use std::sync::Arc;
//!
//! // Version 1: analyze cold, keep the result and its digest.
//! let case = synthesize(&SynthConfig::small(11));
//! let mut engine = RecEngine::new();
//! let fetch = Fetch::new();
//! let v1_image = ElfImage::parse(write_elf(&case.binary)).unwrap();
//! let v1 = Arc::new(fetch.detect_image(&v1_image, &mut engine));
//! let v1_digest = ImageDigest::compute(&case.binary, 0);
//!
//! // Version 2: one function's constant changed (a neutral patch).
//! let patched = patch_function(&case, 7, PatchKind::Neutral).unwrap();
//! let v2_image = ElfImage::parse(write_elf(&patched.binary)).unwrap();
//!
//! // Delta answers from the old result without re-running a layer...
//! let (out, _v2_digest) =
//!     fetch.detect_delta(&v1, Some(&v1_digest), &v2_image, &mut engine);
//! assert_eq!(out.class, DeltaClass::SectionReuse);
//! // ...and is byte-identical to a cold run on the new version.
//! assert_eq!(*out.result, fetch.detect(&patched.binary));
//! ```
//!
//! # Examples
//!
//! Build and run a custom pipeline, inspect its trace, then serve a
//! repeat query from the cache:
//!
//! ```
//! use fetch_core::{content_fingerprint, AnalysisCache, LayerSpec, Pipeline};
//! use fetch_disasm::ErrorCallPolicy;
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(5));
//!
//! // A custom stack, from specs or from its textual id.
//! let pipeline = Pipeline::new(vec![
//!     LayerSpec::FdeSeeds,
//!     LayerSpec::SafeRecursion(ErrorCallPolicy::SliceZero),
//!     LayerSpec::PointerScan,
//! ]);
//! assert_eq!(pipeline, Pipeline::parse("FDE+Rec+Xref").unwrap());
//!
//! let result = pipeline.run(&case.binary);
//! assert_eq!(result.layers, ["FDE", "Rec", "Xref"]);
//! // The trace knows what each layer contributed...
//! assert!(result.trace[0].added.len() > 10, "FDE seeded starts");
//! // ...and replays: the prefix FDE+Rec falls out of the same run.
//! let fde_rec = result.starts_after_layer(2);
//! assert!(fde_rec.len() <= result.starts.len());
//!
//! // Serve the same query again: one fingerprint, one lookup.
//! let cache = AnalysisCache::new();
//! let fp = content_fingerprint(&case.binary);
//! let cold = cache.get_or_compute(fp, &pipeline.id(), || pipeline.run(&case.binary));
//! let warm = cache.get_or_compute(fp, &pipeline.id(), || unreachable!());
//! assert!(std::sync::Arc::ptr_eq(&cold, &warm));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod cache;
mod delta;
mod fetch;
mod heuristics;
mod pipeline;
mod pointer_scan;
mod serial;
mod state;
mod strategy;

pub use algorithm1::{CallFrameRepair, RepairReport};
pub use cache::{
    content_fingerprint, diff_digests, image_fingerprint, AnalysisCache, BucketDigest,
    CacheCapacity, CacheStats, DigestDiff, Flight, FlightGuard, ImageDigest, SectionDigest,
};
pub use delta::{run_delta, DeltaClass, DeltaOutcome};
pub use fetch::Fetch;
pub use heuristics::{
    code_gaps, AlignmentSplit, ByteWeight, ControlFlowRepair, FlirtSignatures, FunctionMerge,
    LinearScanStarts, NucleusScan, PrologueMatch, TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
pub use pipeline::{LayerSpec, Pipeline, PipelineParseError, Tool, KNOWN_LAYERS};
pub use pointer_scan::{
    collect_data_pointers, collect_data_pointers_counted, validate_candidate,
    validate_candidate_indexed, OwnerIndex, PointerScan, ValidationError,
};
pub use serial::{
    deserialize_result, deserialize_result_full, intern_layer_name, serialize_result,
    serialize_result_legacy, serialize_result_with_digest, SerialError, RESULT_MAGIC,
    RESULT_VERSION, RESULT_VERSION_V1, RESULT_VERSION_V2,
};
pub use state::{DetectionResult, DetectionState, FrameTable, LayerTrace, Provenance};
pub use strategy::{
    run_stack, run_stack_cached, EntrySeed, FdeSeeds, SafeRecursion, Strategy, SymbolSeeds,
};
