//! # fetch-core
//!
//! The FETCH function-start detector and the composable strategy
//! framework of the reproduction ("Towards Optimal Use of Exception
//! Handling Information for Function Detection", DSN 2021).
//!
//! ## Layers
//!
//! *Safe* (correctness-preserving):
//! [`FdeSeeds`] (`FDE`), [`SymbolSeeds`], [`SafeRecursion`] (`Rec`),
//! [`PointerScan`] (`Xref`, §IV-E), [`CallFrameRepair`] (`TcallFix`,
//! Algorithm 1 of §V-B).
//!
//! *Unsafe* (tool heuristics, modeled for the Figure 5 study):
//! [`PrologueMatch`] (`Fsig`), [`TailCallHeuristic`] (`Tcall`),
//! [`LinearScanStarts`] (`Scan`), [`ControlFlowRepair`] (`CFR`),
//! [`FunctionMerge`] (`Fmerg`), [`ThunkHeuristic`], [`AlignmentSplit`].
//!
//! The [`Fetch`] type wires the optimal stack together.
//!
//! # Examples
//!
//! ```
//! use fetch_core::{run_stack, FdeSeeds, SafeRecursion, Fetch};
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(5));
//! // Study-style: a hand-assembled stack...
//! let fde_rec = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
//! // ...or the full FETCH pipeline.
//! let full = Fetch::new().detect(&case.binary);
//! assert!(full.len() <= fde_rec.len() + 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod fetch;
mod heuristics;
mod pointer_scan;
mod state;
mod strategy;

pub use algorithm1::{CallFrameRepair, RepairReport};
pub use fetch::Fetch;
pub use heuristics::{
    code_gaps, AlignmentSplit, ControlFlowRepair, FunctionMerge, LinearScanStarts,
    PrologueMatch, TailCallHeuristic, ThunkHeuristic, ToolStyle,
};
pub use pointer_scan::{
    collect_data_pointers, validate_candidate, PointerScan, ValidationError,
};
pub use state::{DetectionResult, DetectionState, Provenance};
pub use strategy::{run_stack, EntrySeed, FdeSeeds, SafeRecursion, Strategy, SymbolSeeds};
