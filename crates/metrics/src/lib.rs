//! # fetch-metrics
//!
//! Ground-truth comparison and paper-style reporting: per-binary
//! false-positive/false-negative counts, full-coverage / full-accuracy
//! tallies (Figure 5's y-axis), per-optimization-level aggregation
//! (Table III's rows), FDE-vs-symbol coverage (Tables I and II), and a
//! small fixed-width table renderer.
//!
//! # Examples
//!
//! ```
//! use fetch_metrics::evaluate;
//! use fetch_core::Fetch;
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(2));
//! let result = Fetch::new().detect(&case.binary);
//! let eval = evaluate(&result.start_set(), &case);
//! assert!(eval.true_positives > 0);
//! assert!(eval.recall() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fetch_binary::{OptLevel, TestCase};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Per-binary detection quality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryEval {
    /// Binary name.
    pub name: String,
    /// Optimization level (for Table III grouping).
    pub opt: OptLevel,
    /// Ground-truth function count.
    pub truth_count: usize,
    /// Correctly detected starts.
    pub true_positives: usize,
    /// Detected starts that are not true starts.
    pub false_positives: usize,
    /// True starts not detected.
    pub false_negatives: usize,
}

impl BinaryEval {
    /// All true starts detected.
    pub fn full_coverage(&self) -> bool {
        self.false_negatives == 0
    }

    /// No false starts reported.
    pub fn full_accuracy(&self) -> bool {
        self.false_positives == 0
    }

    /// TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        if self.true_positives + self.false_negatives == 0 {
            return 1.0;
        }
        self.true_positives as f64 / (self.true_positives + self.false_negatives) as f64
    }

    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        if self.true_positives + self.false_positives == 0 {
            return 1.0;
        }
        self.true_positives as f64 / (self.true_positives + self.false_positives) as f64
    }
}

/// Compares a detected start set against the ground truth.
pub fn evaluate(found: &BTreeSet<u64>, case: &TestCase) -> BinaryEval {
    let truth = case.truth.starts();
    let tp = truth.intersection(found).count();
    BinaryEval {
        name: case.binary.name.clone(),
        opt: case.binary.info.opt,
        truth_count: truth.len(),
        true_positives: tp,
        false_positives: found.difference(&truth).count(),
        false_negatives: truth.difference(found).count(),
    }
}

/// The fraction of symbol-named starts covered by FDE `PC Begin`s —
/// the `FDE` column of Tables I and II.
pub fn fde_symbol_coverage(case: &TestCase) -> Option<f64> {
    if !case.binary.has_symbols() {
        return None;
    }
    let begins: BTreeSet<u64> = case
        .binary
        .eh_frame()
        .ok()?
        .pc_begins()
        .into_iter()
        .collect();
    let sym_addrs: BTreeSet<u64> = case.binary.symbols.iter().map(|s| s.addr).collect();
    if sym_addrs.is_empty() {
        return None;
    }
    let covered = sym_addrs.intersection(&begins).count();
    Some(100.0 * covered as f64 / sym_addrs.len() as f64)
}

/// Corpus-level aggregation.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Number of binaries evaluated.
    pub binaries: usize,
    /// Total ground-truth functions.
    pub truth: usize,
    /// Total detected true starts.
    pub true_positives: usize,
    /// Total false positives.
    pub false_positives: usize,
    /// Total false negatives.
    pub false_negatives: usize,
    /// Binaries with zero false negatives.
    pub full_coverage: usize,
    /// Binaries with zero false positives.
    pub full_accuracy: usize,
    /// Binaries with at least one false positive.
    pub with_false_positives: usize,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate::default()
    }

    /// Folds one binary's evaluation in.
    pub fn add(&mut self, e: &BinaryEval) {
        self.binaries += 1;
        self.truth += e.truth_count;
        self.true_positives += e.true_positives;
        self.false_positives += e.false_positives;
        self.false_negatives += e.false_negatives;
        if e.full_coverage() {
            self.full_coverage += 1;
        }
        if e.full_accuracy() {
            self.full_accuracy += 1;
        } else {
            self.with_false_positives += 1;
        }
    }

    /// Overall coverage percentage.
    pub fn coverage_pct(&self) -> f64 {
        if self.truth == 0 {
            return 100.0;
        }
        100.0 * self.true_positives as f64 / self.truth as f64
    }
}

impl std::iter::Extend<BinaryEval> for Aggregate {
    fn extend<T: IntoIterator<Item = BinaryEval>>(&mut self, iter: T) {
        for e in iter {
            self.add(&e);
        }
    }
}

/// A minimal fixed-width table renderer for paper-style output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified in order).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with padded columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a count as the paper's "thousands" convention (e.g. `12.20`).
pub fn thousands(n: usize) -> String {
    format!("{:.2}", n as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_core::{run_stack, FdeSeeds, SafeRecursion};
    use fetch_synth::{synthesize, SynthConfig};

    #[test]
    fn evaluate_counts_are_consistent() {
        let case = synthesize(&SynthConfig::small(12));
        let r = run_stack(&case.binary, &[&FdeSeeds, &SafeRecursion::default()]);
        let e = evaluate(&r.start_set(), &case);
        assert_eq!(e.true_positives + e.false_negatives, e.truth_count);
        assert!(e.recall() <= 1.0 && e.precision() <= 1.0);
    }

    #[test]
    fn aggregate_folds() {
        let mut agg = Aggregate::new();
        for seed in 0..4 {
            let case = synthesize(&SynthConfig::small(seed));
            let r = run_stack(&case.binary, &[&FdeSeeds]);
            agg.add(&evaluate(&r.start_set(), &case));
        }
        assert_eq!(agg.binaries, 4);
        assert_eq!(agg.full_accuracy + agg.with_false_positives, 4);
        assert!(agg.coverage_pct() > 50.0);
    }

    #[test]
    fn fde_symbol_coverage_near_full() {
        let case = synthesize(&SynthConfig::small(13));
        let cov = fde_symbol_coverage(&case).expect("symbols present");
        // FDEs cover all compiled parts; only asm/cold symbol quirks drop it.
        assert!(cov > 90.0, "coverage {cov}");
        let stripped = TestCase {
            binary: case.binary.stripped(),
            truth: case.truth.clone(),
        };
        assert_eq!(fde_symbol_coverage(&stripped), None);
    }

    #[test]
    fn table_renders_fixed_width() {
        let mut t = TextTable::new(["Tool", "FP #", "FN #"]);
        t.row(["FETCH", "0.67", "0.11"]);
        t.row(["ANGR", "52.73", "0.19"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Tool"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("FETCH"));
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(12200), "12.20");
        assert_eq!(thousands(670), "0.67");
        assert_eq!(thousands(0), "0.00");
    }
}
