//! Minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors the small
//! subset of the `rand` 0.8 API the synthesizer uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_bool` and `gen_range`. The generator is xoshiro256++ —
//! fast, well distributed, and fully deterministic across platforms,
//! which is all the synthetic-corpus generator needs (it never requires
//! cryptographic strength or bit-compatibility with upstream `rand`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (subset of `rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value from the full-width uniform distribution.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts (subset of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source every other method derives from.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Draws a full-width uniform value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the conventional unit-interval draw.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's multiply-shift with one rejection round's worth of
    // correction skipped: the bias is < 2^-64 per draw, irrelevant for
    // corpus synthesis.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
