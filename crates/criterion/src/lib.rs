//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is offline, so the workspace vendors the subset
//! of the criterion 0.5 API its benches use: [`Criterion`],
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! straightforward wall-clock sampling (a short warmup, then one timed
//! run per sample) reporting mean and minimum per benchmark — enough to
//! compare pipeline stages and track regressions, without criterion's
//! statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;
const WARMUP_ITERS: usize = 3;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parses the harness arguments `cargo bench` forwards (`--bench` is
    /// swallowed; the first free argument becomes a name filter).
    pub fn from_args() -> Criterion {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let name = name.to_string();
        run_one(self, &name, DEFAULT_SAMPLES, f);
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, self.sample_size, f);
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Measures `routine`: a short warmup, then one timed call per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.sample_target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(criterion: &Criterion, name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_target: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples collected");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    println!(
        "{name}: mean {} / min {} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("name", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
