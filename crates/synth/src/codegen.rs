//! Lowering [`FuncPlan`]s to machine code.
//!
//! Each plan becomes a hot [`PartCode`] and optionally a cold one. The
//! lowering records a stack-event trace per part, from which the layout
//! engine builds CFI programs — so the emitted `.eh_frame` mirrors the
//! emitted code exactly, the property real compilers guarantee and the
//! paper's detector relies on.

use crate::plan::{Chunk, Ending, FrameKind, FuncPlan, TargetRef};
use fetch_x64::{AluOp, Asm, Cc, FixupKind, Mem, Op, Reg, Rm, Width};
use rand::rngs::StdRng;
use rand::Rng;

/// A stack-pointer event at a byte offset (measured *after* the
/// instruction, matching `DW_CFA_advance_loc` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackEvent {
    /// `push reg`.
    Push(Reg),
    /// `pop reg`.
    Pop(Reg),
    /// `sub rsp, n`.
    SubRsp(u32),
    /// `add rsp, n`.
    AddRsp(u32),
    /// `mov rbp, rsp` — the CFA base switches to `rbp`.
    SetRbp,
    /// `leave` — frame destroyed, CFA back to `rsp + 8`.
    Leave,
}

/// A jump table emitted inside a part: `cases` are byte offsets (within
/// the part) of each case body; the table itself is referenced through the
/// part's fixup list as [`TargetRef::JumpTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JumpTableCode {
    /// Byte offsets of case bodies within the part.
    pub case_offsets: Vec<usize>,
}

/// An external reference within a part's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartFixup {
    /// Byte position of the patch field.
    pub pos: usize,
    /// Patch semantics.
    pub kind: FixupKind,
    /// What it refers to.
    pub target: TargetRef,
}

/// Machine code for one contiguous part of a function.
#[derive(Debug, Clone, Default)]
pub struct PartCode {
    /// Raw bytes (external references still zeroed).
    pub bytes: Vec<u8>,
    /// References to patch after layout.
    pub fixups: Vec<PartFixup>,
    /// Stack events at their after-instruction offsets.
    pub events: Vec<(usize, StackEvent)>,
    /// Recorded mid-part anchor offsets ([`TargetRef::Mid`] namespace).
    pub anchors: Vec<usize>,
    /// Jump tables defined by this part.
    pub jump_tables: Vec<JumpTableCode>,
}

/// The lowered form of one function.
#[derive(Debug, Clone)]
pub struct FuncCode {
    /// Hot (entry) part.
    pub hot: PartCode,
    /// Cold part for non-contiguous functions.
    pub cold: Option<PartCode>,
    /// Stack height (bytes below the return address) at the hot→cold
    /// branch site; the cold part's CFI starts from this height.
    pub cold_entry_height: u32,
}

struct Emitter {
    asm: Asm,
    targets: Vec<TargetRef>,
    events: Vec<(usize, StackEvent)>,
    anchors: Vec<usize>,
    jump_tables: Vec<JumpTableCode>,
    /// Registers holding a defined value (for calling-convention-valid
    /// starts, sources are drawn only from this set).
    defined: Vec<Reg>,
    /// Current stack height below the return address.
    height: u32,
}

const SCRATCH: [Reg; 7] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R10,
];

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            asm: Asm::new(),
            targets: Vec::new(),
            events: Vec::new(),
            anchors: Vec::new(),
            jump_tables: Vec::new(),
            defined: Reg::ARGS.to_vec(),
            height: 0,
        }
    }

    fn target(&mut self, t: TargetRef) -> u32 {
        self.targets.push(t);
        (self.targets.len() - 1) as u32
    }

    fn push_op(&mut self, op: Op) {
        self.asm.push(op);
    }

    fn event(&mut self, ev: StackEvent) {
        self.events.push((self.asm.here(), ev));
    }

    fn push_reg(&mut self, r: Reg) {
        self.push_op(Op::Push(r));
        self.height += 8;
        self.event(StackEvent::Push(r));
    }

    fn pop_reg(&mut self, r: Reg) {
        self.push_op(Op::Pop(r));
        self.height -= 8;
        self.event(StackEvent::Pop(r));
        self.define(r);
    }

    fn sub_rsp(&mut self, n: u32) {
        self.push_op(Op::AluRI(AluOp::Sub, Width::W64, Reg::Rsp, n as i32));
        self.height += n;
        self.event(StackEvent::SubRsp(n));
    }

    fn add_rsp(&mut self, n: u32) {
        self.push_op(Op::AluRI(AluOp::Add, Width::W64, Reg::Rsp, n as i32));
        self.height -= n;
        self.event(StackEvent::AddRsp(n));
    }

    fn define(&mut self, r: Reg) {
        if !self.defined.contains(&r) {
            self.defined.push(r);
        }
    }

    fn src_reg(&self, rng: &mut StdRng) -> Reg {
        self.defined[rng.gen_range(0..self.defined.len())]
    }

    fn dst_reg(&self, rng: &mut StdRng) -> Reg {
        SCRATCH[rng.gen_range(0..SCRATCH.len())]
    }

    fn finish(self) -> PartCode {
        let Emitter {
            asm,
            targets,
            events,
            anchors,
            jump_tables,
            ..
        } = self;
        let out = asm.finalize().expect("generator binds all labels");
        let fixups = out
            .fixups
            .iter()
            .map(|f| PartFixup {
                pos: f.pos,
                kind: f.kind,
                target: targets[f.target as usize],
            })
            .collect();
        PartCode {
            bytes: out.bytes,
            fixups,
            events,
            anchors,
            jump_tables,
        }
    }
}

/// Lowers one function plan. `self_index` is the function's index in the
/// program (cold-branch and resume references point back at it).
pub fn lower(plan: &FuncPlan, self_index: usize, rng: &mut StdRng) -> FuncCode {
    let mut e = Emitter::new();

    if plan.endbr {
        e.push_op(Op::Endbr64);
    }

    // Prologue.
    let (saves, locals, rbp) = match &plan.frame {
        FrameKind::Frameless { saves, locals } => (saves.clone(), *locals, false),
        FrameKind::Rbp { saves, locals } => (saves.clone(), *locals, true),
    };
    if rbp {
        e.push_reg(Reg::Rbp);
        e.push_op(Op::MovRR(Width::W64, Reg::Rbp, Reg::Rsp));
        e.event(StackEvent::SetRbp);
        e.define(Reg::Rbp);
    }
    for &r in &saves {
        e.push_reg(r);
    }
    if locals > 0 {
        e.sub_rsp(locals);
    }

    // Body.
    let mut cold_entry_height = 0u32;
    emit_chunks(
        &mut e,
        &plan.chunks,
        plan,
        self_index,
        rng,
        locals,
        rbp,
        &mut cold_entry_height,
    );

    // Epilogue + ending.
    let unwind = |e: &mut Emitter| {
        if rbp {
            if locals > 0 {
                e.push_op(Op::Leave);
                e.height = 0;
                e.event(StackEvent::Leave);
                let mut popped = saves.clone();
                popped.reverse();
                // `leave` restores rsp to the frame base; callee-saved
                // registers pushed after rbp sit *below* it, so real
                // compilers restore them before `leave`. We emitted the
                // pops below for simplicity when locals == 0 only, so
                // with locals > 0 the generator avoids extra saves.
                debug_assert!(popped.is_empty() || locals == 0);
            } else {
                for &r in saves.iter().rev() {
                    e.pop_reg(r);
                }
                e.pop_reg(Reg::Rbp);
            }
        } else {
            if locals > 0 {
                e.add_rsp(locals);
            }
            for &r in saves.iter().rev() {
                e.pop_reg(r);
            }
        }
    };

    match &plan.ending {
        Ending::Ret => {
            unwind(&mut e);
            e.push_op(Op::Ret);
        }
        Ending::TailCall { target } => {
            unwind(&mut e);
            let t = e.target(*target);
            e.asm.jmp_ext(t);
        }
        Ending::NoReturnCall { target } => {
            let t = e.target(*target);
            e.asm.call_ext(t);
            // No epilogue, no ret: the callee never returns.
        }
        Ending::ErrorNoReturn { target } => {
            // error(1, ...): non-returning because the status is nonzero.
            e.push_op(Op::MovRI(Width::W32, Reg::Rdi, 1));
            let t = e.target(*target);
            e.asm.call_ext(t);
        }
        Ending::Halt => {
            e.push_op(Op::Ud2);
        }
        Ending::SyscallRet => {
            e.push_op(Op::MovRI(Width::W32, Reg::Rax, rng.gen_range(0..300)));
            e.push_op(Op::Syscall);
            e.push_op(Op::Ret);
        }
    }

    let hot_is_rbp = rbp;
    let hot = e.finish();

    // Cold part.
    let cold = plan.cold_chunks.as_ref().map(|chunks| {
        let mut c = Emitter::new();
        c.height = cold_entry_height;
        // Real cold blocks read spilled stack state rather than live
        // registers, so they satisfy the §IV-E register rule — which is
        // why the paper's calling-convention check over FDE starts flags
        // only hand-mislabeled entries, never cold parts. The emitter
        // therefore starts the cold body from the argument-register set
        // (plus the frame pointer for rbp-framed parents).
        if hot_is_rbp {
            c.define(Reg::Rbp);
        }
        // Cold bodies must not touch the cold-branch machinery again.
        let mut unused = 0u32;
        emit_chunks(
            &mut c,
            chunks,
            plan,
            self_index,
            rng,
            locals,
            hot_is_rbp,
            &mut unused,
        );
        if rng.gen_bool(0.5) {
            // Resume: jump back to the hot part's resume anchor (anchor 0
            // is reserved for the resume point by the cold-branch emitter).
            let t = c.target(TargetRef::Mid {
                func: self_index,
                anchor: 0,
            });
            c.asm.jmp_ext(t);
        } else {
            // Error path that returns directly from the cold part — the
            // common hot/cold-split shape with the epilogue in the cold
            // code (and the ret that feeds the §V-A gadget count).
            if !hot_is_rbp {
                if c.height > 0 {
                    let h = c.height;
                    c.add_rsp(h);
                }
            } else {
                c.push_op(Op::Leave);
                c.height = 0;
                c.event(StackEvent::Leave);
            }
            c.push_op(Op::Ret);
        }
        c.finish()
    });

    FuncCode {
        hot,
        cold,
        cold_entry_height,
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_chunks(
    e: &mut Emitter,
    chunks: &[Chunk],
    plan: &FuncPlan,
    self_index: usize,
    rng: &mut StdRng,
    locals: u32,
    rbp: bool,
    cold_entry_height: &mut u32,
) {
    for chunk in chunks {
        emit_chunk(
            e,
            chunk,
            plan,
            self_index,
            rng,
            locals,
            rbp,
            cold_entry_height,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_chunk(
    e: &mut Emitter,
    chunk: &Chunk,
    plan: &FuncPlan,
    self_index: usize,
    rng: &mut StdRng,
    locals: u32,
    rbp: bool,
    cold_entry_height: &mut u32,
) {
    match chunk {
        Chunk::Arith(n) => {
            for _ in 0..*n {
                let d = e.dst_reg(rng);
                match rng.gen_range(0..5) {
                    0 => {
                        let s = e.src_reg(rng);
                        let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or]
                            [rng.gen_range(0..4usize)];
                        if e.defined.contains(&d) {
                            e.push_op(Op::AluRR(op, Width::W64, d, s));
                        } else {
                            e.push_op(Op::MovRR(Width::W64, d, s));
                        }
                    }
                    1 => e.push_op(Op::MovRI(Width::W32, d, rng.gen_range(0..0x10000))),
                    2 => {
                        let s = e.src_reg(rng);
                        e.push_op(Op::MovRR(Width::W64, d, s));
                    }
                    3 => {
                        if e.defined.contains(&d) {
                            e.push_op(Op::Shift(
                                fetch_x64::ShiftOp::Shl,
                                Width::W64,
                                d,
                                rng.gen_range(1..8),
                            ));
                        } else {
                            e.push_op(Op::AluRR(AluOp::Xor, Width::W32, d, d));
                        }
                    }
                    _ => {
                        let s = e.src_reg(rng);
                        if e.defined.contains(&d) {
                            e.push_op(Op::IMul(Width::W64, d, s));
                        } else {
                            e.push_op(Op::MovRR(Width::W64, d, s));
                        }
                    }
                }
                e.define(d);
            }
        }
        Chunk::MemTraffic(n) => {
            for _ in 0..*n {
                let slot = if locals >= 16 {
                    (rng.gen_range(0..locals / 8) * 8) as i32
                } else {
                    0
                };
                let mem = if rbp {
                    Mem::base_disp(Reg::Rbp, -(slot + 8))
                } else if locals > 0 {
                    Mem::base_disp(Reg::Rsp, slot)
                } else {
                    // Leaf with no locals: no frame traffic possible.
                    let d = e.dst_reg(rng);
                    let s = e.src_reg(rng);
                    e.push_op(Op::MovRR(Width::W64, d, s));
                    e.define(d);
                    continue;
                };
                if rng.gen_bool(0.5) {
                    let s = e.src_reg(rng);
                    e.push_op(Op::MovMR(Width::W64, mem, s));
                } else {
                    let d = e.dst_reg(rng);
                    e.push_op(Op::MovRM(Width::W64, d, mem));
                    e.define(d);
                }
            }
        }
        Chunk::Call { target, args } => {
            for (i, reg) in Reg::ARGS.iter().take(*args as usize).enumerate() {
                e.push_op(Op::MovRI(Width::W32, *reg, (i as i32 + 1) * 10));
                e.define(*reg);
            }
            let t = e.target(*target);
            e.asm.call_ext(t);
            for r in [
                Reg::Rax,
                Reg::Rcx,
                Reg::Rdx,
                Reg::Rsi,
                Reg::Rdi,
                Reg::R8,
                Reg::R9,
                Reg::R10,
                Reg::R11,
            ] {
                e.define(r);
            }
        }
        Chunk::CallIndirect { table, slot } => {
            let t = e.target(*table);
            e.asm.lea_rip_ext(Reg::R11, t);
            e.define(Reg::R11);
            e.push_op(Op::CallInd(Rm::Mem(Mem::base_disp(
                Reg::R11,
                *slot as i32 * 8,
            ))));
        }
        Chunk::CallError {
            target,
            status_zero,
        } => {
            if *status_zero {
                e.push_op(Op::AluRR(AluOp::Xor, Width::W32, Reg::Rdi, Reg::Rdi));
            } else {
                e.push_op(Op::MovRI(Width::W32, Reg::Rdi, 1));
            }
            e.define(Reg::Rdi);
            let t = e.target(*target);
            e.asm.call_ext(t);
        }
        Chunk::CondSkip { inner } => {
            let s = e.src_reg(rng);
            e.push_op(Op::AluRI(AluOp::Cmp, Width::W64, s, rng.gen_range(0..64)));
            let skip = e.asm.new_label();
            let cc = [Cc::E, Cc::Ne, Cc::L, Cc::G][rng.gen_range(0..4usize)];
            e.asm.jcc(cc, skip);
            // Writes inside the skipped region are not defined on the
            // skip path; restore the defined set afterwards so later
            // reads stay convention-clean on every path.
            let saved_defs = e.defined.clone();
            emit_chunks(
                e,
                inner,
                plan,
                self_index,
                rng,
                locals,
                rbp,
                cold_entry_height,
            );
            e.defined = saved_defs;
            e.asm.bind(skip);
        }
        Chunk::Loop { inner } => {
            let counter = Reg::R10;
            e.push_op(Op::MovRI(Width::W32, counter, rng.gen_range(2..32)));
            e.define(counter);
            let top = e.asm.new_label();
            e.asm.bind(top);
            emit_chunks(
                e,
                inner,
                plan,
                self_index,
                rng,
                locals,
                rbp,
                cold_entry_height,
            );
            e.push_op(Op::Dec(Width::W64, counter));
            e.asm.jcc(Cc::Ne, top);
        }
        Chunk::JumpTable { cases } => {
            let cases = (*cases).max(2) as usize;
            // Classic idiom: bounds check, table load, indexed jump.
            e.push_op(Op::MovRR(Width::W32, Reg::Rax, Reg::Rdi));
            e.define(Reg::Rax);
            e.push_op(Op::AluRI(
                AluOp::Cmp,
                Width::W64,
                Reg::Rax,
                cases as i32 - 1,
            ));
            let default = e.asm.new_label();
            e.asm.jcc(Cc::A, default);
            let jt_index = e.jump_tables.len();
            let t = e.target(TargetRef::JumpTable(jt_index));
            // R11 is written only on the non-default path, so it must not
            // enter the defined set used by later source-register picks.
            e.asm.lea_rip_ext(Reg::R11, t);
            e.push_op(Op::Movsxd(
                Reg::Rax,
                Rm::Mem(Mem::base_index(Reg::R11, Reg::Rax, 4, 0)),
            ));
            e.push_op(Op::AluRR(AluOp::Add, Width::W64, Reg::Rax, Reg::R11));
            e.push_op(Op::JmpInd(Rm::Reg(Reg::Rax)));
            // Case bodies.
            let join = e.asm.new_label();
            let mut case_offsets = Vec::with_capacity(cases);
            for i in 0..cases {
                case_offsets.push(e.asm.here());
                e.push_op(Op::MovRI(Width::W32, Reg::Rax, i as i32 * 3 + 1));
                e.asm.jmp(join);
            }
            e.jump_tables.push(JumpTableCode { case_offsets });
            e.asm.bind(default);
            e.push_op(Op::AluRR(AluOp::Xor, Width::W32, Reg::Rax, Reg::Rax));
            e.asm.bind(join);
        }
        Chunk::ColdBranch => {
            if plan.cold_chunks.is_some() {
                *cold_entry_height = e.height;
                let s = e.src_reg(rng);
                e.push_op(Op::TestRR(Width::W64, s, s));
                let t = e.target(TargetRef::Cold(self_index));
                e.asm.jcc_ext(Cc::E, t);
                // Anchor 0: the resume point the cold part jumps back to.
                let here = e.asm.here();
                e.anchors.push(here);
                // Code after the resume point is reachable from the cold
                // part, whose register state is just the argument set —
                // restrict the defined pool so every path stays
                // convention-clean (mirrors real code resuming on
                // spilled state).
                e.defined = Reg::ARGS.to_vec();
                if rbp {
                    e.define(Reg::Rbp);
                }
            }
        }
        Chunk::MidAnchor => {
            let here = e.asm.here();
            e.anchors.push(here);
        }
        Chunk::TakeAddress { target } => {
            let t = e.target(*target);
            e.asm.lea_rip_ext(Reg::Rax, t);
            e.define(Reg::Rax);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FuncPlan;
    use fetch_x64::InstIter;
    use rand::SeedableRng;

    fn decode_ok(bytes: &[u8]) -> Vec<fetch_x64::Inst> {
        InstIter::new(bytes, 0x1000)
            .collect::<Result<Vec<_>, _>>()
            .expect("generated code decodes")
    }

    #[test]
    fn stub_function_lowers_to_decodable_code() {
        let mut rng = StdRng::seed_from_u64(1);
        let code = lower(&FuncPlan::stub("f"), 0, &mut rng);
        let insts = decode_ok(&code.hot.bytes);
        assert!(matches!(insts.last().unwrap().op, Op::Ret));
        assert!(code.cold.is_none());
    }

    #[test]
    fn frame_function_balances_stack() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut plan = FuncPlan::stub("g");
        plan.frame = FrameKind::Frameless {
            saves: vec![Reg::Rbx, Reg::R12],
            locals: 0x28,
        };
        plan.chunks = vec![Chunk::Arith(4), Chunk::MemTraffic(3)];
        let code = lower(&plan, 0, &mut rng);
        let insts = decode_ok(&code.hot.bytes);
        let mut height = 0i64;
        for i in &insts {
            if let Some(d) = i.stack_delta() {
                height -= d; // delta is on rsp; height grows as rsp drops
            }
        }
        // After the final ret the function must be balanced.
        assert_eq!(height, 0, "pushes/pops/sub/add balance");
        // Events recorded: 3 pushes... no — 2 pushes + sub + add + 2 pops.
        assert_eq!(code.hot.events.len(), 6);
    }

    #[test]
    fn cold_branch_emits_external_jcc_and_anchor() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut plan = FuncPlan::stub("h");
        plan.frame = FrameKind::Frameless {
            saves: vec![Reg::Rbx],
            locals: 16,
        };
        plan.chunks = vec![Chunk::Arith(2), Chunk::ColdBranch, Chunk::Arith(2)];
        plan.cold_chunks = Some(vec![Chunk::Arith(3)]);
        let code = lower(&plan, 7, &mut rng);
        assert_eq!(code.cold_entry_height, 8 + 16);
        assert_eq!(code.hot.anchors.len(), 1);
        assert!(code
            .hot
            .fixups
            .iter()
            .any(|f| f.target == TargetRef::Cold(7)));
        let cold = code.cold.unwrap();
        // The cold part either jumps back to the resume anchor or carries
        // its own epilogue + ret.
        let jumps_back = cold
            .fixups
            .iter()
            .any(|f| f.target == TargetRef::Mid { func: 7, anchor: 0 });
        let ends_in_ret = decode_ok(&cold.bytes)
            .last()
            .map(|i| matches!(i.op, Op::Ret))
            .unwrap_or(false);
        assert!(jumps_back || ends_in_ret);
    }

    #[test]
    fn jump_table_records_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut plan = FuncPlan::stub("jt");
        plan.chunks = vec![Chunk::JumpTable { cases: 5 }];
        let code = lower(&plan, 0, &mut rng);
        assert_eq!(code.hot.jump_tables.len(), 1);
        assert_eq!(code.hot.jump_tables[0].case_offsets.len(), 5);
        assert!(code
            .hot
            .fixups
            .iter()
            .any(|f| f.target == TargetRef::JumpTable(0)));
        // The indirect jump is present.
        let insts = decode_ok(&code.hot.bytes);
        assert!(insts.iter().any(|i| matches!(i.op, Op::JmpInd(_))));
    }

    #[test]
    fn tail_call_ends_with_external_jmp() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut plan = FuncPlan::stub("t");
        plan.frame = FrameKind::Frameless {
            saves: vec![],
            locals: 8,
        };
        plan.ending = Ending::TailCall {
            target: TargetRef::Func(3),
        };
        let code = lower(&plan, 0, &mut rng);
        let insts = decode_ok(&code.hot.bytes);
        // Last instruction is a jmp (rel32, zero-patched → self-relative).
        assert!(matches!(insts.last().unwrap().op, Op::Jmp { .. }));
        // And the stack is balanced before it (add rsp, 8 emitted).
        let subs: i64 = insts.iter().filter_map(|i| i.stack_delta()).sum();
        assert_eq!(subs, 0);
    }

    #[test]
    fn calling_convention_holds_at_entry() {
        // No instruction may read a non-argument register before writing
        // it — the invariant the §IV-E validator checks at true starts.
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut plan = FuncPlan::stub("cc");
            plan.frame = FrameKind::Frameless {
                saves: vec![Reg::R12],
                locals: 32,
            };
            plan.chunks = vec![
                Chunk::Arith(6),
                Chunk::CondSkip {
                    inner: vec![Chunk::Arith(2)],
                },
                Chunk::MemTraffic(4),
                Chunk::Loop {
                    inner: vec![Chunk::Arith(1)],
                },
            ];
            let code = lower(&plan, 0, &mut rng);
            let insts = decode_ok(&code.hot.bytes);
            let mut defined: Vec<Reg> = Reg::ARGS.to_vec();
            defined.push(Reg::Rsp);
            for inst in &insts {
                for r in inst.regs_read() {
                    assert!(
                        defined.contains(&r),
                        "seed {seed}: {inst} reads uninitialized {r}"
                    );
                }
                for r in inst.regs_written() {
                    if !defined.contains(&r) {
                        defined.push(r);
                    }
                }
            }
        }
    }
}
