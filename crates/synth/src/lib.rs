//! # fetch-synth
//!
//! The compiler simulator of the FETCH reproduction: deterministic
//! synthesis of System-V x86-64 binaries with exact ground truth.
//!
//! The paper evaluates on 1,395 real binaries. This crate stands in for
//! that corpus (see DESIGN.md §1): it emits machine code, `.eh_frame`
//! tables mirroring the code's real stack behaviour, symbols, and a
//! [`fetch_binary::GroundTruth`] recording every function, part, FDE and
//! reference class. All phenomena the paper measures are generated
//! natively:
//!
//! * non-contiguous (hot/cold split) functions with one FDE per part;
//! * frame-pointer functions whose CFI stack heights are incomplete;
//! * tail calls, tail-only/pointer-only/unreachable functions;
//! * hand-written assembly without FDEs, and Figure-6b style FDEs whose
//!   `PC Begin` mislabels the start;
//! * jump tables (in `.rodata` or embedded in `.text`), data-in-text,
//!   alignment padding, `noreturn` and `error`-style callees.
//!
//! # Examples
//!
//! ```
//! use fetch_synth::{synthesize, SynthConfig};
//!
//! let case = synthesize(&SynthConfig::small(42));
//! assert!(case.binary.has_eh_frame());
//! // FDE PC Begins cover every compiled function's entry.
//! let eh = case.binary.eh_frame()?;
//! let begins = eh.pc_begins();
//! let covered = case.truth.functions.iter()
//!     .filter(|f| f.parts[0].has_fde)
//!     .all(|f| begins.contains(&f.entry()));
//! assert!(covered);
//! # Ok::<(), fetch_ehframe::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod config;
pub mod corpus;
mod generate;
mod layout;
mod patch;
pub mod plan;

pub use config::{FeatureRates, SynthConfig};
pub use generate::generate_plan;
pub use layout::{build_cfis, layout, TEXT_BASE};
pub use patch::{patch_function, FunctionPatch, PatchKind};

use fetch_binary::TestCase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizes one binary (with ground truth) from a configuration.
///
/// Deterministic: the same configuration always produces the same bytes.
pub fn synthesize(cfg: &SynthConfig) -> TestCase {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plan = generate_plan(cfg, &mut rng);
    let codes: Vec<_> = plan
        .funcs
        .iter()
        .enumerate()
        .map(|(i, p)| codegen::lower(p, i, &mut rng))
        .collect();
    layout(&plan, &codes, cfg, &mut rng)
}
