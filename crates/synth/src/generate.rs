//! The program generator: turns a [`SynthConfig`] into a consistent
//! [`ProgramPlan`] — function classes, a reference graph honouring each
//! class, bodies, and data objects.

use crate::config::SynthConfig;
use crate::plan::{Chunk, Ending, FrameKind, FuncPlan, ProgramPlan, TargetRef, TextBlob};
use fetch_binary::{FuncKind, Reach};
use fetch_x64::Reg;
use rand::rngs::StdRng;
use rand::Rng;

/// Assembly-function reference classes the generator needs to realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AsmClass {
    Called,
    TailSingle,
    TailMulti,
    PointerOnly,
    Unreachable,
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Inserts a chunk into the early half of a body so it precedes any
/// trailing `error`-style call (tools that treat those calls as
/// non-returning must still see these references).
fn insert_early(rng: &mut StdRng, chunks: &mut Vec<Chunk>, chunk: Chunk) {
    let pos = rng.gen_range(0..=chunks.len().div_ceil(2));
    chunks.insert(pos, chunk);
}

/// Generates the full program plan for `cfg`.
///
/// Layout of the function index space:
/// `0` = `_start`, `1` = `main`, `2..` = bodies, then special functions
/// (noreturn stubs, `error`, thunks), then assembly functions.
pub fn generate_plan(cfg: &SynthConfig, rng: &mut StdRng) -> ProgramPlan {
    let r = &cfg.rates;
    let n_body = cfg.n_funcs.max(6);

    // ---------- carve out the index space ----------
    let mut plans: Vec<FuncPlan> = Vec::new();
    let start_ix = 0usize;
    let main_ix = 1usize;
    for i in 0..n_body {
        let name = match i {
            0 => "_start".to_string(),
            1 => "main".to_string(),
            _ => format!("func_{i:04}"),
        };
        plans.push(FuncPlan::stub(&name));
    }
    // Non-returning primitives: an exit stub and an abort stub.
    let exit_ix = plans.len();
    plans.push(FuncPlan::stub("exit_group"));
    let abort_ix = plans.len();
    plans.push(FuncPlan::stub("abort_like"));
    // error(): conditionally non-returning.
    let error_ix = plans.len();
    plans.push(FuncPlan::stub("error"));
    // Clang statically links __clang_call_terminate into C++ binaries
    // without an FDE — the non-assembly FDE-miss class of §IV-B. Only
    // binaries with noexcept-cleanup code carry it (roughly a third).
    let cct_ix = if cfg.info.compiler == fetch_binary::Compiler::Clang
        && cfg.info.lang == fetch_binary::Lang::Cpp
        && bernoulli(rng, 0.35)
    {
        let ix = plans.len();
        plans.push(FuncPlan::stub("__clang_call_terminate"));
        Some(ix)
    } else {
        None
    };
    // Thunks.
    let n_thunks = ((n_body as f64 * r.thunks) as usize).max(if r.thunks > 0.0 { 1 } else { 0 });
    let thunk_range = plans.len()..plans.len() + n_thunks;
    for t in 0..n_thunks {
        plans.push(FuncPlan::stub(&format!("thunk_{t:02}")));
    }
    // Bad thunks (ICF-style entry jumps into another function's middle).
    let bad_thunk_range = plans.len()..plans.len() + r.bad_thunks;
    for t in 0..r.bad_thunks {
        plans.push(FuncPlan::stub(&format!("icf_thunk_{t:02}")));
    }
    // Assembly functions.
    let asm_range = plans.len()..plans.len() + r.asm_funcs;
    for a in 0..r.asm_funcs {
        plans.push(FuncPlan::stub(&format!("asm_{a:03}")));
    }
    let n = plans.len();

    // ---------- classify ----------
    // Tail-only and pointer-only pools are drawn from plain bodies.
    let body_pool: Vec<usize> = (2..n_body).collect();
    let mut tail_only: Vec<usize> = Vec::new();
    let mut pointer_only: Vec<usize> = Vec::new();
    let mut icf_targets: Vec<usize> = Vec::new();
    {
        let mut shuffled = body_pool.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let n_tail_only = (n_body as f64 * r.tail_only) as usize;
        let n_pointer_only = (n_body as f64 * r.pointer_only) as usize;
        let mut it = shuffled.into_iter();
        tail_only.extend(it.by_ref().take(n_tail_only));
        pointer_only.extend(it.by_ref().take(n_pointer_only));
        icf_targets.extend(it.by_ref().take(r.bad_thunks.max(1)));
    }

    let mut asm_class: Vec<(usize, AsmClass)> = Vec::new();
    for (k, i) in asm_range.clone().enumerate() {
        // Small assembly populations (a few syscall stubs) are all
        // directly called; only infrastructure projects with dozens of
        // assembly routines exhibit the tail-only/pointer-only/
        // unreachable classes (§IV-B/D).
        let class = if r.asm_funcs <= 10 {
            AsmClass::Called
        } else {
            match k % 7 {
                0..=2 => AsmClass::Called,
                3 => AsmClass::TailSingle,
                4 => AsmClass::TailMulti,
                5 => AsmClass::PointerOnly,
                _ => AsmClass::Unreachable,
            }
        };
        asm_class.push((i, class));
    }

    // Fatal functions end by calling a non-returning primitive, so they
    // never return themselves. Real code only reaches them through
    // guarded calls (`if (bad) die();`) — an unguarded mid-body call
    // would leave provably dead code behind, which compilers eliminate.
    // They are therefore excluded from the ordinary callable pool and
    // referenced via dedicated guarded call sites below.
    let mut fatal_error: Vec<Option<bool>> = vec![None; n]; // Some(is_error)
    for &i in &body_pool {
        if tail_only.contains(&i) || pointer_only.contains(&i) || icf_targets.contains(&i) {
            continue;
        }
        if bernoulli(rng, r.noreturn) {
            fatal_error[i] = Some(false);
        } else if bernoulli(rng, r.error_calls * 0.4) {
            fatal_error[i] = Some(true);
        }
    }

    // Directly callable pool (what ordinary call sites may target).
    let callable: Vec<usize> = body_pool
        .iter()
        .copied()
        .filter(|i| {
            !tail_only.contains(i) && !pointer_only.contains(i) && fatal_error[*i].is_none()
        })
        .chain(
            asm_class
                .iter()
                .filter(|(_, c)| *c == AsmClass::Called)
                .map(|(i, _)| *i),
        )
        .collect();

    // Reference bookkeeping to finalize `Reach` afterwards.
    let mut called = vec![0u32; n];
    let mut tail_callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pointed = vec![false; n];

    // ---------- per-function plans ----------
    let endbr_all = bernoulli(rng, 0.35);
    let mut mislabel_budget = r.mislabeled_fdes;

    for i in 0..n {
        let is_asm = asm_range.contains(&i);
        let is_thunk = thunk_range.contains(&i) || bad_thunk_range.contains(&i);

        if i == start_ix {
            // _start: call main, then a non-returning exit.
            let p = &mut plans[i];
            p.frame = FrameKind::Frameless {
                saves: vec![],
                locals: 8,
            };
            p.chunks = vec![Chunk::Call {
                target: TargetRef::Func(main_ix),
                args: 2,
            }];
            p.ending = Ending::NoReturnCall {
                target: TargetRef::Func(exit_ix),
            };
            p.endbr = endbr_all;
            called[main_ix] += 1;
            called[exit_ix] += 1;
            continue;
        }
        if i == exit_ix || i == abort_ix {
            let p = &mut plans[i];
            p.frame = FrameKind::leaf();
            p.chunks = vec![Chunk::Arith(1)];
            p.ending = if i == exit_ix {
                Ending::SyscallRet
            } else {
                Ending::Halt
            };
            p.noreturn = true;
            // exit_group truly never returns even though it ends in
            // syscall; mark Halt-style semantics via noreturn flag.
            if i == exit_ix {
                p.ending = Ending::Halt;
            }
            continue;
        }
        if Some(i) == cct_ix {
            // __clang_call_terminate: calls the abort primitive; carries
            // no FDE; referenced via a direct call from C++ cleanup code.
            let p = &mut plans[i];
            p.kind = FuncKind::ClangCallTerminate;
            p.frame = FrameKind::leaf();
            p.chunks = vec![Chunk::Arith(1)];
            p.ending = Ending::NoReturnCall {
                target: TargetRef::Func(abort_ix),
            };
            p.fde = crate::plan::FdePolicy::None;
            p.noreturn = true;
            p.endbr = false;
            called[abort_ix] += 1;
            continue;
        }
        if i == error_ix {
            // error(status, ...): returns only when edi == 0.
            let p = &mut plans[i];
            p.frame = FrameKind::Frameless {
                saves: vec![Reg::Rbx],
                locals: 16,
            };
            p.chunks = vec![
                Chunk::Arith(3),
                Chunk::CondSkip {
                    inner: vec![Chunk::Arith(2)],
                },
            ];
            p.ending = Ending::Ret;
            p.conditional_noreturn = true;
            p.endbr = endbr_all;
            continue;
        }
        if is_thunk {
            let p_target = if bad_thunk_range.contains(&i) {
                // Jump into the middle of an ICF target.
                let t = icf_targets[(i - bad_thunk_range.start) % icf_targets.len()];
                TargetRef::Mid { func: t, anchor: 0 }
            } else {
                let t = pick(rng, &callable);
                tail_callers[t].push(i); // a thunk's jmp is a tail reference
                                         // Thunk targets are aliased exported functions: they are
                                         // also called directly somewhere.
                let host = pick(rng, &body_pool);
                insert_early(
                    rng,
                    &mut plans[host].chunks,
                    Chunk::Call {
                        target: TargetRef::Func(t),
                        args: 1,
                    },
                );
                called[t] += 1;
                TargetRef::Func(t)
            };
            let p = &mut plans[i];
            p.kind = FuncKind::Thunk;
            p.frame = FrameKind::leaf();
            p.chunks = vec![];
            p.ending = Ending::TailCall { target: p_target };
            p.endbr = false;
            continue;
        }
        if is_asm {
            let (_, class) = asm_class[i - asm_range.start];
            let has_fde = bernoulli(rng, r.asm_fde);
            let mislabel = has_fde && mislabel_budget > 0 && class == AsmClass::Called;
            if mislabel {
                mislabel_budget -= 1;
            }
            let p = &mut plans[i];
            p.kind = FuncKind::Assembly;
            p.frame = FrameKind::leaf();
            p.chunks = if bernoulli(rng, 0.5) {
                vec![Chunk::Arith(2)]
            } else {
                vec![Chunk::Loop {
                    inner: vec![Chunk::Arith(1)],
                }]
            };
            p.ending = if bernoulli(rng, 0.5) {
                Ending::SyscallRet
            } else {
                Ending::Ret
            };
            p.fde = if mislabel {
                crate::plan::FdePolicy::Mislabeled
            } else if has_fde {
                crate::plan::FdePolicy::Accurate
            } else {
                crate::plan::FdePolicy::None
            };
            p.endbr = false;
            continue;
        }

        // ---------- ordinary compiled bodies ----------
        // ICF-anchor hosts stay frameless so code after the anchor reads
        // no callee-saved registers (the entry jump must satisfy the
        // calling convention — real ICF merges convention-clean code).
        let is_icf_target = icf_targets.contains(&i);
        let rbp = !is_icf_target && bernoulli(rng, r.rbp_frame);
        let saves: Vec<Reg> = if rbp {
            vec![]
        } else {
            let pool = [Reg::Rbx, Reg::R12, Reg::R13, Reg::R14, Reg::R15];
            let k = rng.gen_range(0..3usize);
            pool[..k].to_vec()
        };
        let locals: u32 = pick(rng, &[0u32, 8, 16, 24, 32, 48, 64, 96]);
        let frame = if rbp {
            FrameKind::Rbp {
                saves,
                locals: locals.max(16),
            }
        } else {
            FrameKind::Frameless { saves, locals }
        };

        let mut chunks: Vec<Chunk> = Vec::new();
        let body_len = rng.gen_range(2..7usize);
        for _ in 0..body_len {
            let c = match rng.gen_range(0..10) {
                0..=2 => Chunk::Arith(rng.gen_range(2..7)),
                3..=4 => Chunk::MemTraffic(rng.gen_range(1..4)),
                5..=6 => {
                    let t = pick(rng, &callable);
                    called[t] += 1;
                    Chunk::Call {
                        target: TargetRef::Func(t),
                        args: rng.gen_range(0..4),
                    }
                }
                7 => Chunk::CondSkip {
                    inner: vec![Chunk::Arith(rng.gen_range(1..4))],
                },
                8 => Chunk::Loop {
                    inner: vec![Chunk::Arith(rng.gen_range(1..3))],
                },
                _ => {
                    if bernoulli(rng, r.jump_table * 2.0) {
                        Chunk::JumpTable {
                            cases: rng.gen_range(2..7),
                        }
                    } else {
                        Chunk::Arith(2)
                    }
                }
            };
            chunks.push(c);
        }
        // error() call sites. Zero-status (non-fatal) calls are guarded
        // by a condition in real code (`if (verbose) error(0, ...)`), so
        // a conditional branch always skips over them — which is what
        // keeps the code after them reachable even for analyses that
        // treat every error call as non-returning.
        if bernoulli(rng, r.error_calls) {
            chunks.push(Chunk::CondSkip {
                inner: vec![Chunk::CallError {
                    target: TargetRef::Func(error_ix),
                    status_zero: true,
                }],
            });
            called[error_ix] += 1;
        }
        // ICF anchor targets get a stable mid anchor (anchor 0) followed
        // by a call, whose argument setup and clobbers (re)define every
        // caller-saved register — keeping the anchor convention-clean.
        let split = !is_icf_target && bernoulli(rng, r.split_cold);
        if is_icf_target {
            let t = pick(rng, &callable);
            called[t] += 1;
            let pos = chunks.len() / 2;
            chunks.insert(
                pos,
                Chunk::Call {
                    target: TargetRef::Func(t),
                    args: 3,
                },
            );
            chunks.insert(pos, Chunk::MidAnchor);
        }
        if split {
            chunks.insert(chunks.len() / 2, Chunk::ColdBranch);
        }

        // Endings: fatal functions were pre-decided; others may tail-call.
        let ending = if let Some(is_error) = fatal_error[i] {
            if is_error {
                called[error_ix] += 1;
                Ending::ErrorNoReturn {
                    target: TargetRef::Func(error_ix),
                }
            } else {
                called[abort_ix] += 1;
                Ending::NoReturnCall {
                    target: TargetRef::Func(abort_ix),
                }
            }
        } else if tail_only.is_empty() || !bernoulli(rng, r.tail_call) {
            Ending::Ret
        } else {
            // Tail call: prefer serving the tail-only pool, else a
            // callable function (the "also directly referenced" case).
            let target = if bernoulli(rng, 0.5) {
                let t = pick(rng, &tail_only);
                if t != i {
                    tail_callers[t].push(i);
                    t
                } else {
                    let t = pick(rng, &callable);
                    tail_callers[t].push(i);
                    t
                }
            } else {
                let t = pick(rng, &callable);
                tail_callers[t].push(i);
                t
            };
            Ending::TailCall {
                target: TargetRef::Func(target),
            }
        };

        let cold = if split {
            Some(vec![
                Chunk::Arith(rng.gen_range(1..4)),
                Chunk::MemTraffic(1),
            ])
        } else {
            None
        };

        let p = &mut plans[i];
        p.frame = frame;
        p.chunks = chunks;
        p.cold_chunks = cold;
        p.ending = ending;
        p.endbr = endbr_all;
    }

    // Reassigning a host's ending steals it from its previous tail
    // target; the bookkeeping must follow or `Reach` counts drift from
    // the emitted code.
    fn retarget_tail(
        plans: &mut [FuncPlan],
        tail_callers: &mut [Vec<usize>],
        host: usize,
        new_target: usize,
    ) {
        if let Ending::TailCall {
            target: TargetRef::Func(prev),
        } = plans[host].ending
        {
            tail_callers[prev].retain(|h| *h != host);
        }
        plans[host].ending = Ending::TailCall {
            target: TargetRef::Func(new_target),
        };
        tail_callers[new_target].push(host);
    }

    // Guarantee every tail-only function has at least one tail caller and
    // exactly the right multiplicity classes.
    for &t in &tail_only {
        while tail_callers[t].is_empty() {
            let host = pick(rng, &body_pool);
            if host == t || tail_only.contains(&host) {
                continue;
            }
            retarget_tail(&mut plans, &mut tail_callers, host, t);
        }
    }
    // Asm tail classes.
    for &(i, class) in &asm_class {
        match class {
            AsmClass::TailSingle | AsmClass::TailMulti => {
                let want = if class == AsmClass::TailSingle { 1 } else { 2 };
                while tail_callers[i].len() < want {
                    let host = pick(rng, &body_pool);
                    if tail_only.contains(&host) || tail_callers[i].contains(&host) {
                        continue;
                    }
                    retarget_tail(&mut plans, &mut tail_callers, host, i);
                }
            }
            AsmClass::Called => {
                while called[i] == 0 {
                    let host = pick(rng, &body_pool);
                    let chunks = &mut plans[host].chunks;
                    insert_early(
                        rng,
                        chunks,
                        Chunk::Call {
                            target: TargetRef::Func(i),
                            args: 1,
                        },
                    );
                    called[i] += 1;
                }
            }
            _ => {}
        }
    }

    // ---------- pointer tables ----------
    let mut pointer_tables: Vec<Vec<usize>> = Vec::new();
    if !pointer_only.is_empty() || asm_class.iter().any(|(_, c)| *c == AsmClass::PointerOnly) {
        let mut table: Vec<usize> = pointer_only.clone();
        table.extend(
            asm_class
                .iter()
                .filter(|(_, c)| *c == AsmClass::PointerOnly)
                .map(|(i, _)| *i),
        );
        // Mix in a couple of ordinary functions (address-taken + called).
        for _ in 0..2 {
            let t = pick(rng, &callable);
            table.push(t);
            pointed[t] = true;
        }
        for &t in &table {
            pointed[t] = true;
        }
        pointer_tables.push(table);
        // An indirect call through slot 0 from a random body.
        let host = pick(rng, &body_pool);
        insert_early(
            rng,
            &mut plans[host].chunks,
            Chunk::CallIndirect {
                table: TargetRef::DataObject(0),
                slot: 0,
            },
        );
    }

    // A couple of code-borne address takes (constant-operand pointers).
    for _ in 0..2 {
        let host = pick(rng, &body_pool);
        let t = pick(rng, &callable);
        insert_early(
            rng,
            &mut plans[host].chunks,
            Chunk::TakeAddress {
                target: TargetRef::Func(t),
            },
        );
        pointed[t] = true;
    }

    // Every fatal function is reached through a guarded call site.
    for i in 0..n {
        if fatal_error[i].is_some() && called[i] == 0 {
            loop {
                let host = pick(rng, &body_pool);
                if host == i || fatal_error[host].is_some() {
                    continue;
                }
                insert_early(
                    rng,
                    &mut plans[host].chunks,
                    Chunk::CondSkip {
                        inner: vec![Chunk::Call {
                            target: TargetRef::Func(i),
                            args: 1,
                        }],
                    },
                );
                called[i] += 1;
                break;
            }
        }
    }

    // The error/abort primitives must be referenced too (they are
    // statically linked precisely because something uses them).
    if called[error_ix] == 0 {
        let host = pick(rng, &body_pool);
        insert_early(
            rng,
            &mut plans[host].chunks,
            Chunk::CondSkip {
                inner: vec![Chunk::CallError {
                    target: TargetRef::Func(error_ix),
                    status_zero: true,
                }],
            },
        );
        called[error_ix] += 1;
    }
    if called[abort_ix] == 0 {
        let host = pick(rng, &body_pool);
        insert_early(
            rng,
            &mut plans[host].chunks,
            Chunk::CondSkip {
                inner: vec![Chunk::Call {
                    target: TargetRef::Func(abort_ix),
                    args: 0,
                }],
            },
        );
        called[abort_ix] += 1;
    }

    if let Some(cct) = cct_ix {
        if called[cct] == 0 {
            let host = pick(rng, &body_pool);
            insert_early(
                rng,
                &mut plans[host].chunks,
                Chunk::CondSkip {
                    inner: vec![Chunk::Call {
                        target: TargetRef::Func(cct),
                        args: 0,
                    }],
                },
            );
            called[cct] += 1;
        }
    }

    // Every surviving compiled function must be referenced somewhere:
    // linkers garbage-collect unreferenced sections, so real binaries
    // contain (almost) no dead compiled code — only dead *assembly*
    // survives (§IV-E's 160 unreachable functions are all assembly).
    for i in body_pool.iter().copied() {
        if called[i] == 0 && tail_callers[i].is_empty() && !pointed[i] {
            loop {
                let host = pick(rng, &body_pool);
                if host == i {
                    continue;
                }
                let args = rng.gen_range(0..3);
                insert_early(
                    rng,
                    &mut plans[host].chunks,
                    Chunk::Call {
                        target: TargetRef::Func(i),
                        args,
                    },
                );
                called[i] += 1;
                break;
            }
        }
    }

    // ---------- finalize reach classes ----------
    for i in 0..n {
        plans[i].reach = if called[i] > 0 {
            Reach::Called
        } else if !tail_callers[i].is_empty() {
            Reach::TailCalled {
                callers: tail_callers[i].len() as u32,
            }
        } else if pointed[i] {
            Reach::PointerOnly
        } else if i == start_ix {
            Reach::Called // referenced by the ELF entry header
        } else {
            Reach::Unreachable
        };
        plans[i].symbol = true;
        plans[i].noreturn = plans[i].noreturn
            || matches!(
                plans[i].ending,
                Ending::Halt | Ending::NoReturnCall { .. } | Ending::ErrorNoReturn { .. }
            );
    }

    // ---------- text blobs ----------
    let mut text_blobs = Vec::new();
    for i in 2..n_body {
        if bernoulli(rng, r.data_in_text) {
            let mut bytes = Vec::new();
            let len = rng.gen_range(16..80);
            for _ in 0..len {
                match rng.gen_range(0..10) {
                    0..=5 => bytes.push(rng.gen_range(0x20..0x7f)), // ASCII
                    6..=8 => bytes.push(rng.gen()),
                    _ => bytes.extend_from_slice(&[0x55, 0x48, 0x89, 0xe5]), // looks like a prologue
                }
            }
            text_blobs.push(TextBlob {
                after_func: i,
                bytes,
            });
        }
    }

    ProgramPlan {
        funcs: plans,
        text_blobs,
        pointer_tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_for(seed: u64, n: usize) -> ProgramPlan {
        let mut cfg = SynthConfig::small(seed);
        cfg.n_funcs = n;
        cfg.rates.asm_funcs = 7;
        cfg.rates.mislabeled_fdes = 1;
        cfg.rates.bad_thunks = 1;
        let mut rng = StdRng::seed_from_u64(seed);
        generate_plan(&cfg, &mut rng)
    }

    #[test]
    fn determinism() {
        let a = plan_for(42, 60);
        let b = plan_for(42, 60);
        assert_eq!(a.funcs.len(), b.funcs.len());
        for (x, y) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.chunks, y.chunks);
            assert_eq!(x.ending, y.ending);
        }
    }

    #[test]
    fn reach_classes_are_consistent() {
        let plan = plan_for(7, 80);
        // Tail-only functions are never targets of Chunk::Call.
        let mut direct_targets = std::collections::BTreeSet::new();
        fn walk(chunks: &[Chunk], out: &mut std::collections::BTreeSet<usize>) {
            for c in chunks {
                match c {
                    Chunk::Call {
                        target: TargetRef::Func(t),
                        ..
                    } => {
                        out.insert(*t);
                    }
                    Chunk::CondSkip { inner } | Chunk::Loop { inner } => walk(inner, out),
                    _ => {}
                }
            }
        }
        for f in &plan.funcs {
            walk(&f.chunks, &mut direct_targets);
            if let Some(c) = &f.cold_chunks {
                walk(c, &mut direct_targets);
            }
            if let Ending::NoReturnCall {
                target: TargetRef::Func(t),
            }
            | Ending::ErrorNoReturn {
                target: TargetRef::Func(t),
            } = f.ending
            {
                direct_targets.insert(t);
            }
        }
        for (i, f) in plan.funcs.iter().enumerate() {
            match f.reach {
                Reach::TailCalled { .. } | Reach::PointerOnly | Reach::Unreachable => {
                    assert!(
                        !direct_targets.contains(&i),
                        "{} ({:?}) must not be directly called",
                        f.name,
                        f.reach
                    );
                }
                Reach::Called => {}
            }
        }
    }

    #[test]
    fn special_functions_exist() {
        let plan = plan_for(3, 50);
        assert!(plan.funcs.iter().any(|f| f.name == "_start"));
        assert!(plan.funcs.iter().any(|f| f.name == "main"));
        assert!(plan.funcs.iter().any(|f| f.conditional_noreturn));
        assert!(plan.funcs.iter().any(|f| f.noreturn));
        assert!(plan
            .funcs
            .iter()
            .any(|f| f.fde == crate::plan::FdePolicy::Mislabeled));
        assert!(plan.funcs.iter().any(|f| matches!(
            f.ending,
            Ending::TailCall {
                target: TargetRef::Mid { .. }
            }
        )));
    }

    #[test]
    fn split_functions_have_cold_branch() {
        let plan = plan_for(11, 200);
        let split: Vec<_> = plan.funcs.iter().filter(|f| f.is_split()).collect();
        assert!(
            !split.is_empty(),
            "some functions must be split at default rates"
        );
        for f in split {
            assert!(
                f.chunks.iter().any(|c| matches!(c, Chunk::ColdBranch)),
                "{} split without cold branch",
                f.name
            );
        }
    }
}
