//! Corpus mutation: rebuild one function body in place.
//!
//! CI/CD re-submissions — the workload delta re-analysis serves — are
//! *versions* of a binary: same layout, one function's code changed.
//! [`patch_function`] produces exactly that from a synthesized
//! [`TestCase`], at three escalating blast radii chosen to land on the
//! three non-trivial tiers of `fetch_core::run_delta`:
//!
//! * [`PatchKind::Neutral`] rewrites the immediate of one
//!   `mov r32, imm` data constant to a different small constant — raw
//!   text bytes change, the masked semantic digest does not, and no
//!   detection layer can observe the difference (the *section reuse*
//!   tier).
//! * [`PatchKind::Behavioral`] rewrites such an immediate to *another
//!   function's entry address* — a semantic change (a new code
//!   constant the pointer scan may act on), forcing the *recompute*
//!   tier.
//! * [`PatchKind::Resize`] grows the function by one byte (`ret` →
//!   `nop; ret` into the alignment padding) and fixes up its FDE's
//!   `pc_range` — `.eh_frame` bytes change, so the diff is non-local
//!   and delta falls back to *cold*.
//!
//! Every mutation is verified by re-decoding the patched site before it
//! is returned; a candidate that fails verification is skipped. The
//! mutator is deterministic in `(case, seed, kind)`.

use fetch_binary::{Binary, FuncKind, Section, SectionKind, TestCase};
use fetch_ehframe::encode_eh_frame;
use fetch_x64::{decode, Op, Reg, Width};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How invasive a [`patch_function`] mutation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchKind {
    /// Change one data constant to another data constant: byte-different,
    /// semantically masked — no detector output can change.
    Neutral,
    /// Change one data constant to another function's entry address:
    /// the patched code now materializes a code pointer.
    Behavioral,
    /// Grow the function body by one byte into its alignment padding and
    /// bump the covering FDE's `pc_range` to match.
    Resize,
}

/// A patched version of a [`TestCase`]'s binary, plus where and what.
#[derive(Debug, Clone)]
pub struct FunctionPatch {
    /// The new version of the binary (same name, layout, and symbols).
    pub binary: Binary,
    /// Ground truth for the new version (part lengths follow a
    /// [`PatchKind::Resize`]).
    pub truth: fetch_binary::GroundTruth,
    /// The mutation that was applied.
    pub kind: PatchKind,
    /// Entry of the function whose body was rebuilt.
    pub function: u64,
    /// The changed `.text` byte range `[start, end)`.
    pub window: (u64, u64),
}

/// A `mov r32, imm32` site eligible for immediate rewriting: the
/// immediate occupies the last four instruction bytes, the destination
/// is not `rdi` (whose immediates feed the `error()` non-return slice),
/// and the value is a small data constant, not an address.
struct ImmSite {
    /// Instruction start.
    addr: u64,
    /// Address of the first immediate byte (instruction end − 4).
    imm_addr: u64,
    reg: Reg,
    imm: i32,
}

fn imm_sites(binary: &Binary, start: u64, end: u64) -> Vec<ImmSite> {
    let text = binary.text();
    let mut sites = Vec::new();
    let mut addr = start;
    while addr < end {
        let Some(window) = text.slice_from(addr) else {
            break;
        };
        let Ok(inst) = decode(window, addr) else {
            break; // data-in-text: stop scanning this body
        };
        if inst.end() > end {
            break;
        }
        if let Op::MovRI(Width::W32, reg, imm) = inst.op {
            if reg != Reg::Rdi && imm > 0 && imm < 0x10000 {
                sites.push(ImmSite {
                    addr,
                    imm_addr: inst.end() - 4,
                    reg,
                    imm,
                });
            }
        }
        addr = inst.end();
    }
    sites
}

fn with_patched_section(binary: &Binary, kind: SectionKind, bytes: Vec<u8>) -> Binary {
    let mut out = binary.clone();
    for s in &mut out.sections {
        if s.kind == kind {
            *s = Section::new(kind, s.addr, bytes);
            break;
        }
    }
    out
}

/// Rewrites the 4-byte immediate at `imm_addr` and verifies the patched
/// site still decodes to the same instruction shape with the new value.
fn rewrite_imm(binary: &Binary, site: &ImmSite, new_imm: i32) -> Option<Binary> {
    let text = binary.text();
    let off = (site.imm_addr - text.addr) as usize;
    let mut bytes = text.bytes.to_vec();
    bytes[off..off + 4].copy_from_slice(&new_imm.to_le_bytes());
    let patched = with_patched_section(binary, SectionKind::Text, bytes);
    let inst = decode(patched.text().slice_from(site.addr)?, site.addr).ok()?;
    match inst.op {
        Op::MovRI(Width::W32, r, v)
            if r == site.reg && v == new_imm && inst.end() == site.imm_addr + 4 =>
        {
            Some(patched)
        }
        _ => None,
    }
}

/// Produces a new version of `case.binary` with one function body
/// rebuilt, per `kind`. Deterministic in `(case, seed, kind)`.
///
/// Returns `None` when no function offers a verifiable patch site of
/// the requested kind (tiny corpora without eligible `mov` sites or
/// padding); callers should try another seed or configuration.
pub fn patch_function(case: &TestCase, seed: u64, kind: PatchKind) -> Option<FunctionPatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        PatchKind::Neutral | PatchKind::Behavioral => patch_imm(case, &mut rng, kind),
        PatchKind::Resize => patch_resize(case, &mut rng),
    }
}

fn patch_imm(case: &TestCase, rng: &mut StdRng, kind: PatchKind) -> Option<FunctionPatch> {
    let binary = &case.binary;
    // Rotate the candidate order by the seed so different seeds patch
    // different functions.
    let n = case.truth.functions.len();
    if n == 0 {
        return None;
    }
    let rot = rng.gen_range(0..n);
    for i in 0..n {
        let f = &case.truth.functions[(i + rot) % n];
        if f.kind != FuncKind::Compiled {
            continue;
        }
        for part in &f.parts {
            let sites = imm_sites(binary, part.start, part.end());
            if sites.is_empty() {
                continue;
            }
            let site = &sites[rng.gen_range(0..sites.len())];
            let new_imm = match kind {
                PatchKind::Neutral => {
                    let mut v = rng.gen_range(1..0x10000i32);
                    if v == site.imm {
                        v = if v == 1 { 2 } else { v - 1 };
                    }
                    v
                }
                PatchKind::Behavioral => {
                    // Another function's entry: always a `.text` address,
                    // and synthesized images load low enough to fit i32.
                    let target = case.truth.functions[rng.gen_range(0..n)].entry();
                    if target > i32::MAX as u64 || target as i32 == site.imm {
                        continue;
                    }
                    target as i32
                }
                PatchKind::Resize => unreachable!(),
            };
            let Some(patched) = rewrite_imm(binary, site, new_imm) else {
                continue;
            };
            return Some(FunctionPatch {
                binary: patched,
                truth: case.truth.clone(),
                kind,
                function: f.entry(),
                window: (site.imm_addr, site.imm_addr + 4),
            });
        }
    }
    None
}

fn patch_resize(case: &TestCase, rng: &mut StdRng) -> Option<FunctionPatch> {
    let binary = &case.binary;
    let text = binary.text();
    let eh = binary.eh_frame().ok()?;
    let part_starts = case.truth.part_starts();
    let n = case.truth.functions.len();
    if n == 0 {
        return None;
    }
    let rot = rng.gen_range(0..n);
    for i in 0..n {
        let fi = (i + rot) % n;
        let f = &case.truth.functions[fi];
        if f.kind != FuncKind::Compiled {
            continue;
        }
        for (pi, part) in f.parts.iter().enumerate() {
            if !part.has_fde || part.len == 0 {
                continue;
            }
            // The byte we grow into must be padding: inside `.text`,
            // before the next part, and not the start of anything.
            let pad = part.end();
            if !text.contains(pad) || part_starts.contains(&pad) {
                continue;
            }
            let ret_addr = part.end() - 1;
            let ret_off = (ret_addr - text.addr) as usize;
            if text.bytes[ret_off] != 0xC3 {
                continue; // body doesn't end in a plain `ret`
            }
            // Only consume a byte that looks like alignment filler (nop
            // encodings start 0x90/0x66/0x0f; mislabel padding is int3).
            if !matches!(text.bytes[ret_off + 1], 0x90 | 0x66 | 0x0f | 0xcc) {
                continue;
            }
            // ret → nop; ret (one byte longer).
            let mut bytes = text.bytes.to_vec();
            bytes[ret_off] = 0x90;
            bytes[ret_off + 1] = 0xC3;
            // Fix up the covering FDE's pc_range.
            let mut eh2 = eh.clone();
            let mut fixed = false;
            for (_, fdes) in &mut eh2.groups {
                for fde in fdes.iter_mut() {
                    if fde.pc_begin == part.start && fde.pc_range == part.len {
                        fde.pc_range += 1;
                        fixed = true;
                    }
                }
            }
            if !fixed {
                continue;
            }
            let eh_section = binary.section(SectionKind::EhFrame)?;
            let eh_bytes = encode_eh_frame(&eh2, eh_section.addr).ok()?;
            let patched = with_patched_section(
                &with_patched_section(binary, SectionKind::Text, bytes),
                SectionKind::EhFrame,
                eh_bytes,
            );
            // Verify: the rebuilt `.eh_frame` parses and covers the ret.
            let reparsed = patched.eh_frame().ok()?;
            if !reparsed.pc_begins().contains(&part.start) {
                continue;
            }
            let mut truth = case.truth.clone();
            truth.functions[fi].parts[pi].len += 1;
            return Some(FunctionPatch {
                binary: patched,
                truth,
                kind: PatchKind::Resize,
                function: f.entry(),
                window: (ret_addr, ret_addr + 2),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthConfig};

    #[test]
    fn neutral_patch_changes_text_only() {
        let case = synthesize(&SynthConfig::small(17));
        let p = patch_function(&case, 3, PatchKind::Neutral).expect("site exists");
        assert_eq!(p.kind, PatchKind::Neutral);
        assert_ne!(p.binary.text().bytes, case.binary.text().bytes);
        assert_eq!(p.binary.symbols, case.binary.symbols);
        assert_eq!(
            p.binary.section(SectionKind::EhFrame).map(|s| &s.bytes),
            case.binary.section(SectionKind::EhFrame).map(|s| &s.bytes),
        );
        // Only the 4 immediate bytes moved.
        let (a, b) = (&case.binary.text().bytes, &p.binary.text().bytes);
        assert_eq!(a.len(), b.len());
        let diff: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
        assert!(!diff.is_empty() && diff.len() <= 4, "diff: {diff:?}");
        let lo = case.binary.text().addr + diff[0] as u64;
        assert!(p.window.0 <= lo && lo < p.window.1);
    }

    #[test]
    fn behavioral_patch_materializes_a_code_address() {
        let case = synthesize(&SynthConfig::small(18));
        let p = patch_function(&case, 4, PatchKind::Behavioral).expect("site exists");
        // The new immediate is a function entry inside .text.
        let off = (p.window.0 - p.binary.text().addr) as usize;
        let imm = i32::from_le_bytes(p.binary.text().bytes[off..off + 4].try_into().unwrap());
        assert!(p.binary.is_code(imm as u64));
        assert!(case.truth.is_start(imm as u64));
    }

    #[test]
    fn resize_patch_grows_body_and_fde_together() {
        let case = synthesize(&SynthConfig::small(19));
        let p = patch_function(&case, 5, PatchKind::Resize).expect("padding exists");
        let old = case.truth.function_at(p.function).unwrap();
        let new = p.truth.function_at(p.function).unwrap();
        let grown: Vec<_> = old
            .parts
            .iter()
            .zip(&new.parts)
            .filter(|(o, n)| o.len != n.len)
            .collect();
        assert_eq!(grown.len(), 1);
        assert_eq!(grown[0].0.len + 1, grown[0].1.len);
        // The FDE tracks the new length.
        let eh = p.binary.eh_frame().unwrap();
        let covered = eh
            .groups
            .iter()
            .flat_map(|(_, f)| f)
            .any(|fde| fde.pc_begin == grown[0].1.start && fde.pc_range == grown[0].1.len);
        assert!(covered);
        // Text grew by zero bytes (we consumed padding), eh_frame changed.
        assert_eq!(p.binary.text().bytes.len(), case.binary.text().bytes.len());
        assert_ne!(
            p.binary.section(SectionKind::EhFrame).map(|s| &s.bytes),
            case.binary.section(SectionKind::EhFrame).map(|s| &s.bytes),
        );
    }

    #[test]
    fn patches_are_deterministic() {
        let case = synthesize(&SynthConfig::small(20));
        for kind in [PatchKind::Neutral, PatchKind::Behavioral, PatchKind::Resize] {
            let a = patch_function(&case, 9, kind);
            let b = patch_function(&case, 9, kind);
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.binary, b.binary);
                assert_eq!(a.window, b.window);
            }
        }
    }
}
