//! The pre-layout program model: function plans and reference targets.
//!
//! The generator ([`crate::generate_plan`]) produces a list of [`FuncPlan`]s
//! with a consistent reference graph; the code generator lowers each plan
//! to machine code; the layout engine places parts, patches references,
//! and emits `.eh_frame` + ground truth.

use fetch_binary::{FuncKind, Reach};
use fetch_x64::Reg;

/// A symbolic reference resolved at layout time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetRef {
    /// Entry of function `i`.
    Func(usize),
    /// Cold part of function `i`.
    Cold(usize),
    /// A point in the middle of function `i`'s hot part (anchor `k`) —
    /// used to synthesize identical-code-folding style entry jumps.
    Mid {
        /// Function index.
        func: usize,
        /// Anchor index within that function's recorded anchors.
        anchor: usize,
    },
    /// Jump table `k` of the same function (allocated in `.rodata`, or in
    /// `.text` when the binary embeds data in text).
    JumpTable(usize),
    /// Read-only data blob `k` (string literals etc.).
    RodataBlob(usize),
    /// A `.data` object `k` (function-pointer tables, globals).
    DataObject(usize),
}

/// Stack-frame discipline of a generated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameKind {
    /// No frame pointer: `push`es + `sub rsp, locals`. CFI heights stay
    /// complete (`DW_CFA_def_cfa_offset` at every change).
    Frameless {
        /// Callee-saved registers pushed in the prologue.
        saves: Vec<Reg>,
        /// Byte size of locals reserved with `sub rsp`.
        locals: u32,
    },
    /// `push rbp; mov rbp, rsp`: the CFI switches the CFA base to `rbp`,
    /// after which stack heights are no longer recorded — the incomplete
    /// class Algorithm 1 must skip.
    Rbp {
        /// Additional callee-saved registers pushed after `rbp`.
        saves: Vec<Reg>,
        /// Byte size of locals.
        locals: u32,
    },
}

impl FrameKind {
    /// A minimal leaf frame.
    pub fn leaf() -> FrameKind {
        FrameKind::Frameless {
            saves: Vec::new(),
            locals: 0,
        }
    }

    /// Whether the CFI for this frame keeps complete stack heights.
    pub fn cfi_heights_complete(&self) -> bool {
        matches!(self, FrameKind::Frameless { .. })
    }
}

/// One unit of body content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Chunk {
    /// `n` register-arithmetic instructions.
    Arith(u8),
    /// `n` loads/stores against the local frame.
    MemTraffic(u8),
    /// A direct call with `args` integer arguments materialized.
    Call {
        /// Callee.
        target: TargetRef,
        /// Number of argument registers loaded before the call.
        args: u8,
    },
    /// An indirect call through a `.data` function-pointer slot.
    CallIndirect {
        /// The `.data` object holding the pointer.
        table: TargetRef,
        /// Slot index within the table.
        slot: u8,
    },
    /// An `error`/`error_at_line`-style call: sets `edi` to 0 or nonzero
    /// first. With a nonzero status the callee does not return.
    CallError {
        /// The error-like callee.
        target: TargetRef,
        /// Whether the status argument is zero (the returning case).
        status_zero: bool,
    },
    /// A compare + forward conditional branch skipping `inner`.
    CondSkip {
        /// Chunks inside the skipped region.
        inner: Vec<Chunk>,
    },
    /// A small counted loop around `inner`.
    Loop {
        /// Chunks inside the loop body.
        inner: Vec<Chunk>,
    },
    /// A bounds-checked jump table with `cases` targets (the classic
    /// `cmp/ja/lea/movsxd/add/jmp` idiom, §IV-C).
    JumpTable {
        /// Number of cases (≥ 2).
        cases: u8,
    },
    /// The conditional branch into the function's cold part.
    ColdBranch,
    /// Records an anchor (a point a bad-thunk may target).
    MidAnchor,
    /// A `lea` taking the address of another function (a code-borne
    /// function pointer, collected by the §IV-E constant scan).
    TakeAddress {
        /// Function whose address is materialized.
        target: TargetRef,
    },
}

/// What unwind record the layout emits for a part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdePolicy {
    /// Accurate FDE with CFI mirroring the real stack operations.
    Accurate,
    /// No FDE (hand-written assembly without CFI directives).
    None,
    /// Figure-6b style: FDE present but `PC Begin` is one byte before the
    /// true start and the program consists of `DW_CFA_expression`s.
    Mislabeled,
}

/// How the function's body ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ending {
    /// Normal epilogue + `ret`.
    Ret,
    /// Epilogue + `jmp target` — a tail call.
    TailCall {
        /// Tail-callee.
        target: TargetRef,
    },
    /// Call to a non-returning function followed by no epilogue.
    NoReturnCall {
        /// The non-returning callee.
        target: TargetRef,
    },
    /// `mov edi, 1; call error_like` — an `error`/`error_at_line` call
    /// whose nonzero status makes it non-returning (§IV-C special case).
    ErrorNoReturn {
        /// The conditionally non-returning callee.
        target: TargetRef,
    },
    /// The function itself never returns: it ends in `ud2` after its body
    /// (abort-style primitive).
    Halt,
    /// `syscall; ret` stub (assembly flavour).
    SyscallRet,
}

/// A complete plan for one source-level function.
#[derive(Debug, Clone)]
pub struct FuncPlan {
    /// Symbol name.
    pub name: String,
    /// Provenance class recorded in ground truth.
    pub kind: FuncKind,
    /// Reference class recorded in ground truth (the generator keeps the
    /// actual reference graph consistent with it).
    pub reach: Reach,
    /// Stack frame discipline.
    pub frame: FrameKind,
    /// Hot-part body.
    pub chunks: Vec<Chunk>,
    /// Cold-part body, if the function is split (non-contiguous).
    pub cold_chunks: Option<Vec<Chunk>>,
    /// How the hot part ends.
    pub ending: Ending,
    /// Unwind-record policy for the hot part (cold parts inherit
    /// `Accurate`/`None` from it).
    pub fde: FdePolicy,
    /// Whether a symbol is emitted for this function.
    pub symbol: bool,
    /// Whether the function starts with `endbr64`.
    pub endbr: bool,
    /// Whether this function is non-returning (affects callers' CFGs).
    pub noreturn: bool,
    /// Whether this models `error`: non-returning only when the first
    /// argument is nonzero (§IV-C's special case).
    pub conditional_noreturn: bool,
}

impl FuncPlan {
    /// A minimal plan useful for tests: a leaf function that returns.
    pub fn stub(name: &str) -> FuncPlan {
        FuncPlan {
            name: name.to_string(),
            kind: FuncKind::Compiled,
            reach: Reach::Called,
            frame: FrameKind::leaf(),
            chunks: vec![Chunk::Arith(2)],
            cold_chunks: None,
            ending: Ending::Ret,
            fde: FdePolicy::Accurate,
            symbol: true,
            endbr: false,
            noreturn: false,
            conditional_noreturn: false,
        }
    }

    /// Whether the plan produces a non-contiguous function.
    pub fn is_split(&self) -> bool {
        self.cold_chunks.is_some()
    }
}

/// A blob of non-code bytes placed in `.text` after a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextBlob {
    /// Placed after the hot part of this function index.
    pub after_func: usize,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// The whole pre-layout program.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    /// Function plans; index is the [`TargetRef::Func`] namespace.
    /// Bad thunks (jumps into the middle of other functions) are ordinary
    /// plans with a [`TargetRef::Mid`] tail-call ending.
    pub funcs: Vec<FuncPlan>,
    /// Data blobs embedded in `.text`.
    pub text_blobs: Vec<TextBlob>,
    /// `.data` function-pointer tables: each entry is a list of function
    /// indices whose absolute addresses are stored.
    pub pointer_tables: Vec<Vec<usize>>,
}
