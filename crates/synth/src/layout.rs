//! Final layout: place hot parts, cold parts, tables and blobs; patch all
//! references; emit `.eh_frame`, symbols, and the ground truth.

use crate::codegen::{FuncCode, StackEvent};
use crate::config::SynthConfig;
use crate::plan::{FdePolicy, ProgramPlan, TargetRef};
use fetch_binary::{
    Binary, FunctionTruth, GroundTruth, Part, Section, SectionKind, Symbol, TestCase,
};
use fetch_ehframe::{encode_eh_frame, CfiInst, Cie, EhFrame, Fde};
use fetch_x64::{nop_bytes, FixupKind, Reg};
use rand::rngs::StdRng;
use rand::Rng;

/// Base virtual address of `.text` (conventional for non-PIE executables).
pub const TEXT_BASE: u64 = 0x40_1000;

/// Builds the CFI program for a part from its stack-event trace.
///
/// Frameless functions produce a `DW_CFA_def_cfa_offset` at every height
/// change (complete heights); `mov rbp, rsp` switches the CFA base to
/// `rbp`, after which height changes are no longer recorded — exactly the
/// incomplete class the paper's Algorithm 1 skips (§V-B).
pub fn build_cfis(events: &[(usize, StackEvent)]) -> Vec<CfiInst> {
    let mut out = Vec::new();
    let mut cfa_off: i64 = 8;
    let mut last_loc = 0usize;
    let mut rbp_based = false;
    for &(off, ev) in events {
        let mut emits: Vec<CfiInst> = Vec::new();
        match ev {
            StackEvent::Push(r) => {
                cfa_off += 8;
                if !rbp_based {
                    emits.push(CfiInst::DefCfaOffset {
                        offset: cfa_off as u64,
                    });
                }
                if r.is_callee_saved() {
                    emits.push(CfiInst::Offset {
                        reg: r,
                        factored: (cfa_off / 8) as u64,
                    });
                }
            }
            StackEvent::Pop(_) => {
                cfa_off -= 8;
                if !rbp_based {
                    emits.push(CfiInst::DefCfaOffset {
                        offset: cfa_off as u64,
                    });
                }
            }
            StackEvent::SubRsp(n) => {
                cfa_off += n as i64;
                if !rbp_based {
                    emits.push(CfiInst::DefCfaOffset {
                        offset: cfa_off as u64,
                    });
                }
            }
            StackEvent::AddRsp(n) => {
                cfa_off -= n as i64;
                if !rbp_based {
                    emits.push(CfiInst::DefCfaOffset {
                        offset: cfa_off as u64,
                    });
                }
            }
            StackEvent::SetRbp => {
                rbp_based = true;
                emits.push(CfiInst::DefCfaRegister { reg: Reg::Rbp });
            }
            StackEvent::Leave => {
                rbp_based = false;
                cfa_off = 8;
                emits.push(CfiInst::DefCfa {
                    reg: Reg::Rsp,
                    offset: 8,
                });
            }
        }
        if !emits.is_empty() {
            let delta = (off - last_loc) as u64;
            if delta > 0 {
                out.push(CfiInst::AdvanceLoc { delta });
                last_loc = off;
            }
            out.append(&mut emits);
        }
    }
    out
}

#[derive(Clone)]
struct PlacedPart {
    addr: u64,
    len: u64,
}

/// Lays a lowered program out into a [`TestCase`].
pub fn layout(
    plan: &ProgramPlan,
    codes: &[FuncCode],
    cfg: &SynthConfig,
    rng: &mut StdRng,
) -> TestCase {
    assert_eq!(plan.funcs.len(), codes.len());
    let n = codes.len();
    let align = cfg.rates.align.max(1);

    // ---------- pass 1: place hot parts, text blobs, in-text tables ----------
    let mut text: Vec<u8> = Vec::new();
    let mut hot: Vec<PlacedPart> = Vec::with_capacity(n);
    // (func, jt index) -> table address; filled during placement.
    let mut jt_addr: Vec<Vec<u64>> = vec![Vec::new(); n];
    // Jump tables assigned to .rodata wait for its base address.
    let mut rodata_tables: Vec<(usize, usize, usize)> = Vec::new(); // (func, jt, rodata_off)
    let mut rodata: Vec<u8> = Vec::new();

    let pad_to = |text: &mut Vec<u8>, align: u64, fill_int3: bool| {
        while !(TEXT_BASE + text.len() as u64).is_multiple_of(align) {
            if fill_int3 {
                text.push(0xcc);
            } else {
                let need = (align - (TEXT_BASE + text.len() as u64) % align) as usize;
                let take = need.min(9);
                text.extend_from_slice(nop_bytes(take as u8).expect("1..=9"));
            }
        }
    };

    for (i, code) in codes.iter().enumerate() {
        // Mislabeled FDEs point one byte before the start; guarantee the
        // preceding byte is an int3 so the bogus block is visibly invalid.
        let int3_pad = plan.funcs[i].fde == FdePolicy::Mislabeled;
        pad_to(&mut text, align, int3_pad);
        if int3_pad && (TEXT_BASE + text.len() as u64).is_multiple_of(align) && text.is_empty() {
            text.push(0xcc); // never place a mislabeled function first
        }
        if int3_pad && !text.is_empty() && *text.last().unwrap() != 0xcc {
            *text.last_mut().unwrap() = 0xcc;
        }
        let addr = TEXT_BASE + text.len() as u64;
        text.extend_from_slice(&code.hot.bytes);
        hot.push(PlacedPart {
            addr,
            len: code.hot.bytes.len() as u64,
        });

        // Jump tables: in text right after the function, or deferred to
        // .rodata, decided per table.
        for (k, jt) in code.hot.jump_tables.iter().enumerate() {
            let in_text = rng.gen_bool(cfg.rates.data_in_text.min(1.0));
            if in_text {
                let taddr = TEXT_BASE + text.len() as u64;
                for &case_off in &jt.case_offsets {
                    let target = addr + case_off as u64;
                    let rel = (target as i64 - taddr as i64) as i32;
                    text.extend_from_slice(&rel.to_le_bytes());
                }
                jt_addr[i].push(taddr);
            } else {
                rodata_tables.push((i, k, rodata.len()));
                jt_addr[i].push(0); // patched once rodata base is known
                rodata.extend_from_slice(&vec![0u8; jt.case_offsets.len() * 4]);
            }
        }

        // Text blob after this function?
        for blob in plan.text_blobs.iter().filter(|b| b.after_func == i) {
            text.extend_from_slice(&blob.bytes);
        }
    }

    // ---------- pass 2: cold zone ----------
    let mut cold: Vec<Option<PlacedPart>> = vec![None; n];
    pad_to(&mut text, align, false);
    for (i, code) in codes.iter().enumerate() {
        if let Some(c) = &code.cold {
            pad_to(&mut text, 8, false);
            let addr = TEXT_BASE + text.len() as u64;
            text.extend_from_slice(&c.bytes);
            cold[i] = Some(PlacedPart {
                addr,
                len: c.bytes.len() as u64,
            });
            assert!(
                c.jump_tables.is_empty(),
                "cold parts carry no jump tables in the generator"
            );
        }
    }

    // ---------- section base addresses ----------
    let page = 0x1000u64;
    let rodata_base = (TEXT_BASE + text.len() as u64 + page) / page * page;
    // Rodata blobs follow the deferred jump tables.
    let mut rodata_blob_addr: Vec<u64> = Vec::new();
    {
        // Patch deferred tables now that the base is known.
        for &(f, k, off) in &rodata_tables {
            jt_addr[f][k] = rodata_base + off as u64;
        }
        // Add string-ish blobs referenced by TakeAddress/RodataBlob.
        for _ in 0..8 {
            rodata_blob_addr.push(rodata_base + rodata.len() as u64);
            let len = rng.gen_range(8..64);
            for _ in 0..len {
                rodata.push(rng.gen_range(0x20..0x7f));
            }
            rodata.push(0);
        }
    }
    let data_base = (rodata_base + rodata.len() as u64 + page) / page * page;

    // ---------- .data: pointer tables ----------
    let mut data: Vec<u8> = Vec::new();
    let mut data_obj_addr: Vec<u64> = Vec::new();
    for table in &plan.pointer_tables {
        data_obj_addr.push(data_base + data.len() as u64);
        for &f in table {
            data.extend_from_slice(&hot[f].addr.to_le_bytes());
        }
        // Interleave non-pointer payload so the scan must validate.
        for _ in 0..rng.gen_range(1..4) {
            data.extend_from_slice(&rng.gen_range(0u64..0x10000).to_le_bytes());
        }
    }
    if data.is_empty() {
        data.extend_from_slice(&0u64.to_le_bytes());
    }

    // ---------- pass 3: patch fixups ----------
    let resolve = |t: TargetRef, func: usize| -> u64 {
        match t {
            TargetRef::Func(i) => hot[i].addr,
            TargetRef::Cold(i) => cold[i].as_ref().expect("cold part exists").addr,
            TargetRef::Mid { func, anchor } => {
                hot[func].addr + codes[func].hot.anchors[anchor] as u64
            }
            TargetRef::JumpTable(k) => jt_addr[func][k],
            TargetRef::RodataBlob(k) => rodata_blob_addr[k % rodata_blob_addr.len()],
            TargetRef::DataObject(k) => data_obj_addr[k % data_obj_addr.len().max(1)],
        }
    };
    for (i, code) in codes.iter().enumerate() {
        let parts: [(Option<&PlacedPart>, Option<&crate::codegen::PartCode>); 2] = [
            (Some(&hot[i]), Some(&code.hot)),
            (cold[i].as_ref(), code.cold.as_ref()),
        ];
        for (placed, part) in parts.into_iter() {
            let (Some(placed), Some(part)) = (placed, part) else {
                continue;
            };
            for fix in &part.fixups {
                let target_addr = resolve(fix.target, i);
                let field_off = (placed.addr - TEXT_BASE) as usize + fix.pos;
                match fix.kind {
                    FixupKind::Rel32 | FixupKind::RipDisp32 => {
                        let field_addr = TEXT_BASE + field_off as u64;
                        let rel = target_addr.wrapping_sub(field_addr + 4) as i64;
                        let rel = i32::try_from(rel).expect("layout stays within ±2GiB");
                        text[field_off..field_off + 4].copy_from_slice(&rel.to_le_bytes());
                    }
                    FixupKind::Abs64 => {
                        text[field_off..field_off + 8].copy_from_slice(&target_addr.to_le_bytes());
                    }
                }
            }
        }
    }
    // Fill deferred .rodata jump tables (entries relative to table base).
    for &(f, k, off) in &rodata_tables {
        let taddr = rodata_base + off as u64;
        for (ci, &case_off) in codes[f].hot.jump_tables[k].case_offsets.iter().enumerate() {
            let target = hot[f].addr + case_off as u64;
            let rel = (target as i64 - taddr as i64) as i32;
            rodata[off + ci * 4..off + ci * 4 + 4].copy_from_slice(&rel.to_le_bytes());
        }
    }

    // ---------- pass 4: eh_frame ----------
    let mut eh = EhFrame::new();
    let mut current: Vec<Fde> = Vec::new();
    let group_size = 16 + (cfg.seed as usize % 9);
    for (i, code) in codes.iter().enumerate() {
        match plan.funcs[i].fde {
            FdePolicy::Accurate => {
                current.push(Fde {
                    pc_begin: hot[i].addr,
                    pc_range: hot[i].len,
                    cfis: build_cfis(&code.hot.events),
                });
                if let Some(c) = &cold[i] {
                    let h = codes[i].cold_entry_height as u64;
                    let cfis = if plan.funcs[i].frame.cfi_heights_complete() {
                        vec![CfiInst::DefCfaOffset { offset: h + 8 }]
                    } else {
                        vec![CfiInst::DefCfa {
                            reg: Reg::Rbp,
                            offset: 16,
                        }]
                    };
                    current.push(Fde {
                        pc_begin: c.addr,
                        pc_range: c.len,
                        cfis,
                    });
                }
            }
            FdePolicy::None => {}
            FdePolicy::Mislabeled => {
                // Figure 6b: PC Begin one byte before the true start, with
                // expression-based register rules.
                current.push(Fde {
                    pc_begin: hot[i].addr - 1,
                    pc_range: hot[i].len + 1,
                    cfis: vec![
                        CfiInst::Expression {
                            reg: Reg::R8,
                            expr: vec![0x77, 40],
                        },
                        CfiInst::Expression {
                            reg: Reg::R9,
                            expr: vec![0x77, 48],
                        },
                    ],
                });
            }
        }
        if current.len() >= group_size {
            eh.groups
                .push((Cie::default(), std::mem::take(&mut current)));
        }
    }
    if !current.is_empty() {
        eh.groups.push((Cie::default(), current));
    }
    let eh_base = (data_base + data.len() as u64 + page) / page * page;
    let eh_bytes = encode_eh_frame(&eh, eh_base)
        .expect("synthesized layouts stay within the ±2GiB pcrel window");

    // ---------- pass 5: symbols + ground truth ----------
    let mut symbols = Vec::new();
    let mut functions = Vec::new();
    for (i, p) in plan.funcs.iter().enumerate() {
        let mut parts = vec![Part {
            start: hot[i].addr,
            len: hot[i].len,
            has_fde: p.fde != FdePolicy::None,
            has_symbol: p.symbol,
        }];
        if p.symbol {
            symbols.push(Symbol {
                name: p.name.clone(),
                addr: hot[i].addr,
                size: hot[i].len,
            });
        }
        if let Some(c) = &cold[i] {
            parts.push(Part {
                start: c.addr,
                len: c.len,
                has_fde: p.fde == FdePolicy::Accurate,
                has_symbol: p.symbol,
            });
            if p.symbol {
                symbols.push(Symbol {
                    name: format!("{}.cold", p.name),
                    addr: c.addr,
                    size: c.len,
                });
            }
        }
        functions.push(FunctionTruth {
            name: p.name.clone(),
            kind: p.kind,
            reach: p.reach,
            parts,
        });
    }

    let binary = Binary {
        name: cfg.name.clone(),
        info: cfg.info.clone(),
        sections: vec![
            Section::new(SectionKind::Text, TEXT_BASE, text),
            Section::new(SectionKind::Rodata, rodata_base, rodata),
            Section::new(SectionKind::Data, data_base, data),
            Section::new(SectionKind::EhFrame, eh_base, eh_bytes),
        ],
        symbols: if cfg.symbols { symbols } else { Vec::new() },
        entry: hot[0].addr,
    };

    TestCase {
        binary,
        truth: GroundTruth { functions },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_ehframe::stack_heights;

    #[test]
    fn build_cfis_matches_figure_4b_shape() {
        // push rbp(1) .. push rbx(13) .. sub rsp,8(24) .. add(53) pop(54) pop(55)
        let events = vec![
            (1, StackEvent::Push(Reg::Rbp)),
            (13, StackEvent::Push(Reg::Rbx)),
            (24, StackEvent::SubRsp(8)),
            (53, StackEvent::AddRsp(8)),
            (54, StackEvent::Pop(Reg::Rbx)),
            (55, StackEvent::Pop(Reg::Rbp)),
        ];
        let cfis = build_cfis(&events);
        assert_eq!(
            cfis,
            vec![
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::Offset {
                    reg: Reg::Rbp,
                    factored: 2
                },
                CfiInst::AdvanceLoc { delta: 12 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::Offset {
                    reg: Reg::Rbx,
                    factored: 3
                },
                CfiInst::AdvanceLoc { delta: 11 },
                CfiInst::DefCfaOffset { offset: 32 },
                CfiInst::AdvanceLoc { delta: 29 },
                CfiInst::DefCfaOffset { offset: 24 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 16 },
                CfiInst::AdvanceLoc { delta: 1 },
                CfiInst::DefCfaOffset { offset: 8 },
            ]
        );
    }

    #[test]
    fn rbp_frame_cfis_are_incomplete() {
        let events = vec![
            (1, StackEvent::Push(Reg::Rbp)),
            (4, StackEvent::SetRbp),
            (8, StackEvent::SubRsp(32)),
            (40, StackEvent::Leave),
        ];
        let cfis = build_cfis(&events);
        let fde = Fde {
            pc_begin: 0x1000,
            pc_range: 0x40,
            cfis,
        };
        let cie = Cie::default();
        assert_eq!(stack_heights(&cie, &fde).unwrap(), None);
    }

    #[test]
    fn frameless_cfis_are_complete() {
        let events = vec![
            (2, StackEvent::Push(Reg::Rbx)),
            (6, StackEvent::SubRsp(24)),
            (30, StackEvent::AddRsp(24)),
            (31, StackEvent::Pop(Reg::Rbx)),
        ];
        let fde = Fde {
            pc_begin: 0x1000,
            pc_range: 0x40,
            cfis: build_cfis(&events),
        };
        let h = stack_heights(&Cie::default(), &fde)
            .unwrap()
            .expect("complete");
        assert_eq!(h.height_at(0x1000), Some(0));
        assert_eq!(h.height_at(0x1002), Some(8));
        assert_eq!(h.height_at(0x1006), Some(32));
        assert_eq!(h.height_at(0x1000 + 31), Some(0));
    }
}
