//! Corpus builders mirroring the paper's two datasets (§IV-A).
//!
//! Dataset 1: 43 binaries "from the wild" (Table I), 11 of which have
//! usable symbols. Dataset 2: 179 programs from 22 open-source projects
//! compiled into 1,352 binaries with GCC/Clang at O2/O3/Os/Ofast
//! (Table II). Project profiles carry the features that matter to the
//! experiments: hand-written assembly counts, language, and size class.

use crate::config::{FeatureRates, SynthConfig};
use crate::synthesize;
use fetch_binary::{BuildInfo, Compiler, Lang, OptLevel, TestCase};

/// Size/feature profile of a Dataset-2 project (one Table II row).
#[derive(Debug, Clone)]
pub struct ProjectProfile {
    /// Project name, e.g. `"Coreutils-8.30"`.
    pub name: &'static str,
    /// Project type column of Table II.
    pub ptype: &'static str,
    /// Number of distinct programs built from the project.
    pub programs: usize,
    /// Number of binaries this project contributes to the corpus
    /// (programs × the build configurations that succeed for it).
    pub bins: usize,
    /// Source language.
    pub lang: Lang,
    /// Functions per program at scale 1.0.
    pub funcs: usize,
    /// Hand-written assembly functions per program (OpenSSL/glibc-style
    /// infrastructure projects; 0 elsewhere — §IV-B).
    pub asm_funcs: usize,
    /// Figure-6b style mislabeled FDEs per program.
    pub mislabeled: usize,
}

/// The 22 projects of Table II. `bins` sums to 1,352.
pub const DATASET2: &[ProjectProfile] = &[
    ProjectProfile {
        name: "Coreutils-8.30",
        ptype: "Utilities",
        programs: 105,
        bins: 840,
        lang: Lang::C,
        funcs: 70,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Findutils-4.4",
        ptype: "Utilities",
        programs: 3,
        bins: 24,
        lang: Lang::C,
        funcs: 90,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Binutils-2.26",
        ptype: "Utilities",
        programs: 17,
        bins: 136,
        lang: Lang::Cpp,
        funcs: 160,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Openssl-1.1.0l",
        ptype: "Client",
        programs: 1,
        bins: 4,
        lang: Lang::C,
        funcs: 300,
        asm_funcs: 60,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "D8-6.4",
        ptype: "Client",
        programs: 1,
        bins: 4,
        lang: Lang::Cpp,
        funcs: 400,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Busybox-1.31",
        ptype: "Client",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 250,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Protobuf-c-1",
        ptype: "Client",
        programs: 1,
        bins: 6,
        lang: Lang::Cpp,
        funcs: 120,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "ZSH-5.7.1",
        ptype: "Client",
        programs: 1,
        bins: 2,
        lang: Lang::C,
        funcs: 200,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Openssh-8.0",
        ptype: "Client",
        programs: 7,
        bins: 28,
        lang: Lang::C,
        funcs: 130,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Mysql-5.7.27",
        ptype: "Client",
        programs: 1,
        bins: 6,
        lang: Lang::Cpp,
        funcs: 350,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Git-2.23",
        ptype: "Client",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 280,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "filezilla-3.44.2",
        ptype: "Client",
        programs: 1,
        bins: 4,
        lang: Lang::Cpp,
        funcs: 260,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Lighttpd-1.4.54",
        ptype: "Server",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 150,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Mysqld-5.7.27",
        ptype: "Server",
        programs: 1,
        bins: 6,
        lang: Lang::Cpp,
        funcs: 450,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Nginx-1.15.0",
        ptype: "Server",
        programs: 1,
        bins: 6,
        lang: Lang::C,
        funcs: 220,
        asm_funcs: 8,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "Glibc-2.27",
        ptype: "Library",
        programs: 1,
        bins: 3,
        lang: Lang::C,
        funcs: 320,
        asm_funcs: 40,
        mislabeled: 1,
    },
    ProjectProfile {
        name: "libpcap-1.9.0",
        ptype: "Library",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 110,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "libv8-6.4",
        ptype: "Library",
        programs: 1,
        bins: 4,
        lang: Lang::Cpp,
        funcs: 380,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "libtiff-4.0.10",
        ptype: "Library",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 120,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "libxml2-2.9.8",
        ptype: "Library",
        programs: 1,
        bins: 8,
        lang: Lang::C,
        funcs: 180,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "libprotobuf-c-1",
        ptype: "Library",
        programs: 1,
        bins: 8,
        lang: Lang::Cpp,
        funcs: 100,
        asm_funcs: 0,
        mislabeled: 0,
    },
    ProjectProfile {
        name: "SPEC CPU2006",
        ptype: "Benchmark",
        programs: 30,
        bins: 223,
        lang: Lang::Cpp,
        funcs: 140,
        asm_funcs: 0,
        mislabeled: 0,
    },
];

/// One Table I row (Dataset 1, binaries from the wild).
#[derive(Debug, Clone)]
pub struct WildProfile {
    /// Software name.
    pub name: &'static str,
    /// Open-source column.
    pub open: bool,
    /// Whether symbols are available (the 11 usable binaries).
    pub symbols: bool,
    /// Source language.
    pub lang: Lang,
    /// Functions at scale 1.0.
    pub funcs: usize,
}

/// The 43 wild binaries of Table I.
pub const DATASET1: &[WildProfile] = &[
    WildProfile {
        name: "Atom-1.49.0",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 420,
    },
    WildProfile {
        name: "Simplenot-1.4.13",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 180,
    },
    WildProfile {
        name: "OpenShot-2.4.4",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 200,
    },
    WildProfile {
        name: "seamonkey-2.49.5",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 400,
    },
    WildProfile {
        name: "mupdf-1.16.1",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 300,
    },
    WildProfile {
        name: "laverna-0.7.1",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 160,
    },
    WildProfile {
        name: "franz-5.4.0",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 170,
    },
    WildProfile {
        name: "Nightingale-1.12.1",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 190,
    },
    WildProfile {
        name: "palemoon-28.8.0",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 380,
    },
    WildProfile {
        name: "evince-3.34.3",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 210,
    },
    WildProfile {
        name: "amarok-2.9.0",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 230,
    },
    WildProfile {
        name: "deadbeef-1.8.2",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 150,
    },
    WildProfile {
        name: "qBittorrent-4.2.5",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 260,
    },
    WildProfile {
        name: "pdftex-3.14159265",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 240,
    },
    WildProfile {
        name: "eclipse-4.11",
        open: true,
        symbols: false,
        lang: Lang::C,
        funcs: 200,
    },
    WildProfile {
        name: "VS Code-1.40.2",
        open: true,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 350,
    },
    WildProfile {
        name: "VirtualBox-5.2.34",
        open: true,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 330,
    },
    WildProfile {
        name: "gv-3.7.4",
        open: true,
        symbols: true,
        lang: Lang::C,
        funcs: 120,
    },
    WildProfile {
        name: "okular-1.3.3",
        open: true,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 250,
    },
    WildProfile {
        name: "gcc-7.5",
        open: true,
        symbols: true,
        lang: Lang::C,
        funcs: 360,
    },
    WildProfile {
        name: "wkhtmltopdf-0.12.4",
        open: true,
        symbols: true,
        lang: Lang::C,
        funcs: 230,
    },
    WildProfile {
        name: "firefox-78.0.2",
        open: true,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 450,
    },
    WildProfile {
        name: "qemu-system-2.11.1",
        open: true,
        symbols: true,
        lang: Lang::C,
        funcs: 380,
    },
    WildProfile {
        name: "ThunderBird-68.10.0",
        open: true,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 400,
    },
    WildProfile {
        name: "Smuxi-Server",
        open: true,
        symbols: true,
        lang: Lang::C,
        funcs: 140,
    },
    WildProfile {
        name: "TeamViewer-15.0.8397",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 280,
    },
    WildProfile {
        name: "skype-8.55.0.141",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 300,
    },
    WildProfile {
        name: "trillian-6.1.0.5",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 220,
    },
    WildProfile {
        name: "opera-65.0.3467.69",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 380,
    },
    WildProfile {
        name: "yandex-browser-19.12.3",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 360,
    },
    WildProfile {
        name: "SpiderOakONE-7.5.01",
        open: false,
        symbols: false,
        lang: Lang::C,
        funcs: 200,
    },
    WildProfile {
        name: "slack-4.2.0",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 260,
    },
    WildProfile {
        name: "rainlendar2-2.15.2",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 180,
    },
    WildProfile {
        name: "sublime-3211",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 270,
    },
    WildProfile {
        name: "netease-cloud-music-1.2.1",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 240,
    },
    WildProfile {
        name: "wps-11.1.0.8865",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 320,
    },
    WildProfile {
        name: "wpp-11.1.0.8865",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 300,
    },
    WildProfile {
        name: "wpspdf-11.1.0.8865",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 280,
    },
    WildProfile {
        name: "wpsoffice-11.1.0.8865",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 340,
    },
    WildProfile {
        name: "ida64-7.2",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 330,
    },
    WildProfile {
        name: "zoom-7.19.2020",
        open: false,
        symbols: false,
        lang: Lang::Cpp,
        funcs: 310,
    },
    WildProfile {
        name: "binaryninja-1.2",
        open: false,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 320,
    },
    WildProfile {
        name: "FoxitReader-4.4.0911",
        open: false,
        symbols: true,
        lang: Lang::Cpp,
        funcs: 290,
    },
];

/// Scaling knobs: divide binary counts and multiply function counts to fit
/// a time budget. `CorpusScale::default()` reproduces the full corpus
/// structure at reduced per-binary size.
#[derive(Debug, Clone)]
pub struct CorpusScale {
    /// Keep one of every `bin_divisor` binaries per project (min 1).
    pub bin_divisor: usize,
    /// Multiplier on per-binary function counts.
    pub func_scale: f64,
}

impl Default for CorpusScale {
    fn default() -> Self {
        CorpusScale {
            bin_divisor: 1,
            func_scale: 0.5,
        }
    }
}

impl CorpusScale {
    /// A fast scale for unit/integration tests: ~1/16 of the binaries at
    /// ~1/4 function counts.
    pub fn tiny() -> CorpusScale {
        CorpusScale {
            bin_divisor: 16,
            func_scale: 0.25,
        }
    }

    /// The paper-faithful scale (all 1,352 binaries, full sizes).
    pub fn paper() -> CorpusScale {
        CorpusScale {
            bin_divisor: 1,
            func_scale: 1.0,
        }
    }
}

fn stable_seed(parts: &[&str]) -> u64 {
    // FNV-1a over the joined parts: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0x2f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The eight (compiler, opt) build configurations of Dataset 2.
pub fn build_matrix() -> Vec<(Compiler, OptLevel)> {
    let mut v = Vec::new();
    for c in Compiler::ALL {
        for o in OptLevel::ALL {
            v.push((c, o));
        }
    }
    v
}

/// Generates the [`SynthConfig`]s of Dataset 2 (self-built binaries,
/// Table II). The result is deterministic; pass it to [`synthesize`]
/// (or [`synthesize_all`]) to materialize binaries.
pub fn dataset2_configs(scale: &CorpusScale) -> Vec<SynthConfig> {
    let matrix = build_matrix();
    let mut out = Vec::new();
    for proj in DATASET2 {
        let base = (proj.bins / proj.programs).max(1);
        let remainder = proj.bins.saturating_sub(base * proj.programs);
        let mut ix = 0usize;
        for prog in 0..proj.programs {
            // Early programs absorb the remainder so counts sum to `bins`.
            let per_prog = base + usize::from(prog < remainder);
            for k in 0..per_prog {
                ix += 1;
                // Keep every `bin_divisor`-th binary, anchored so each
                // project contributes at least its first build (small
                // projects must not vanish at coarse scales — they carry
                // the assembly-function phenomena).
                if !(ix - 1).is_multiple_of(scale.bin_divisor) {
                    continue;
                }
                // Stagger the build matrix by program index so reduced
                // corpora (which keep each program's first build) still
                // cover every compiler/opt combination.
                let (compiler, opt) = matrix[(k + prog) % matrix.len()];
                let mut rates = FeatureRates::default().tuned_for(opt);
                // Hot/cold splitting concentrates in large translation
                // units (§V-A: mysqld alone contributes thousands of FDE
                // false positives while most coreutils have none).
                rates.split_cold *= match proj.funcs {
                    0..=99 => 0.15,
                    100..=249 => 1.0,
                    _ => 1.5,
                };
                // Assembly populations scale with the rest of the
                // program so reduced corpora keep the paper's ratios.
                rates.asm_funcs = (proj.asm_funcs as f64 * scale.func_scale).round() as usize;
                // error()/error_at_line() usage clusters in the GNU
                // utilities; most other projects barely touch it. This
                // concentrates GHIDRA's control-flow-repair damage in
                // specific binaries, as the paper observes (§IV-C).
                rates.error_calls = match proj.ptype {
                    "Utilities" => 0.30,
                    _ => 0.01,
                };
                if proj.asm_funcs > 0 {
                    rates.asm_funcs = rates.asm_funcs.max(3);
                }
                rates.mislabeled_fdes = proj.mislabeled;
                // A couple of ICF thunks appear in big C++ builds.
                rates.bad_thunks = if proj.funcs >= 300 { 2 } else { 0 };
                let n_funcs = ((proj.funcs as f64 * scale.func_scale) as usize).max(12);
                out.push(SynthConfig {
                    seed: stable_seed(&[proj.name, &prog.to_string(), &k.to_string()]),
                    name: format!("{}/{}-{}-{}", proj.name, prog, compiler, opt),
                    n_funcs,
                    rates,
                    info: BuildInfo {
                        compiler,
                        opt,
                        lang: proj.lang,
                    },
                    symbols: true,
                });
            }
        }
    }
    out
}

/// Generates Dataset 1 (wild binaries, Table I): pre-built binaries with
/// diverse compilers; only some carry symbols. Returns the profile next
/// to each configuration so Table I can print its metadata columns.
pub fn dataset1_configs(scale: &CorpusScale) -> Vec<(&'static WildProfile, SynthConfig)> {
    DATASET1
        .iter()
        .map(|w| {
            let opt = match stable_seed(&[w.name]) % 3 {
                0 => OptLevel::O2,
                1 => OptLevel::O3,
                _ => OptLevel::Os,
            };
            let mut rates = FeatureRates::default().tuned_for(opt);
            rates.bad_thunks = if w.funcs >= 300 { 1 } else { 0 };
            let cfg = SynthConfig {
                seed: stable_seed(&["wild", w.name]),
                name: w.name.to_string(),
                n_funcs: ((w.funcs as f64 * scale.func_scale) as usize).max(12),
                rates,
                info: BuildInfo {
                    compiler: if stable_seed(&[w.name, "c"]).is_multiple_of(2) {
                        Compiler::Gcc
                    } else {
                        Compiler::Clang
                    },
                    opt,
                    lang: w.lang,
                },
                symbols: w.symbols,
            };
            (w, cfg)
        })
        .collect()
}

/// Synthesizes a batch of configurations in parallel using scoped threads.
pub fn synthesize_all(configs: &[SynthConfig]) -> Vec<TestCase> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = configs.len().div_ceil(threads.max(1)).max(1);
    let mut out: Vec<Option<TestCase>> = vec![None; configs.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let cfgs = &configs[t * chunk..(t * chunk + slice.len()).min(configs.len())];
            handles.push(s.spawn(move || {
                for (slot, cfg) in slice.iter_mut().zip(cfgs) {
                    *slot = Some(synthesize(cfg));
                }
            }));
        }
        for h in handles {
            h.join().expect("synthesis thread panicked");
        }
    });
    out.into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset2_full_size_matches_table_ii() {
        let configs = dataset2_configs(&CorpusScale {
            bin_divisor: 1,
            func_scale: 0.1,
        });
        let expected: usize = DATASET2.iter().map(|p| p.bins).sum();
        assert_eq!(expected, 1352, "Table II total");
        assert_eq!(configs.len(), expected);
    }

    #[test]
    fn dataset1_has_43_binaries_11_with_symbols() {
        let configs = dataset1_configs(&CorpusScale::tiny());
        assert_eq!(configs.len(), 43);
        let with_syms = configs.iter().filter(|(w, _)| w.symbols).count();
        assert_eq!(with_syms, 11);
    }

    #[test]
    fn configs_are_deterministic() {
        let a = dataset2_configs(&CorpusScale::tiny());
        let b = dataset2_configs(&CorpusScale::tiny());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn synthesize_all_small_batch() {
        let configs: Vec<SynthConfig> = dataset2_configs(&CorpusScale::tiny())
            .into_iter()
            .take(6)
            .collect();
        let cases = synthesize_all(&configs);
        assert_eq!(cases.len(), 6);
        for c in &cases {
            assert!(c.binary.has_eh_frame());
            assert!(c.truth.len() >= 12);
        }
    }
}
