//! Generation parameters: feature rates and per-binary configuration.
//!
//! Rates are calibrated so the synthetic corpus exhibits the phenomena the
//! paper measures at comparable relative frequencies (see DESIGN.md §1 for
//! the substitution argument and §3 for the calibration targets).

use fetch_binary::{BuildInfo, Compiler, Lang, OptLevel};

/// Per-feature probabilities/counts driving the code generator.
#[derive(Debug, Clone)]
pub struct FeatureRates {
    /// P(function is split into hot + cold parts) — the paper's dominant
    /// FDE false-positive source (§V-A). Scaled by optimization level.
    pub split_cold: f64,
    /// P(function keeps a frame pointer). Frame-pointer functions switch
    /// the CFA base to `rbp`, which makes their CFI stack heights
    /// incomplete — the residual unfixable false positives of §V-C.
    pub rbp_frame: f64,
    /// P(function ends in a tail call instead of `ret`).
    pub tail_call: f64,
    /// Fraction of functions reachable *only* via tail calls.
    pub tail_only: f64,
    /// Fraction of functions referenced only through data pointers.
    pub pointer_only: f64,
    /// P(function contains a jump table).
    pub jump_table: f64,
    /// Fraction of functions that never return (abort-style).
    pub noreturn: f64,
    /// Number of hand-written assembly functions (0 for most projects;
    /// tens for infrastructure projects like OpenSSL/glibc, §IV-B).
    pub asm_funcs: usize,
    /// P(an assembly function carries hand-written CFI directives).
    pub asm_fde: f64,
    /// Number of Figure-6b style FDEs whose `PC Begin` mislabels the start.
    pub mislabeled_fdes: usize,
    /// P(a data blob — string/table — is embedded in `.text` after a
    /// function), feeding the unsafe heuristics' false positives.
    pub data_in_text: f64,
    /// P(function makes an `error`/`error_at_line`-style call).
    pub error_calls: f64,
    /// P(function is a thunk: a bare `jmp` to another function).
    pub thunks: f64,
    /// Number of thunk-like entries jumping into the *middle* of another
    /// function (identical-code-folding artifacts) — GHIDRA's thunk
    /// heuristic turns these into false positives.
    pub bad_thunks: usize,
    /// Inter-function alignment (16 for O2/O3/Ofast, smaller for Os).
    pub align: u64,
}

impl Default for FeatureRates {
    fn default() -> Self {
        FeatureRates {
            split_cold: 0.03,
            rbp_frame: 0.06,
            tail_call: 0.10,
            tail_only: 0.007,
            pointer_only: 0.02,
            jump_table: 0.06,
            noreturn: 0.02,
            asm_funcs: 0,
            asm_fde: 0.3,
            mislabeled_fdes: 0,
            data_in_text: 0.07,
            error_calls: 0.05,
            thunks: 0.03,
            bad_thunks: 0,
            align: 16,
        }
    }
}

impl FeatureRates {
    /// Applies the optimization level's characteristic shifts: more
    /// hot/cold splitting at O3/Ofast, almost none at Os (§V-A: Os
    /// binaries show an order of magnitude fewer FDE false positives).
    pub fn tuned_for(mut self, opt: OptLevel) -> FeatureRates {
        match opt {
            OptLevel::O2 => {}
            OptLevel::O3 => {
                self.split_cold *= 1.6;
                self.tail_call *= 1.2;
                self.jump_table *= 1.2;
            }
            OptLevel::Ofast => {
                self.split_cold *= 1.8;
                self.tail_call *= 1.25;
            }
            OptLevel::Os => {
                self.split_cold *= 0.07;
                self.jump_table *= 0.8;
                self.align = 4;
            }
        }
        self
    }
}

/// Everything needed to deterministically synthesize one binary.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed — equal seeds produce byte-identical binaries.
    pub seed: u64,
    /// Program name.
    pub name: String,
    /// Number of source-level functions (before splitting).
    pub n_funcs: usize,
    /// Feature rates (already tuned for the opt level).
    pub rates: FeatureRates,
    /// Build description recorded on the binary.
    pub info: BuildInfo,
    /// Whether to keep the symbol table (wild binaries are stripped).
    pub symbols: bool,
}

impl SynthConfig {
    /// A small default configuration useful in tests and examples.
    pub fn small(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            name: format!("synthetic-{seed}"),
            n_funcs: 40,
            rates: FeatureRates::default(),
            info: BuildInfo {
                compiler: Compiler::Gcc,
                opt: OptLevel::O2,
                lang: Lang::C,
            },
            symbols: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_suppresses_splitting() {
        let base = FeatureRates::default();
        let os = base.clone().tuned_for(OptLevel::Os);
        let o3 = base.clone().tuned_for(OptLevel::O3);
        assert!(os.split_cold < base.split_cold / 5.0);
        assert!(o3.split_cold > base.split_cold);
        assert_eq!(os.align, 4);
    }
}
