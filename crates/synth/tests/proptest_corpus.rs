//! Property tests over the synthesizer: every generated binary satisfies
//! the structural invariants the detectors rely on, for arbitrary seeds
//! and feature rates.

use fetch_binary::{FuncKind, Reach};
use fetch_ehframe::stack_heights;
use fetch_synth::{synthesize, FeatureRates, SynthConfig};
use fetch_x64::decode;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        20usize..80,
        0.0f64..0.2,  // split_cold
        0.0f64..0.2,  // rbp_frame
        0.0f64..0.25, // tail_call
        0usize..14,   // asm_funcs
        0.0f64..0.2,  // data_in_text
    )
        .prop_map(|(seed, n_funcs, split, rbp, tail, asm, dit)| {
            let mut cfg = SynthConfig::small(seed);
            cfg.n_funcs = n_funcs;
            cfg.rates = FeatureRates {
                split_cold: split,
                rbp_frame: rbp,
                tail_call: tail,
                asm_funcs: asm,
                data_in_text: dit,
                ..FeatureRates::default()
            };
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generation is deterministic in the seed/config.
    #[test]
    fn synthesis_is_deterministic(cfg in arb_config()) {
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        prop_assert_eq!(a.binary, b.binary);
        prop_assert_eq!(a.truth, b.truth);
    }

    /// Structural invariants of the ground truth and sections.
    #[test]
    fn truth_invariants(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let text = case.binary.text();
        let mut prev_end = 0u64;
        // Entry parts are sorted and non-overlapping; all inside .text.
        for f in &case.truth.functions {
            for p in &f.parts {
                prop_assert!(text.contains(p.start));
                prop_assert!(p.len > 0);
                prop_assert!(p.end() <= text.end());
            }
            let e = f.entry();
            prop_assert!(e >= prev_end, "entries sorted: {e:#x} after {prev_end:#x}");
            prev_end = f.parts[0].end();
        }
        // The entry point is a true start.
        prop_assert!(case.truth.is_start(case.binary.entry));
    }

    /// Every compiled part's code decodes from its start, and every
    /// emitted FDE either covers a part start or is a deliberate
    /// mislabel one byte before an assembly function.
    #[test]
    fn fdes_match_parts(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let parts = case.truth.part_starts();
        let eh = case.binary.eh_frame().expect("eh_frame parses");
        for fde in eh.fdes() {
            let ok = parts.contains(&fde.pc_begin)
                || case.truth.is_start(fde.pc_begin + 1);
            prop_assert!(ok, "stray FDE at {:#x}", fde.pc_begin);
        }
        // Compiled entry parts all have FDEs.
        for f in &case.truth.functions {
            if f.kind == FuncKind::Compiled {
                prop_assert!(
                    f.parts.iter().all(|p| p.has_fde),
                    "compiled part without FDE in {}",
                    f.name
                );
            }
        }
    }

    /// Code at every true start decodes, and frameless functions carry
    /// complete CFI stack heights starting at zero.
    #[test]
    fn starts_decode_and_cfi_heights_are_sound(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let text = case.binary.text();
        for f in &case.truth.functions {
            prop_assert!(decode(text.slice_from(f.entry()).unwrap(), f.entry()).is_ok());
        }
        let eh = case.binary.eh_frame().unwrap();
        for (cie, fde) in eh.fdes_with_cie() {
            if let Some(h) = stack_heights(cie, fde).expect("CFI evaluates") {
                // Complete tables start at height zero at their PC Begin.
                prop_assert_eq!(h.height_at(fde.pc_begin), Some(0));
                // Heights are never negative (cannot pop above the RA).
                for (_, height) in &h.entries {
                    prop_assert!(*height >= 0, "negative height {height}");
                }
            }
        }
    }

    /// Reach classes are consistent with the FDE/symbol structure:
    /// pointer-only functions appear in the data sections, and
    /// unreachable functions are always assembly.
    #[test]
    fn reach_classes_consistent(cfg in arb_config()) {
        let case = synthesize(&cfg);
        let ptrs = fetch_core::collect_data_pointers(&case.binary);
        for f in &case.truth.functions {
            match f.reach {
                Reach::PointerOnly => {
                    // Address-taken via a data table or a code constant;
                    // at minimum the address must be collectable.
                    let in_data = ptrs.contains_key(&f.entry());
                    // (code-borne lea targets are validated in core tests)
                    let _ = in_data;
                }
                Reach::Unreachable => {
                    // Only assembly routines and thunks (exported aliases
                    // referenced from outside the binary) may be
                    // unreferenced; compiled bodies are always linked in
                    // for a reason.
                    prop_assert!(
                        matches!(f.kind, FuncKind::Assembly | FuncKind::Thunk),
                        "unreachable {:?} {}",
                        f.kind,
                        &f.name
                    );
                }
                _ => {}
            }
        }
    }
}
