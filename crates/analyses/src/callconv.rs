//! Calling-convention validation (§IV-E).
//!
//! The rule: at a legitimate System-V function start, every register other
//! than the six integer argument registers (`rdi, rsi, rdx, rcx, r8, r9`)
//! must be initialized before it is *used*. A `push` is a register save,
//! not a use, and the stack/frame registers (`rsp`, `rbp`) are exempt —
//! the frame pointer legitimately holds the caller's frame base at entry,
//! and cold parts of frame-pointer functions address locals through it.
//! (This exemption is what keeps the paper's corpus-wide sweep down to
//! exactly 3 violations, all hand-mislabeled FDEs.) The validator explores
//! bounded paths from a candidate start and reports the first violation.
//!
//! This is one of the four §IV-E pointer-validation checks and the second
//! criterion of Algorithm 1 (`MeetCallConv`).

use fetch_binary::Binary;
use fetch_x64::{decode, Flow, Reg};

/// Outcome of validating one candidate start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallConvVerdict {
    /// No violation found within the exploration budget.
    Valid,
    /// A register was read before initialization.
    ReadBeforeWrite {
        /// Offending instruction address.
        at: u64,
        /// The uninitialized register.
        reg: Reg,
    },
    /// The bytes at the candidate do not decode.
    Undecodable {
        /// Address of the first undecodable instruction.
        at: u64,
    },
    /// The candidate begins with padding (`nop`/`int3`) — not a
    /// plausible function entry.
    PaddingStart,
}

impl CallConvVerdict {
    /// Whether the candidate passed.
    pub fn is_valid(&self) -> bool {
        *self == CallConvVerdict::Valid
    }
}

/// Per-path register state.
#[derive(Clone)]
struct PathState {
    addr: u64,
    defined: u64, // bitset over register numbers
    steps: u32,
}

fn bit(r: Reg) -> u64 {
    1u64 << r.number()
}

const CALLER_SAVED: [Reg; 9] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
];

/// Validates the calling convention at `start`, exploring up to
/// `max_insts` instructions across paths.
///
/// Calls are assumed to return; use
/// [`validate_calling_convention_ext`] when non-returning callees are
/// known (otherwise exploration walks past fatal calls into data).
pub fn validate_calling_convention(bin: &Binary, start: u64, max_insts: u32) -> CallConvVerdict {
    validate_calling_convention_ext(bin, start, max_insts, &[])
}

/// [`validate_calling_convention`] with a sorted slice of known
/// non-returning (or `error`-style) callees at which paths end.
pub fn validate_calling_convention_ext(
    bin: &Binary,
    start: u64,
    max_insts: u32,
    stop_calls: &[u64],
) -> CallConvVerdict {
    validate_with(bin, start, max_insts, stop_calls, |_| None)
}

/// [`validate_calling_convention_ext`] reusing instructions already
/// decoded by recursive disassembly: addresses covered by `known` are
/// looked up in O(1) instead of re-decoded, which removes the dominant
/// cost of validating FDE starts (their bodies are always decoded by the
/// time repair runs). Decoding is deterministic over immutable text, so
/// the verdict is identical to the uncached variant.
pub fn validate_calling_convention_cached(
    bin: &Binary,
    start: u64,
    max_insts: u32,
    stop_calls: &[u64],
    known: &fetch_disasm::Disassembly,
) -> CallConvVerdict {
    validate_with(bin, start, max_insts, stop_calls, |addr| {
        known.at(addr).copied()
    })
}

fn validate_with(
    bin: &Binary,
    start: u64,
    max_insts: u32,
    stop_calls: &[u64],
    lookup: impl Fn(u64) -> Option<fetch_x64::Inst>,
) -> CallConvVerdict {
    let text = bin.text();
    if !text.contains(start) {
        return CallConvVerdict::Undecodable { at: start };
    }
    let mut initial = 0u64;
    for r in Reg::ARGS {
        initial |= bit(r);
    }
    initial |= bit(Reg::Rsp);

    let mut work = vec![PathState {
        addr: start,
        defined: initial,
        steps: 0,
    }];
    // Sorted-vec set: the exploration visits at most `max_insts`
    // states, where binary-search + ordered insert beats a B-tree.
    let mut visited: Vec<(u64, u64)> = Vec::with_capacity(max_insts.min(256) as usize);
    let mut budget = max_insts;
    let mut first = true;

    while let Some(mut st) = work.pop() {
        loop {
            if budget == 0 || st.steps > 64 {
                break;
            }
            if !text.contains(st.addr) {
                break;
            }
            match visited.binary_search(&(st.addr, st.defined)) {
                Ok(_) => break,
                Err(pos) => visited.insert(pos, (st.addr, st.defined)),
            }
            let inst = match lookup(st.addr) {
                Some(i) => i,
                None => match decode(text.slice_from(st.addr).expect("in range"), st.addr) {
                    Ok(i) => i,
                    Err(_) => return CallConvVerdict::Undecodable { at: st.addr },
                },
            };
            if first {
                if inst.is_padding() {
                    return CallConvVerdict::PaddingStart;
                }
                first = false;
            }
            budget = budget.saturating_sub(1);
            st.steps += 1;

            // The visitors keep this loop allocation-free; the first
            // offending register in visit order is the verdict, same as
            // iterating the collected `regs_read()` list.
            let mut violation: Option<Reg> = None;
            inst.each_reg_read(|r| {
                if violation.is_some() || r == Reg::Rsp || r == Reg::Rbp || r.is_arg() {
                    return;
                }
                if st.defined & bit(r) == 0 {
                    violation = Some(r);
                }
            });
            if let Some(reg) = violation {
                return CallConvVerdict::ReadBeforeWrite { at: st.addr, reg };
            }
            let defined = &mut st.defined;
            inst.each_reg_written(|r| *defined |= bit(r));

            match inst.flow() {
                Flow::Fallthrough => st.addr = inst.end(),
                Flow::Call(t) if stop_calls.binary_search(&t).is_ok() => break, // noreturn
                Flow::Call(_) | Flow::IndirectCall => {
                    // The callee clobbers (hence defines) caller-saved regs.
                    for r in CALLER_SAVED {
                        st.defined |= bit(r);
                    }
                    st.addr = inst.end();
                }
                Flow::Jump(t) => {
                    st.addr = t;
                }
                Flow::CondJump(t) => {
                    work.push(PathState {
                        addr: t,
                        defined: st.defined,
                        steps: st.steps,
                    });
                    st.addr = inst.end();
                }
                // Indirect jumps / returns / halts end the path benignly.
                Flow::IndirectJump | Flow::Ret | Flow::Halt | Flow::Trap => break,
            }
        }
    }
    CallConvVerdict::Valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_binary::{BuildInfo, Section, SectionKind};
    use fetch_x64::{encode, Op, Width};

    fn bin_of(ops: &[Op]) -> Binary {
        let mut bytes = Vec::new();
        let base = 0x40_1000u64;
        for op in ops {
            encode(op, base + bytes.len() as u64, &mut bytes).unwrap();
        }
        Binary {
            name: "cc".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![Section::new(SectionKind::Text, base, bytes)],
            symbols: vec![],
            entry: base,
        }
    }

    #[test]
    fn canonical_prologue_is_valid() {
        use fetch_x64::AluOp;
        let b = bin_of(&[
            Op::Push(Reg::Rbp),
            Op::MovRR(Width::W64, Reg::Rbp, Reg::Rsp),
            Op::Push(Reg::Rbx),
            Op::AluRI(AluOp::Sub, Width::W64, Reg::Rsp, 16),
            Op::MovRR(Width::W64, Reg::Rax, Reg::Rdi),
            Op::Ret,
        ]);
        assert!(validate_calling_convention(&b, 0x40_1000, 64).is_valid());
    }

    #[test]
    fn mid_function_read_is_invalid() {
        // Reads rbx without initializing it: not a plausible start.
        use fetch_x64::AluOp;
        let b = bin_of(&[
            Op::AluRR(AluOp::Add, Width::W64, Reg::Rax, Reg::Rbx),
            Op::Ret,
        ]);
        assert_eq!(
            validate_calling_convention(&b, 0x40_1000, 64),
            CallConvVerdict::ReadBeforeWrite {
                at: 0x40_1000,
                reg: Reg::Rax
            }
        );
    }

    #[test]
    fn arg_registers_may_be_read() {
        use fetch_x64::AluOp;
        let b = bin_of(&[
            Op::AluRR(AluOp::Add, Width::W64, Reg::Rdi, Reg::Rsi),
            Op::MovRR(Width::W64, Reg::Rax, Reg::Rdi),
            Op::Ret,
        ]);
        assert!(validate_calling_convention(&b, 0x40_1000, 64).is_valid());
    }

    #[test]
    fn padding_start_is_rejected() {
        let b = bin_of(&[Op::Int3, Op::Ret]);
        assert_eq!(
            validate_calling_convention(&b, 0x40_1000, 64),
            CallConvVerdict::PaddingStart
        );
        let b = bin_of(&[Op::Nop(1), Op::Ret]);
        assert_eq!(
            validate_calling_convention(&b, 0x40_1000, 64),
            CallConvVerdict::PaddingStart
        );
    }

    #[test]
    fn garbage_is_undecodable() {
        let base = 0x40_1000u64;
        let b = Binary {
            name: "g".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![Section::new(SectionKind::Text, base, vec![0x06, 0x07])],
            symbols: vec![],
            entry: base,
        };
        assert!(matches!(
            validate_calling_convention(&b, base, 64),
            CallConvVerdict::Undecodable { .. }
        ));
    }

    #[test]
    fn register_defined_after_call_may_be_read() {
        use fetch_x64::AluOp;
        // call f; add rax, rcx — rax/rcx defined by the call clobber rule.
        let b = bin_of(&[
            Op::Call(0x40_1000),
            Op::AluRR(AluOp::Add, Width::W64, Reg::Rax, Reg::Rcx),
            Op::Ret,
        ]);
        assert!(validate_calling_convention(&b, 0x40_1000, 8).is_valid());
    }

    #[test]
    fn true_starts_in_synthetic_corpus_validate() {
        use fetch_synth::{synthesize, SynthConfig};
        let case = synthesize(&SynthConfig::small(31));
        let mut checked = 0;
        for f in &case.truth.functions {
            let v = validate_calling_convention(&case.binary, f.entry(), 96);
            assert!(v.is_valid(), "{} at {:#x}: {:?}", f.name, f.entry(), v);
            checked += 1;
        }
        assert!(checked > 20);
    }

    #[test]
    fn cold_parts_pass_validation() {
        // Cold blocks read spilled state, not registers, so — as in the
        // paper, where the calling-convention sweep over FDE starts
        // flagged only the 3 hand-mislabeled entries — they validate.
        use fetch_synth::{synthesize, SynthConfig};
        let mut cfg = SynthConfig::small(17);
        cfg.n_funcs = 200;
        cfg.rates.split_cold = 0.2;
        let case = synthesize(&cfg);
        // The pipeline always validates with the known non-returning
        // callees; mirror that (otherwise exploration walks past fatal
        // calls into data).
        let mut stop_calls: Vec<u64> = case
            .truth
            .functions
            .iter()
            .filter(|f| ["abort_like", "exit_group", "error"].contains(&f.name.as_str()))
            .map(|f| f.entry())
            .collect();
        stop_calls.sort_unstable();
        let mut cold_parts = 0;
        let mut valid = 0;
        for f in &case.truth.functions {
            for p in f.parts.iter().skip(1) {
                cold_parts += 1;
                if validate_calling_convention_ext(&case.binary, p.start, 96, &stop_calls)
                    .is_valid()
                {
                    valid += 1;
                }
            }
        }
        assert!(cold_parts >= 10, "corpus has cold parts");
        assert_eq!(valid, cold_parts, "every cold part validates");
    }
}
