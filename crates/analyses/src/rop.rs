//! ROP gadget scanning — the §V-A security experiment.
//!
//! The paper shows that FDE-introduced false function starts matter: the
//! basic blocks at those starts contain ~100k usable ROP gadgets, which a
//! CFI policy admitting all "function starts" as indirect-branch targets
//! would make unhijackable. This scanner enumerates ret-terminated
//! gadgets the way ROPgadget does: decode backwards from every `ret`.

use fetch_binary::Binary;
use fetch_x64::{decode, Flow, Inst};

/// One discovered gadget: a short, cleanly decoding instruction run that
/// ends in `ret`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Address of the first instruction.
    pub addr: u64,
    /// The instructions, ending with `ret`.
    pub insts: Vec<Inst>,
}

impl Gadget {
    /// Gadget length in instructions (including the `ret`).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the gadget is empty (never true for produced gadgets).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Scans `[start, end)` in `.text` for ret-terminated gadgets of at most
/// `max_insts` instructions (the conventional ROPgadget depth is 5–10).
///
/// Every byte offset is considered a potential gadget head, so gadgets
/// may start inside "real" instructions — exactly the property that makes
/// coarse-grained CFI at false function starts exploitable.
pub fn scan_gadgets(bin: &Binary, start: u64, end: u64, max_insts: usize) -> Vec<Gadget> {
    let text = bin.text();
    let lo = start.max(text.addr);
    let hi = end.min(text.end());
    let mut out = Vec::new();
    for head in lo..hi {
        let Some(bytes) = text.slice_from(head) else {
            continue;
        };
        let mut insts = Vec::new();
        let mut off = 0usize;
        let mut addr = head;
        let mut ok = false;
        while insts.len() < max_insts {
            match decode(&bytes[off..], addr) {
                Ok(i) => {
                    off += i.len as usize;
                    addr += i.len as u64;
                    let flow = i.flow();
                    insts.push(i);
                    match flow {
                        Flow::Ret => {
                            ok = true;
                            break;
                        }
                        // Gadgets must be straight-line up to the ret.
                        Flow::Fallthrough | Flow::IndirectCall => {}
                        _ => break,
                    }
                }
                Err(_) => break,
            }
            if addr >= hi {
                break;
            }
        }
        if ok {
            out.push(Gadget { addr: head, insts });
        }
    }
    out
}

/// Counts gadgets reachable from each given block start (the paper counts
/// gadgets "in the basic blocks at the FDE-introduced false starts").
/// `block_len` bounds each block's extent.
pub fn gadgets_at_starts(bin: &Binary, starts: &[(u64, u64)], max_insts: usize) -> usize {
    starts
        .iter()
        .map(|&(start, len)| scan_gadgets(bin, start, start + len, max_insts).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetch_binary::{BuildInfo, Section, SectionKind};

    fn bin_of(bytes: Vec<u8>) -> Binary {
        Binary {
            name: "rop".into(),
            info: BuildInfo::gcc_o2(),
            sections: vec![Section::new(SectionKind::Text, 0x1000, bytes)],
            symbols: vec![],
            entry: 0x1000,
        }
    }

    #[test]
    fn finds_pop_ret_gadget() {
        // pop rdi; ret — the classic gadget — plus a nop before it.
        let b = bin_of(vec![0x90, 0x5f, 0xc3]);
        let gadgets = scan_gadgets(&b, 0x1000, 0x1003, 5);
        // Heads at 0x1000 (nop;pop;ret), 0x1001 (pop;ret), 0x1002 (ret).
        assert_eq!(gadgets.len(), 3);
        assert!(gadgets.iter().any(|g| g.addr == 0x1001 && g.len() == 2));
    }

    #[test]
    fn misaligned_heads_count() {
        // mov rax, imm64 whose immediate contains c3 — a gadget hides
        // inside the instruction bytes.
        let mut bytes = vec![0x48, 0xb8];
        bytes.extend_from_slice(&[0x5f, 0xc3, 0, 0, 0, 0, 0, 0]);
        bytes.push(0xc3); // real ret
        let b = bin_of(bytes);
        let gadgets = scan_gadgets(&b, 0x1000, 0x100b, 5);
        assert!(
            gadgets.iter().any(|g| g.addr == 0x1002),
            "hidden pop rdi; ret found inside the immediate"
        );
    }

    #[test]
    fn branchy_runs_are_not_gadgets() {
        // jmp +0; ret — the jump breaks the straight line at its head.
        let b = bin_of(vec![0xeb, 0x00, 0xc3]);
        let gadgets = scan_gadgets(&b, 0x1000, 0x1003, 5);
        assert!(gadgets.iter().all(|g| g.addr != 0x1000));
        assert!(gadgets.iter().any(|g| g.addr == 0x1002));
    }

    #[test]
    fn synthetic_cold_blocks_contain_gadgets() {
        use fetch_synth::{synthesize, SynthConfig};
        let mut cfg = SynthConfig::small(77);
        cfg.n_funcs = 150;
        cfg.rates.split_cold = 0.25;
        let case = synthesize(&cfg);
        let false_starts: Vec<(u64, u64)> = case
            .truth
            .functions
            .iter()
            .flat_map(|f| f.parts.iter().skip(1))
            .map(|p| (p.start, p.len))
            .collect();
        assert!(!false_starts.is_empty());
        let count = gadgets_at_starts(&case.binary, &false_starts, 6);
        assert!(count > 0, "cold blocks end in rets reachable as gadgets");
    }
}
